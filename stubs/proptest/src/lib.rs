//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! real proptest cannot be fetched. This crate reimplements the subset of its
//! API that the repository's property tests use — the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_flat_map`, `any::<T>()`, integer-range and
//! tuple strategies, `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::array::uniform32`, and the `prop_assert*` macros — backed by a
//! deterministic splitmix64 generator seeded from the test name.
//!
//! Differences from real proptest (deliberate, to stay dependency-free):
//!
//! * no shrinking: a failing case reports the panic from `prop_assert*`
//!   directly; inputs are reproducible because generation is deterministic;
//! * no persistence files, no forking, no timeout handling;
//! * `ProptestConfig` only carries `cases`.

pub mod test_runner {
    /// Runner configuration (only the `cases` knob is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash), so every test
        /// sees a distinct but reproducible stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            // Modulo bias is irrelevant for test generation purposes.
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of generated values. Object-safe: the combinators require
    /// `Self: Sized`, so `Box<dyn Strategy<Value = T>>` works (`prop_oneof!`
    /// relies on it).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Boxes a strategy (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice between boxed strategies of one value type.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    /// Strategy of any value of `T` (see [`crate::arbitrary::Arbitrary`]).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start.wrapping_add(rng.below(span) as $t)
                    }
                }
            )+
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))+) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);

                    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.new_value(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )+
        };
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII with occasional higher code points.
            let x = rng.next_u64();
            if x.is_multiple_of(4) {
                char::from_u32((x >> 8) as u32 % 0x11_0000).unwrap_or('\u{fffd}')
            } else {
                (b' ' + (x >> 8) as u8 % 95) as char
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// The `any::<T>()` strategy constructor.
    #[must_use]
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 32]`.
    pub struct UniformArray32<S>(S);

    /// `proptest::array::uniform32(element)`.
    #[must_use]
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray32<S> {
        UniformArray32(element)
    }

    impl<S: Strategy> Strategy for UniformArray32<S> {
        type Value = [S::Value; 32];

        fn new_value(&self, rng: &mut TestRng) -> [S::Value; 32] {
            std::array::from_fn(|_| self.0.new_value(rng))
        }
    }
}

/// The subset of `proptest::prelude` the tests rely on.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prop` module alias.
    pub mod prop {
        pub use crate::{array, collection};
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; the stub
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (10u32..20).new_value(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("det");
        let mut b = crate::test_runner::TestRng::for_test("det");
        let s = crate::collection::vec(any::<u64>(), 1..50);
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_front_end_works(x in any::<u8>(), v in prop::collection::vec(0u8..4, 1..10)) {
            prop_assert!(v.len() < 10);
            prop_assert_eq!(u64::from(x) * 2, u64::from(x) + u64::from(x));
            let mapped = prop_oneof![Just(1u8), Just(2u8)];
            let mut rng = crate::test_runner::TestRng::for_test("inner");
            let y = mapped.new_value(&mut rng);
            prop_assert!(y == 1 || y == 2);
        }
    }
}
