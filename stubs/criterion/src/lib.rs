//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so the real criterion cannot
//! be fetched. This crate provides the same macro/API surface the bench
//! targets use (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `benchmark_group`, `Bencher::iter`) with a simple wall-clock measurement:
//! warm up briefly, then time enough iterations to fill a fixed budget and
//! print mean ns/iter. No statistics, no HTML reports, no baselines.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "bench {:<44} {:>12.1} ns/iter ({} iters)",
            id.as_ref(),
            b.ns_per_iter,
            b.iters
        );
        self
    }

    /// Starts a named group (grouping is cosmetic here).
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group {}", name.as_ref());
        BenchmarkGroup { c: self }
    }
}

/// A cosmetic grouping of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark closure under `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.c.bench_function(id, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the routine.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing mean ns/iter for the caller to report.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Measure in one timed batch sized to the budget.
        let batch = (MEASURE_BUDGET.as_secs_f64() / per_iter.max(1e-9)).max(1.0) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
        self.iters = batch;
    }

    /// Times `routine` over inputs built by `setup`, excluding setup cost
    /// as best this stand-in can: setup runs inside the loop but the
    /// reported figure is dominated by the routine for realistic setups.
    /// The batch-size hint is accepted for API compatibility and ignored.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter(|| {
            let input = setup();
            routine(input)
        });
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored by the stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declares a group of benchmark functions as a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
