//! Trace replay: record a synthetic trace to a text file, reload it, and
//! drive the simulator from the file — the workflow for users who have
//! *real* post-L2 traces from an instrumentation tool.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use dice::core::Organization;
use dice::sim::{SimConfig, System};
use dice::workloads::{
    load_trace, save_trace, spec_table, MixDataModel, RecordSource, ReplaySource, TraceGen,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == "soplex")
        .unwrap();
    let dir = std::env::temp_dir().join("dice-replay-demo");
    std::fs::create_dir_all(&dir)?;

    // 1. Record one trace file per core.
    let mut paths = Vec::new();
    for core in 0..8u32 {
        let mut gen = TraceGen::with_scale(&spec, core, 0xd1ce, 512);
        let records: Vec<_> = (0..30_000).map(|_| gen.next_record()).collect();
        let path = dir.join(format!("core{core}.trace"));
        save_trace(&path, &records)?;
        paths.push(path);
    }
    println!("recorded 8 x 30k records to {}", dir.display());

    // 2. Reload and replay through the full system.
    let sources: Vec<Box<dyn RecordSource>> = paths
        .iter()
        .map(|p| {
            Box::new(ReplaySource::new(load_trace(p).expect("trace reloads")))
                as Box<dyn RecordSource>
        })
        .collect();
    let data = MixDataModel::new(vec![spec.values; 8], 0xd1ce ^ 0xda7a);
    let cfg =
        SimConfig::scaled(Organization::Dice { threshold: 36 }, 512).with_records(8_000, 16_000);
    let report = System::with_sources(cfg, "soplex-replay", sources, data).run();

    println!(
        "replayed run: {} cycles, L3 hit {:.1}%, L4 hit {:.1}%, {} free pair lines",
        report.cycles,
        100.0 * report.l3.hit_rate(),
        100.0 * report.l4.hit_rate(),
        report.l4.free_lines
    );
    Ok(())
}
