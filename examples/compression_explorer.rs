//! Compression explorer: shows what FPC, BDI and paired compression do to
//! each kind of cache-line content the workload models emit — the data
//! behind Figure 4 and the 36 B threshold (Table 4).
//!
//! ```text
//! cargo run --example compression_explorer
//! ```

use dice::compress::{
    bdi::BdiLine, compress, compress_pair, cpack::CpackLine, fpc::FpcLine, Algorithm, PairMode,
    LINE_BYTES,
};
use dice::workloads::{line_data, PageClass};

fn main() {
    println!("64-byte line compression by content class (seed 7):");
    println!(
        "{:<10} {:>5} {:>5} {:>6} {:>8} {:>14} {:>10} {:>14}",
        "class", "FPC", "BDI", "CPACK", "hybrid", "algorithm", "pair", "pair mode"
    );
    println!("{}", "-".repeat(84));

    for class in PageClass::ALL {
        // Two adjacent lines of the same page.
        let a = line_data(7, class, 64 * 10);
        let b = line_data(7, class, 64 * 10 + 1);

        let fpc = FpcLine::compress(&a).size();
        let bdi = BdiLine::compress(&a).map(|l| l.size());
        let cpack = CpackLine::compress(&a).size();
        let hybrid = compress(&a);
        let pair = compress_pair(&a, &b);

        let algo = match hybrid.algorithm() {
            Algorithm::Raw => "raw".to_owned(),
            Algorithm::Fpc => "FPC".to_owned(),
            Algorithm::Bdi(enc) => format!("BDI {enc:?}"),
        };
        let mode = match pair.mode() {
            PairMode::Concat => "concat".to_owned(),
            PairMode::SharedBase(enc) => format!("shared {enc:?}"),
        };
        println!(
            "{:<10} {:>4}B {:>5} {:>5}B {:>7}B {:>14} {:>9}B {:>14}",
            format!("{class:?}"),
            fpc,
            bdi.map_or("-".to_owned(), |s| format!("{s}B")),
            cpack,
            hybrid.size(),
            algo,
            pair.total_size(),
            mode,
        );
    }

    println!();
    println!("DICE reads these sizes as follows (72 B TAD, 4 B tags):");
    println!("  * single <= 32 B : two such lines fit one TAD with separate tags");
    println!("  * single <= 36 B : below the DICE insertion threshold -> BAI index;");
    println!("                     the pair fits 68 B when tag+base are shared");
    println!("  * single >  36 B : TSI index; spatial pairing would thrash");
    println!("  * pair   <= 68 B : one access returns both lines (2x bandwidth)");

    // The canonical threshold case from §6.2.
    let a = line_data(7, PageClass::Strided, 64 * 3);
    let b = line_data(7, PageClass::Strided, 64 * 3 + 1);
    let single = compress(&a).size();
    let joint = compress_pair(&a, &b).total_size();
    println!();
    println!(
        "threshold case: a strided line compresses to {single} B alone (<= 36) and\n\
         its pair to {joint} B (<= 68) — exactly why Table 4 peaks at 36 B."
    );
    assert!(single <= LINE_BYTES && joint <= 2 * LINE_BYTES);
}
