//! Capacity study: fills DRAM caches of each organization with a scattered
//! working set and reports packing density — a standalone, simulation-free
//! view of Table 5's effective-capacity mechanism (dynamic tags, pair
//! sharing, the 28-line ceiling).
//!
//! ```text
//! cargo run --release --example capacity_study [workload]
//! ```

use dice::core::{DramCacheConfig, DramCacheController, Organization};
use dice::workloads::{spec_table, DataModel, SplitMix64};

fn fill_density(org: Organization, data: &mut DataModel) -> (f64, u64) {
    let sets = 1u64 << 14;
    let mut l4 = DramCacheController::new(DramCacheConfig::with_capacity(org, sets * 64));
    let mut rng = SplitMix64::new(1);
    // 25 installs per set, page-scattered addresses with in-page adjacency.
    for _ in 0..25 * sets {
        let pos = rng.below(40 * sets);
        let page = SplitMix64::hash(pos / 64) & ((1 << 26) - 1);
        l4.fill(page * 64 + pos % 64, false, None, data);
    }
    let density = l4.valid_lines() as f64 / l4.occupied_sets().max(1) as f64;
    (density, l4.valid_lines())
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cc_twi".to_owned());
    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("unknown workload '{name}'"));
    println!("workload {name} — steady-state lines per set (baseline = 1.0):\n");

    for org in [
        Organization::UncompressedAlloy,
        Organization::CompressedTsi,
        Organization::CompressedNsi,
        Organization::CompressedBai,
        Organization::Dice { threshold: 36 },
    ] {
        let mut data = DataModel::new(&spec, 0xd1ce ^ 0xda7a);
        let (density, lines) = fill_density(org, &mut data);
        println!("{org:?}: {density:.2} lines/set ({lines} resident lines)");
    }

    println!();
    println!(
        "Spatially indexed organizations (BAI, DICE) pack same-page pairs\n\
         with one shared 4 B tag — and a shared BDI base when it applies —\n\
         so they exceed TSI's density whenever neighboring lines compress."
    );
}
