//! Indexing demo: reproduces Figure 6 — how TSI, NSI and BAI map sixteen
//! consecutive lines onto an 8-set cache — then demonstrates the BAI
//! invariants and the cache-index predictor on a small DICE cache.
//!
//! ```text
//! cargo run --example indexing_demo
//! ```

use dice::core::{DramCacheConfig, DramCacheController, Indexer, Organization, SizeInfo};

/// All lines compress to 30 B; pairs share a base into 56 B.
struct Sizes;

impl SizeInfo for Sizes {
    fn single_size(&mut self, _line: u64) -> u32 {
        30
    }
    fn pair_size(&mut self, _even: u64) -> u32 {
        56
    }
}

fn main() {
    // --- Figure 6: 8 sets, lines A0..A15.
    let ix = Indexer::new(8);
    println!("Figure 6 — set mapping of lines A0..A15 on an 8-set cache:\n");
    println!(
        "{:>5}  {:>3} {:>3} {:>3}   (BAI == TSI?)",
        "line", "TSI", "NSI", "BAI"
    );
    for line in 0..16u64 {
        println!(
            "{:>5}  {:>3} {:>3} {:>3}   {}",
            format!("A{line}"),
            ix.tsi(line),
            ix.nsi(line),
            ix.bai(line),
            if ix.invariant(line) {
                "kept (purple box)"
            } else {
                "moved +-1 set"
            }
        );
    }

    let kept = (0..1_000u64).filter(|&l| ix.invariant(l)).count();
    println!("\ninvariant lines over A0..A999: {kept}/1000 (exactly half by construction)");

    // --- The two candidate sets always share a DRAM row.
    let ix_big = Indexer::new(1 << 20);
    let same_row = (0..100_000u64).all(|l| ix_big.tsi(l) / 28 == ix_big.bai(l) / 28);
    println!("TSI/BAI candidates share a 28-set DRAM row for 100k lines: {same_row}");

    // --- A tiny DICE cache with the CIP at work.
    println!("\nDICE on a 4096-set cache (all lines compressible):");
    let cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 4096 * 64);
    let mut l4 = DramCacheController::new(cfg);
    let mut sizes = Sizes;

    // Install a page worth of lines; compressible → BAI index.
    let base = 4096; // bit log2(sets) set → non-invariant lines
    for line in base..base + 64 {
        l4.fill(line, false, None, &mut sizes);
    }
    // Read them back: pairs come out two-at-a-time.
    let mut free = 0;
    for line in (base..base + 64).step_by(2) {
        let r = l4.read(line);
        assert!(r.hit);
        free += r.free_lines.len();
    }
    println!("  32 pair reads delivered {free} partner lines free");
    println!(
        "  install split: {} invariant / {} TSI / {} BAI",
        l4.stats().installs_invariant,
        l4.stats().installs_tsi,
        l4.stats().installs_bai
    );
    println!(
        "  CIP accuracy so far: {:.1}% over {} predictions",
        100.0 * l4.cip_accuracy(),
        l4.cip_predictions()
    );
}
