//! Quickstart: simulate one workload on the baseline Alloy Cache and on
//! DICE, and report the headline metrics the paper's evaluation is built
//! from (weighted speedup, hit rates, DRAM traffic, energy-delay product).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart [workload] [scale]
//! ```
//!
//! `workload` defaults to `gcc` (compressible, bandwidth-hungry);
//! `scale` is the 1/N system-scale divisor (default 256 → 4 MB L4).

use dice::core::Organization;
use dice::sim::{RunReport, SimConfig, System, WorkloadSet};
use dice::workloads::spec_table;

fn describe(label: &str, r: &RunReport, base: &RunReport) {
    println!("--- {label}");
    println!("  weighted speedup : {:.3}", r.weighted_speedup(base));
    println!("  L3 hit rate      : {:.1}%", 100.0 * r.l3.hit_rate());
    println!("  L4 hit rate      : {:.1}%", 100.0 * r.l4.hit_rate());
    println!("  L4 reads         : {}", r.l4.reads);
    println!("  free pair lines  : {}", r.l4.free_lines);
    println!("  memory reads     : {}", r.mem_dram.reads);
    println!("  effective capacity: {:.2}x", r.capacity_ratio());
    println!(
        "  off-chip energy  : {:.2} mJ (EDP ratio vs base: {:.2})",
        1e3 * r.energy.total_joules(),
        r.energy.edp() / base.energy.edp()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("gcc", String::as_str);
    let scale: u64 = args
        .get(1)
        .map_or(256, |s| s.parse().expect("scale must be a number"));

    let spec = spec_table()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("unknown workload '{name}'; see dice::workloads::spec_table()"));
    println!(
        "workload {name}: Table-3 MPKI {:.1}, footprint {:.1} GB, 8 cores, 1/{scale} scale",
        spec.table3_mpki,
        spec.footprint_bytes as f64 / (1u64 << 30) as f64
    );
    let workload = WorkloadSet::rate(spec, 0xd1ce);

    let cfg = |org| SimConfig::scaled(org, scale).with_records(40_000, 80_000);
    println!("simulating baseline (uncompressed Alloy Cache)...");
    let base = System::new(cfg(Organization::UncompressedAlloy), &workload).run();
    println!("simulating DICE (36 B threshold)...");
    let dice = System::new(cfg(Organization::Dice { threshold: 36 }), &workload).run();

    describe("baseline Alloy", &base, &base);
    describe("DICE", &dice, &base);
    println!();
    println!(
        "DICE delivered {} extra lines free with compressed-pair hits and an\n\
         index-predictor accuracy of {:.1}% ({} predictions).",
        dice.l4.free_lines,
        100.0 * dice.cip_accuracy,
        dice.cip_predictions
    );
}
