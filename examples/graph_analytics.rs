//! Graph-analytics scenario: the workloads the paper's introduction
//! motivates. GAP-style graph kernels have huge footprints (14–25 GB),
//! power-law page popularity and highly compressible CSR data — the regime
//! where compressed DRAM caches shine, because effective capacity can
//! exceed even a hypothetical doubled cache.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use dice::core::Organization;
use dice::sim::{SimConfig, System, WorkloadSet};
use dice::workloads::{spec_table, Suite};

fn main() {
    let gap: Vec<_> = spec_table()
        .into_iter()
        .filter(|w| w.suite == Suite::Gap)
        .collect();
    println!(
        "{:<8} {:>9} {:>10} | {:>7} {:>7} {:>7} | {:>8}",
        "kernel", "MPKI", "footprint", "TSI", "DICE", "2xCache", "capacity"
    );
    println!("{}", "-".repeat(70));

    for spec in gap {
        let name = spec.name;
        let mpki = spec.table3_mpki;
        let gb = spec.footprint_bytes as f64 / (1u64 << 30) as f64;
        let wl = WorkloadSet::rate(spec, 0xd1ce);
        let cfg = |org: Organization| SimConfig::scaled(org, 256).with_records(40_000, 60_000);

        let base = System::new(cfg(Organization::UncompressedAlloy), &wl).run();
        let tsi = System::new(cfg(Organization::CompressedTsi), &wl).run();
        let dice = System::new(cfg(Organization::Dice { threshold: 36 }), &wl).run();
        let double = System::new(
            cfg(Organization::UncompressedAlloy)
                .with_double_l4_capacity()
                .with_double_l4_bandwidth(),
            &wl,
        )
        .run();

        println!(
            "{:<8} {:>9.1} {:>8.1}GB | {:>7.3} {:>7.3} {:>7.3} | {:>7.2}x",
            name,
            mpki,
            gb,
            tsi.weighted_speedup(&base),
            dice.weighted_speedup(&base),
            double.weighted_speedup(&base),
            dice.capacity_ratio(),
        );
    }

    println!();
    println!(
        "Note how the compressed organizations rival or beat the idealized\n\
         double-capacity double-bandwidth cache on graph kernels: CSR offset\n\
         and property arrays compress well past 2x (paper Table 5: up to\n\
         5.6x on GAP), and a 1 GB cache is small against a 20 GB graph."
    );
}
