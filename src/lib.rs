//! **DICE** — a from-scratch reproduction of *"DICE: Compressing DRAM
//! Caches for Bandwidth and Capacity"* (Young, Nair & Qureshi, ISCA 2017).
//!
//! Gigascale stacked-DRAM caches (Alloy Cache, Knights Landing's MCDRAM
//! cache) store tags inside the DRAM array, which makes compression nearly
//! free — but compression that only adds *capacity* barely helps a cache
//! that is already a gigabyte. DICE compresses for **bandwidth**: with
//! Bandwidth-Aware Indexing, two spatially adjacent lines share one set, so
//! one 72 B access returns two useful lines; a per-line insertion rule
//! (compressed size ≤ 36 B) falls back to traditional indexing when data is
//! incompressible, and a 256 B index predictor keeps reads to one probe.
//!
//! This crate is a facade re-exporting the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`compress`] | `dice-compress` | FPC, BDI, hybrid, paired compression |
//! | [`dram`] | `dice-dram` | DRAM timing/energy model (banks, rows, buses) |
//! | [`cache`] | `dice-cache` | SRAM hierarchy (L1/L2/L3), prefetch baselines |
//! | [`core`] | `dice-core` | the DICE DRAM-cache controller + baselines |
//! | [`sim`] | `dice-sim` | 8-core trace-driven system simulator |
//! | [`workloads`] | `dice-workloads` | synthetic SPEC/GAP workload generators |
//! | [`obs`] | `dice-obs` | metrics, latency histograms, tracing, JSON |
//! | [`runner`] | `dice-runner` | parallel experiment engine + persistent result cache |
//!
//! # Quickstart
//!
//! ```no_run
//! use dice::core::Organization;
//! use dice::sim::{SimConfig, System, WorkloadSet};
//! use dice::workloads::spec_table;
//!
//! let gcc = spec_table().into_iter().find(|w| w.name == "gcc").unwrap();
//! let workload = WorkloadSet::rate(gcc, 42);
//!
//! let base = SimConfig::scaled(Organization::UncompressedAlloy, 256)
//!     .with_records(20_000, 50_000);
//! let dice = SimConfig::scaled(Organization::Dice { threshold: 36 }, 256)
//!     .with_records(20_000, 50_000);
//!
//! let r_base = System::new(base, &workload).run();
//! let r_dice = System::new(dice, &workload).run();
//! println!("DICE speedup on gcc: {:.3}", r_dice.weighted_speedup(&r_base));
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results of every table and
//! figure. The `experiments` binary in `dice-bench` regenerates them all:
//!
//! ```text
//! cargo run --release -p dice-bench --bin experiments -- fig10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dice_cache as cache;
pub use dice_compress as compress;
pub use dice_core as core;
pub use dice_dram as dram;
pub use dice_obs as obs;
pub use dice_runner as runner;
pub use dice_sim as sim;
pub use dice_workloads as workloads;
