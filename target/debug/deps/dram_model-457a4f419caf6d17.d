/root/repo/target/debug/deps/dram_model-457a4f419caf6d17.d: crates/bench/benches/dram_model.rs Cargo.toml

/root/repo/target/debug/deps/libdram_model-457a4f419caf6d17.rmeta: crates/bench/benches/dram_model.rs Cargo.toml

crates/bench/benches/dram_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
