/root/repo/target/debug/deps/bench-b2c7eb3648342ca8.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-b2c7eb3648342ca8.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
