/root/repo/target/debug/deps/proptests-6f2d6496de793616.d: crates/workloads/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6f2d6496de793616: crates/workloads/tests/proptests.rs

crates/workloads/tests/proptests.rs:
