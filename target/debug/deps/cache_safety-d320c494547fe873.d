/root/repo/target/debug/deps/cache_safety-d320c494547fe873.d: crates/runner/tests/cache_safety.rs Cargo.toml

/root/repo/target/debug/deps/libcache_safety-d320c494547fe873.rmeta: crates/runner/tests/cache_safety.rs Cargo.toml

crates/runner/tests/cache_safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
