/root/repo/target/debug/deps/dice_bench-7b6e9beaa6e44a88.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libdice_bench-7b6e9beaa6e44a88.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libdice_bench-7b6e9beaa6e44a88.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
