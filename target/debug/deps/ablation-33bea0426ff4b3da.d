/root/repo/target/debug/deps/ablation-33bea0426ff4b3da.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-33bea0426ff4b3da.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
