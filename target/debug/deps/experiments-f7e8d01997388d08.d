/root/repo/target/debug/deps/experiments-f7e8d01997388d08.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-f7e8d01997388d08: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
