/root/repo/target/debug/deps/dice_dram-f111ece0e91863d3.d: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdice_dram-f111ece0e91863d3.rmeta: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs Cargo.toml

crates/dram/src/lib.rs:
crates/dram/src/config.rs:
crates/dram/src/device.rs:
crates/dram/src/energy.rs:
crates/dram/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
