/root/repo/target/debug/deps/endtoend-6e0371462c8277cc.d: crates/bench/benches/endtoend.rs

/root/repo/target/debug/deps/endtoend-6e0371462c8277cc: crates/bench/benches/endtoend.rs

crates/bench/benches/endtoend.rs:
