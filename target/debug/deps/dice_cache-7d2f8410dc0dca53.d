/root/repo/target/debug/deps/dice_cache-7d2f8410dc0dca53.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/dice_cache-7d2f8410dc0dca53: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
