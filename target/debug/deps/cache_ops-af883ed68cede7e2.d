/root/repo/target/debug/deps/cache_ops-af883ed68cede7e2.d: crates/bench/benches/cache_ops.rs Cargo.toml

/root/repo/target/debug/deps/libcache_ops-af883ed68cede7e2.rmeta: crates/bench/benches/cache_ops.rs Cargo.toml

crates/bench/benches/cache_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
