/root/repo/target/debug/deps/proptests-a0120f2a2744ccfa.d: crates/dram/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a0120f2a2744ccfa.rmeta: crates/dram/tests/proptests.rs Cargo.toml

crates/dram/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
