/root/repo/target/debug/deps/experiments-e0f21dcc3d09b0f5.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-e0f21dcc3d09b0f5.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
