/root/repo/target/debug/deps/dice_sim-00be71128a13129a.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libdice_sim-00be71128a13129a.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libdice_sim-00be71128a13129a.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
