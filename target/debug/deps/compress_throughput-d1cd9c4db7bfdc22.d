/root/repo/target/debug/deps/compress_throughput-d1cd9c4db7bfdc22.d: crates/bench/benches/compress_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libcompress_throughput-d1cd9c4db7bfdc22.rmeta: crates/bench/benches/compress_throughput.rs Cargo.toml

crates/bench/benches/compress_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
