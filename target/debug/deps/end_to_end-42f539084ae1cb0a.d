/root/repo/target/debug/deps/end_to_end-42f539084ae1cb0a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-42f539084ae1cb0a: tests/end_to_end.rs

tests/end_to_end.rs:
