/root/repo/target/debug/deps/dice_sim-57c12511579a9083.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/dice_sim-57c12511579a9083: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
crates/sim/src/timeline.rs:
