/root/repo/target/debug/deps/dice_bench-13b777a578f6a657.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/dice_bench-13b777a578f6a657: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
