/root/repo/target/debug/deps/proptests-f2ce3dec434fb73d.d: crates/cache/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f2ce3dec434fb73d: crates/cache/tests/proptests.rs

crates/cache/tests/proptests.rs:
