/root/repo/target/debug/deps/proptests-cda164911a506410.d: crates/workloads/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cda164911a506410: crates/workloads/tests/proptests.rs

crates/workloads/tests/proptests.rs:
