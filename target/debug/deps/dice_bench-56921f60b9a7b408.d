/root/repo/target/debug/deps/dice_bench-56921f60b9a7b408.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libdice_bench-56921f60b9a7b408.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libdice_bench-56921f60b9a7b408.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
