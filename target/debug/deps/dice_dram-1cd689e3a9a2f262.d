/root/repo/target/debug/deps/dice_dram-1cd689e3a9a2f262.d: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/debug/deps/libdice_dram-1cd689e3a9a2f262.rlib: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/debug/deps/libdice_dram-1cd689e3a9a2f262.rmeta: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

crates/dram/src/lib.rs:
crates/dram/src/config.rs:
crates/dram/src/device.rs:
crates/dram/src/energy.rs:
crates/dram/src/stats.rs:
