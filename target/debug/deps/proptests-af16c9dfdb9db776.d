/root/repo/target/debug/deps/proptests-af16c9dfdb9db776.d: crates/cache/tests/proptests.rs

/root/repo/target/debug/deps/proptests-af16c9dfdb9db776: crates/cache/tests/proptests.rs

crates/cache/tests/proptests.rs:
