/root/repo/target/debug/deps/experiments-4c2b053511dd2f1c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-4c2b053511dd2f1c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
