/root/repo/target/debug/deps/dice_core-4eaf0ee2832789b0.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdice_core-4eaf0ee2832789b0.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/cip.rs:
crates/core/src/cset.rs:
crates/core/src/indexing.rs:
crates/core/src/inline_vec.rs:
crates/core/src/mapi.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
