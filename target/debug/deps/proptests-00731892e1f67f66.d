/root/repo/target/debug/deps/proptests-00731892e1f67f66.d: crates/cache/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-00731892e1f67f66.rmeta: crates/cache/tests/proptests.rs Cargo.toml

crates/cache/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
