/root/repo/target/debug/deps/dice_runner-e6c02b22a6aa0216.d: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs Cargo.toml

/root/repo/target/debug/deps/libdice_runner-e6c02b22a6aa0216.rmeta: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs Cargo.toml

crates/runner/src/lib.rs:
crates/runner/src/cache.rs:
crates/runner/src/engine.rs:
crates/runner/src/key.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
