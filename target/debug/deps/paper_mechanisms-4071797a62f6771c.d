/root/repo/target/debug/deps/paper_mechanisms-4071797a62f6771c.d: tests/paper_mechanisms.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_mechanisms-4071797a62f6771c.rmeta: tests/paper_mechanisms.rs Cargo.toml

tests/paper_mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
