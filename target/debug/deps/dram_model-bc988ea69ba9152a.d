/root/repo/target/debug/deps/dram_model-bc988ea69ba9152a.d: crates/bench/benches/dram_model.rs

/root/repo/target/debug/deps/dram_model-bc988ea69ba9152a: crates/bench/benches/dram_model.rs

crates/bench/benches/dram_model.rs:
