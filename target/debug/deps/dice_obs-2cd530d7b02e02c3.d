/root/repo/target/debug/deps/dice_obs-2cd530d7b02e02c3.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdice_obs-2cd530d7b02e02c3.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/panel.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
