/root/repo/target/debug/deps/proptests-4891e1a469ed4fb2.d: crates/compress/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4891e1a469ed4fb2: crates/compress/tests/proptests.rs

crates/compress/tests/proptests.rs:
