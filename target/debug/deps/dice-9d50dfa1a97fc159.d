/root/repo/target/debug/deps/dice-9d50dfa1a97fc159.d: src/lib.rs

/root/repo/target/debug/deps/libdice-9d50dfa1a97fc159.rlib: src/lib.rs

/root/repo/target/debug/deps/libdice-9d50dfa1a97fc159.rmeta: src/lib.rs

src/lib.rs:
