/root/repo/target/debug/deps/dice_compress-ad653a80eaed1dc3.d: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs Cargo.toml

/root/repo/target/debug/deps/libdice_compress-ad653a80eaed1dc3.rmeta: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs Cargo.toml

crates/compress/src/lib.rs:
crates/compress/src/bdi.rs:
crates/compress/src/bits.rs:
crates/compress/src/cpack.rs:
crates/compress/src/fpc.rs:
crates/compress/src/hybrid.rs:
crates/compress/src/pair.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
