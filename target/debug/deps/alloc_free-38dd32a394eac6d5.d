/root/repo/target/debug/deps/alloc_free-38dd32a394eac6d5.d: crates/core/tests/alloc_free.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_free-38dd32a394eac6d5.rmeta: crates/core/tests/alloc_free.rs Cargo.toml

crates/core/tests/alloc_free.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
