/root/repo/target/debug/deps/compress_throughput-fb4798c5e29df8a2.d: crates/bench/benches/compress_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libcompress_throughput-fb4798c5e29df8a2.rmeta: crates/bench/benches/compress_throughput.rs Cargo.toml

crates/bench/benches/compress_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
