/root/repo/target/debug/deps/compress_throughput-7a222a134b8f4f07.d: crates/bench/benches/compress_throughput.rs

/root/repo/target/debug/deps/compress_throughput-7a222a134b8f4f07: crates/bench/benches/compress_throughput.rs

crates/bench/benches/compress_throughput.rs:
