/root/repo/target/debug/deps/experiments-6f847d0430b90e34.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-6f847d0430b90e34: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
