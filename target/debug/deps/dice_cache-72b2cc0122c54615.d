/root/repo/target/debug/deps/dice_cache-72b2cc0122c54615.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libdice_cache-72b2cc0122c54615.rlib: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libdice_cache-72b2cc0122c54615.rmeta: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
