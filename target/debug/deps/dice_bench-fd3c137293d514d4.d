/root/repo/target/debug/deps/dice_bench-fd3c137293d514d4.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libdice_bench-fd3c137293d514d4.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libdice_bench-fd3c137293d514d4.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
