/root/repo/target/debug/deps/dice_runner-544a3dabcd8419f2.d: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs

/root/repo/target/debug/deps/libdice_runner-544a3dabcd8419f2.rlib: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs

/root/repo/target/debug/deps/libdice_runner-544a3dabcd8419f2.rmeta: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs

crates/runner/src/lib.rs:
crates/runner/src/cache.rs:
crates/runner/src/engine.rs:
crates/runner/src/key.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
