/root/repo/target/debug/deps/dice_cache-7293da224804d67e.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/dice_cache-7293da224804d67e: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
