/root/repo/target/debug/deps/criterion-bb514a8af9030c84.d: stubs/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-bb514a8af9030c84.rmeta: stubs/criterion/src/lib.rs Cargo.toml

stubs/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
