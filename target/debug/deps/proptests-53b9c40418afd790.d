/root/repo/target/debug/deps/proptests-53b9c40418afd790.d: crates/dram/tests/proptests.rs

/root/repo/target/debug/deps/proptests-53b9c40418afd790: crates/dram/tests/proptests.rs

crates/dram/tests/proptests.rs:
