/root/repo/target/debug/deps/alloc_free-786214d7fae24983.d: crates/core/tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-786214d7fae24983: crates/core/tests/alloc_free.rs

crates/core/tests/alloc_free.rs:
