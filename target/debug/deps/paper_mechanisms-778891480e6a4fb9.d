/root/repo/target/debug/deps/paper_mechanisms-778891480e6a4fb9.d: tests/paper_mechanisms.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_mechanisms-778891480e6a4fb9.rmeta: tests/paper_mechanisms.rs Cargo.toml

tests/paper_mechanisms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
