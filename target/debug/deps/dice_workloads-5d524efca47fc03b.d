/root/repo/target/debug/deps/dice_workloads-5d524efca47fc03b.d: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libdice_workloads-5d524efca47fc03b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/data.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/source.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
