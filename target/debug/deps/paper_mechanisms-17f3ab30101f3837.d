/root/repo/target/debug/deps/paper_mechanisms-17f3ab30101f3837.d: tests/paper_mechanisms.rs

/root/repo/target/debug/deps/paper_mechanisms-17f3ab30101f3837: tests/paper_mechanisms.rs

tests/paper_mechanisms.rs:
