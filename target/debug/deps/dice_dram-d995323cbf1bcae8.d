/root/repo/target/debug/deps/dice_dram-d995323cbf1bcae8.d: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/debug/deps/dice_dram-d995323cbf1bcae8: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

crates/dram/src/lib.rs:
crates/dram/src/config.rs:
crates/dram/src/device.rs:
crates/dram/src/energy.rs:
crates/dram/src/stats.rs:
