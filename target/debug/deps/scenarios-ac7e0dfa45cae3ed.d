/root/repo/target/debug/deps/scenarios-ac7e0dfa45cae3ed.d: crates/sim/tests/scenarios.rs

/root/repo/target/debug/deps/scenarios-ac7e0dfa45cae3ed: crates/sim/tests/scenarios.rs

crates/sim/tests/scenarios.rs:
