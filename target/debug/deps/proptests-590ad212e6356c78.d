/root/repo/target/debug/deps/proptests-590ad212e6356c78.d: crates/dram/tests/proptests.rs

/root/repo/target/debug/deps/proptests-590ad212e6356c78: crates/dram/tests/proptests.rs

crates/dram/tests/proptests.rs:
