/root/repo/target/debug/deps/dice_workloads-146d51d663328564.d: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

/root/repo/target/debug/deps/dice_workloads-146d51d663328564: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

crates/workloads/src/lib.rs:
crates/workloads/src/data.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/source.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/value.rs:
