/root/repo/target/debug/deps/replay_and_reporting-4031cc7ca75c4657.d: tests/replay_and_reporting.rs Cargo.toml

/root/repo/target/debug/deps/libreplay_and_reporting-4031cc7ca75c4657.rmeta: tests/replay_and_reporting.rs Cargo.toml

tests/replay_and_reporting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
