/root/repo/target/debug/deps/experiments-b55356defdfee2df.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-b55356defdfee2df: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
