/root/repo/target/debug/deps/endtoend-99368982cda938b7.d: crates/bench/benches/endtoend.rs Cargo.toml

/root/repo/target/debug/deps/libendtoend-99368982cda938b7.rmeta: crates/bench/benches/endtoend.rs Cargo.toml

crates/bench/benches/endtoend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
