/root/repo/target/debug/deps/proptests-aca1b0df91e081eb.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-aca1b0df91e081eb: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
