/root/repo/target/debug/deps/dice_core-35a0479caf3d3bfc.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libdice_core-35a0479caf3d3bfc.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libdice_core-35a0479caf3d3bfc.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/cip.rs:
crates/core/src/cset.rs:
crates/core/src/indexing.rs:
crates/core/src/inline_vec.rs:
crates/core/src/mapi.rs:
crates/core/src/stats.rs:
