/root/repo/target/debug/deps/dice_runner-f0c6c751da56989b.d: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs

/root/repo/target/debug/deps/dice_runner-f0c6c751da56989b: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs

crates/runner/src/lib.rs:
crates/runner/src/cache.rs:
crates/runner/src/engine.rs:
crates/runner/src/key.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
