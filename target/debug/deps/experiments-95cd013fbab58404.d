/root/repo/target/debug/deps/experiments-95cd013fbab58404.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-95cd013fbab58404: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
