/root/repo/target/debug/deps/dice_core-68db9cb1ca5d3724.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/dice_core-68db9cb1ca5d3724: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/cip.rs:
crates/core/src/cset.rs:
crates/core/src/indexing.rs:
crates/core/src/inline_vec.rs:
crates/core/src/mapi.rs:
crates/core/src/stats.rs:
