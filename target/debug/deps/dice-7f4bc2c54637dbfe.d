/root/repo/target/debug/deps/dice-7f4bc2c54637dbfe.d: src/lib.rs

/root/repo/target/debug/deps/libdice-7f4bc2c54637dbfe.rlib: src/lib.rs

/root/repo/target/debug/deps/libdice-7f4bc2c54637dbfe.rmeta: src/lib.rs

src/lib.rs:
