/root/repo/target/debug/deps/proptests-eacefa23d3e0cc2c.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-eacefa23d3e0cc2c.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
