/root/repo/target/debug/deps/ablation-d5d7042fa31b36c3.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-d5d7042fa31b36c3: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
