/root/repo/target/debug/deps/dice_sim-a4c706cc33a6e051.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/dice_sim-a4c706cc33a6e051: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
