/root/repo/target/debug/deps/paper_mechanisms-8bdec2b1e25a2fa2.d: tests/paper_mechanisms.rs

/root/repo/target/debug/deps/paper_mechanisms-8bdec2b1e25a2fa2: tests/paper_mechanisms.rs

tests/paper_mechanisms.rs:
