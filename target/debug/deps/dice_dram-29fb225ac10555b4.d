/root/repo/target/debug/deps/dice_dram-29fb225ac10555b4.d: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/debug/deps/libdice_dram-29fb225ac10555b4.rlib: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/debug/deps/libdice_dram-29fb225ac10555b4.rmeta: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

crates/dram/src/lib.rs:
crates/dram/src/config.rs:
crates/dram/src/device.rs:
crates/dram/src/energy.rs:
crates/dram/src/stats.rs:
