/root/repo/target/debug/deps/dice_bench-59c674a208cfc4ab.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libdice_bench-59c674a208cfc4ab.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
