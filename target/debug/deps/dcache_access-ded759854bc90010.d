/root/repo/target/debug/deps/dcache_access-ded759854bc90010.d: crates/bench/benches/dcache_access.rs Cargo.toml

/root/repo/target/debug/deps/libdcache_access-ded759854bc90010.rmeta: crates/bench/benches/dcache_access.rs Cargo.toml

crates/bench/benches/dcache_access.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
