/root/repo/target/debug/deps/dice_core-dbc37faad68517f7.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/dice_core-dbc37faad68517f7: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/mapi.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/cip.rs:
crates/core/src/cset.rs:
crates/core/src/indexing.rs:
crates/core/src/mapi.rs:
crates/core/src/stats.rs:
