/root/repo/target/debug/deps/experiments-aa89f8700be843a1.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-aa89f8700be843a1.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
