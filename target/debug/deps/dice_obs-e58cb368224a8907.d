/root/repo/target/debug/deps/dice_obs-e58cb368224a8907.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libdice_obs-e58cb368224a8907.rlib: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libdice_obs-e58cb368224a8907.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/panel.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/trace.rs:
