/root/repo/target/debug/deps/proptest-1966f9ea231d5c3e.d: stubs/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-1966f9ea231d5c3e.rmeta: stubs/proptest/src/lib.rs Cargo.toml

stubs/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
