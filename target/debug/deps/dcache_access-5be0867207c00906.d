/root/repo/target/debug/deps/dcache_access-5be0867207c00906.d: crates/bench/benches/dcache_access.rs

/root/repo/target/debug/deps/dcache_access-5be0867207c00906: crates/bench/benches/dcache_access.rs

crates/bench/benches/dcache_access.rs:
