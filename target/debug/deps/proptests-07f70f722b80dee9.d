/root/repo/target/debug/deps/proptests-07f70f722b80dee9.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-07f70f722b80dee9: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
