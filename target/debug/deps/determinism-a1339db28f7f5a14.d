/root/repo/target/debug/deps/determinism-a1339db28f7f5a14.d: crates/runner/tests/determinism.rs

/root/repo/target/debug/deps/determinism-a1339db28f7f5a14: crates/runner/tests/determinism.rs

crates/runner/tests/determinism.rs:
