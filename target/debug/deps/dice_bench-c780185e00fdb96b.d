/root/repo/target/debug/deps/dice_bench-c780185e00fdb96b.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libdice_bench-c780185e00fdb96b.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libdice_bench-c780185e00fdb96b.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
