/root/repo/target/debug/deps/experiments-f4e4bed37e9dff16.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-f4e4bed37e9dff16.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
