/root/repo/target/debug/deps/dice-889c0779fbc58f58.d: src/lib.rs

/root/repo/target/debug/deps/dice-889c0779fbc58f58: src/lib.rs

src/lib.rs:
