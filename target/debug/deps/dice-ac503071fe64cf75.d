/root/repo/target/debug/deps/dice-ac503071fe64cf75.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdice-ac503071fe64cf75.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
