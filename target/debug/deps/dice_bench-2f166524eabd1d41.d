/root/repo/target/debug/deps/dice_bench-2f166524eabd1d41.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libdice_bench-2f166524eabd1d41.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
