/root/repo/target/debug/deps/dice_workloads-81faf1ca6bc4e878.d: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

/root/repo/target/debug/deps/libdice_workloads-81faf1ca6bc4e878.rlib: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

/root/repo/target/debug/deps/libdice_workloads-81faf1ca6bc4e878.rmeta: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

crates/workloads/src/lib.rs:
crates/workloads/src/data.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/source.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/value.rs:
