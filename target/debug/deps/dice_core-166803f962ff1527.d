/root/repo/target/debug/deps/dice_core-166803f962ff1527.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libdice_core-166803f962ff1527.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libdice_core-166803f962ff1527.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/mapi.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/cip.rs:
crates/core/src/cset.rs:
crates/core/src/indexing.rs:
crates/core/src/mapi.rs:
crates/core/src/stats.rs:
