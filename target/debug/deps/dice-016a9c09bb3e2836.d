/root/repo/target/debug/deps/dice-016a9c09bb3e2836.d: src/lib.rs

/root/repo/target/debug/deps/dice-016a9c09bb3e2836: src/lib.rs

src/lib.rs:
