/root/repo/target/debug/deps/proptests-d0bac2d8867b792d.d: crates/workloads/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d0bac2d8867b792d.rmeta: crates/workloads/tests/proptests.rs Cargo.toml

crates/workloads/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
