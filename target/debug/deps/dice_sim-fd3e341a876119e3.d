/root/repo/target/debug/deps/dice_sim-fd3e341a876119e3.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/libdice_sim-fd3e341a876119e3.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/libdice_sim-fd3e341a876119e3.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
crates/sim/src/timeline.rs:
