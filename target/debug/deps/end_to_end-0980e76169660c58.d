/root/repo/target/debug/deps/end_to_end-0980e76169660c58.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0980e76169660c58: tests/end_to_end.rs

tests/end_to_end.rs:
