/root/repo/target/debug/deps/dice-20ddc7429861540b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdice-20ddc7429861540b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
