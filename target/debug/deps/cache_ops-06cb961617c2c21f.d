/root/repo/target/debug/deps/cache_ops-06cb961617c2c21f.d: crates/bench/benches/cache_ops.rs Cargo.toml

/root/repo/target/debug/deps/libcache_ops-06cb961617c2c21f.rmeta: crates/bench/benches/cache_ops.rs Cargo.toml

crates/bench/benches/cache_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
