/root/repo/target/debug/deps/dice_dram-afdc9c1fb32272e7.d: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/debug/deps/dice_dram-afdc9c1fb32272e7: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

crates/dram/src/lib.rs:
crates/dram/src/config.rs:
crates/dram/src/device.rs:
crates/dram/src/energy.rs:
crates/dram/src/stats.rs:
