/root/repo/target/debug/deps/dram_model-c89ba16750ee4d07.d: crates/bench/benches/dram_model.rs Cargo.toml

/root/repo/target/debug/deps/libdram_model-c89ba16750ee4d07.rmeta: crates/bench/benches/dram_model.rs Cargo.toml

crates/bench/benches/dram_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
