/root/repo/target/debug/deps/paper_mechanisms-4d650dc6f90d4bc4.d: tests/paper_mechanisms.rs

/root/repo/target/debug/deps/paper_mechanisms-4d650dc6f90d4bc4: tests/paper_mechanisms.rs

tests/paper_mechanisms.rs:
