/root/repo/target/debug/deps/dice_sim-ebbc32eeedb27d50.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libdice_sim-ebbc32eeedb27d50.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libdice_sim-ebbc32eeedb27d50.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
