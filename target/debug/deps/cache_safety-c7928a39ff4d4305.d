/root/repo/target/debug/deps/cache_safety-c7928a39ff4d4305.d: crates/runner/tests/cache_safety.rs

/root/repo/target/debug/deps/cache_safety-c7928a39ff4d4305: crates/runner/tests/cache_safety.rs

crates/runner/tests/cache_safety.rs:
