/root/repo/target/debug/deps/end_to_end-c04efd25d4b54e1d.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-c04efd25d4b54e1d.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
