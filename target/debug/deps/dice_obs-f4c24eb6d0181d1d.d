/root/repo/target/debug/deps/dice_obs-f4c24eb6d0181d1d.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/dice_obs-f4c24eb6d0181d1d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/panel.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/trace.rs:
