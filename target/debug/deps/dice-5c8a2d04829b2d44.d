/root/repo/target/debug/deps/dice-5c8a2d04829b2d44.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdice-5c8a2d04829b2d44.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
