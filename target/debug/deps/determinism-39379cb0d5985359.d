/root/repo/target/debug/deps/determinism-39379cb0d5985359.d: crates/runner/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-39379cb0d5985359.rmeta: crates/runner/tests/determinism.rs Cargo.toml

crates/runner/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
