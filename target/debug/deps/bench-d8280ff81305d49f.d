/root/repo/target/debug/deps/bench-d8280ff81305d49f.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/bench-d8280ff81305d49f: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
