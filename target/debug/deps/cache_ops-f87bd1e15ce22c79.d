/root/repo/target/debug/deps/cache_ops-f87bd1e15ce22c79.d: crates/bench/benches/cache_ops.rs

/root/repo/target/debug/deps/cache_ops-f87bd1e15ce22c79: crates/bench/benches/cache_ops.rs

crates/bench/benches/cache_ops.rs:
