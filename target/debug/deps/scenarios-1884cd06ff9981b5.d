/root/repo/target/debug/deps/scenarios-1884cd06ff9981b5.d: crates/sim/tests/scenarios.rs

/root/repo/target/debug/deps/scenarios-1884cd06ff9981b5: crates/sim/tests/scenarios.rs

crates/sim/tests/scenarios.rs:
