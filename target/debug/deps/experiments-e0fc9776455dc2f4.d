/root/repo/target/debug/deps/experiments-e0fc9776455dc2f4.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-e0fc9776455dc2f4: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
