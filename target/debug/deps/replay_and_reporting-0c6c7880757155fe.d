/root/repo/target/debug/deps/replay_and_reporting-0c6c7880757155fe.d: tests/replay_and_reporting.rs

/root/repo/target/debug/deps/replay_and_reporting-0c6c7880757155fe: tests/replay_and_reporting.rs

tests/replay_and_reporting.rs:
