/root/repo/target/debug/deps/end_to_end-7772e156e20c06c6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7772e156e20c06c6: tests/end_to_end.rs

tests/end_to_end.rs:
