/root/repo/target/debug/deps/proptests-51525dd90b22c61e.d: crates/obs/tests/proptests.rs

/root/repo/target/debug/deps/proptests-51525dd90b22c61e: crates/obs/tests/proptests.rs

crates/obs/tests/proptests.rs:
