/root/repo/target/debug/deps/ablation-2a1c794f9fc5ce2b.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-2a1c794f9fc5ce2b.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
