/root/repo/target/debug/deps/dice-855f2753a97b50c3.d: src/lib.rs

/root/repo/target/debug/deps/dice-855f2753a97b50c3: src/lib.rs

src/lib.rs:
