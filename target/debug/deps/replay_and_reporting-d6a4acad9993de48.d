/root/repo/target/debug/deps/replay_and_reporting-d6a4acad9993de48.d: tests/replay_and_reporting.rs

/root/repo/target/debug/deps/replay_and_reporting-d6a4acad9993de48: tests/replay_and_reporting.rs

tests/replay_and_reporting.rs:
