/root/repo/target/debug/deps/dice_cache-0006b83ecf9e0c78.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdice_cache-0006b83ecf9e0c78.rmeta: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
