/root/repo/target/debug/deps/proptests-104db2b36047c086.d: crates/compress/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-104db2b36047c086.rmeta: crates/compress/tests/proptests.rs Cargo.toml

crates/compress/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
