/root/repo/target/debug/deps/scenarios-6e0ef97c120f749f.d: crates/sim/tests/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libscenarios-6e0ef97c120f749f.rmeta: crates/sim/tests/scenarios.rs Cargo.toml

crates/sim/tests/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
