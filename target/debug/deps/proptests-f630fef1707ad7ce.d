/root/repo/target/debug/deps/proptests-f630fef1707ad7ce.d: crates/obs/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-f630fef1707ad7ce.rmeta: crates/obs/tests/proptests.rs Cargo.toml

crates/obs/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
