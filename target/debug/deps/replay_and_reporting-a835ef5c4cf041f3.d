/root/repo/target/debug/deps/replay_and_reporting-a835ef5c4cf041f3.d: tests/replay_and_reporting.rs

/root/repo/target/debug/deps/replay_and_reporting-a835ef5c4cf041f3: tests/replay_and_reporting.rs

tests/replay_and_reporting.rs:
