/root/repo/target/debug/deps/dice_compress-d25a5b5f2057055b.d: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs

/root/repo/target/debug/deps/libdice_compress-d25a5b5f2057055b.rlib: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs

/root/repo/target/debug/deps/libdice_compress-d25a5b5f2057055b.rmeta: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs

crates/compress/src/lib.rs:
crates/compress/src/bdi.rs:
crates/compress/src/bits.rs:
crates/compress/src/cpack.rs:
crates/compress/src/fpc.rs:
crates/compress/src/hybrid.rs:
crates/compress/src/pair.rs:
