/root/repo/target/debug/deps/dice_sim-5a416d9d6acae6b2.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libdice_sim-5a416d9d6acae6b2.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
crates/sim/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
