/root/repo/target/debug/deps/dice-80629d53e6398478.d: src/lib.rs

/root/repo/target/debug/deps/libdice-80629d53e6398478.rlib: src/lib.rs

/root/repo/target/debug/deps/libdice-80629d53e6398478.rmeta: src/lib.rs

src/lib.rs:
