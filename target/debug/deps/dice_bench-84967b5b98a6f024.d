/root/repo/target/debug/deps/dice_bench-84967b5b98a6f024.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/dice_bench-84967b5b98a6f024: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
