/root/repo/target/debug/deps/dice_cache-d23fd896beb19d35.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libdice_cache-d23fd896beb19d35.rlib: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libdice_cache-d23fd896beb19d35.rmeta: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
