/root/repo/target/debug/deps/dice_compress-cc82c25547f59fae.d: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs

/root/repo/target/debug/deps/dice_compress-cc82c25547f59fae: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs

crates/compress/src/lib.rs:
crates/compress/src/bdi.rs:
crates/compress/src/bits.rs:
crates/compress/src/cpack.rs:
crates/compress/src/fpc.rs:
crates/compress/src/hybrid.rs:
crates/compress/src/pair.rs:
