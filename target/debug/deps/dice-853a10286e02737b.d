/root/repo/target/debug/deps/dice-853a10286e02737b.d: src/lib.rs

/root/repo/target/debug/deps/libdice-853a10286e02737b.rlib: src/lib.rs

/root/repo/target/debug/deps/libdice-853a10286e02737b.rmeta: src/lib.rs

src/lib.rs:
