/root/repo/target/debug/deps/dice_bench-de970b2d4fa2a532.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/dice_bench-de970b2d4fa2a532: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
