/root/repo/target/debug/deps/endtoend-6e2f7ca6c2dcfe6d.d: crates/bench/benches/endtoend.rs Cargo.toml

/root/repo/target/debug/deps/libendtoend-6e2f7ca6c2dcfe6d.rmeta: crates/bench/benches/endtoend.rs Cargo.toml

crates/bench/benches/endtoend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
