/root/repo/target/debug/examples/quickstart-4f17fdc0b70e7052.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4f17fdc0b70e7052: examples/quickstart.rs

examples/quickstart.rs:
