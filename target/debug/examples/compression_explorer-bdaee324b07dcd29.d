/root/repo/target/debug/examples/compression_explorer-bdaee324b07dcd29.d: examples/compression_explorer.rs

/root/repo/target/debug/examples/compression_explorer-bdaee324b07dcd29: examples/compression_explorer.rs

examples/compression_explorer.rs:
