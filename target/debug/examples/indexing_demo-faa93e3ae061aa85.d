/root/repo/target/debug/examples/indexing_demo-faa93e3ae061aa85.d: examples/indexing_demo.rs

/root/repo/target/debug/examples/indexing_demo-faa93e3ae061aa85: examples/indexing_demo.rs

examples/indexing_demo.rs:
