/root/repo/target/debug/examples/indexing_demo-7139c5ed68109641.d: examples/indexing_demo.rs

/root/repo/target/debug/examples/indexing_demo-7139c5ed68109641: examples/indexing_demo.rs

examples/indexing_demo.rs:
