/root/repo/target/debug/examples/compression_explorer-4c6c9e5d3904e8d3.d: examples/compression_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcompression_explorer-4c6c9e5d3904e8d3.rmeta: examples/compression_explorer.rs Cargo.toml

examples/compression_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
