/root/repo/target/debug/examples/compression_explorer-5d2746de2228c717.d: examples/compression_explorer.rs

/root/repo/target/debug/examples/compression_explorer-5d2746de2228c717: examples/compression_explorer.rs

examples/compression_explorer.rs:
