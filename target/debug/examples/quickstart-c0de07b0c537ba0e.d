/root/repo/target/debug/examples/quickstart-c0de07b0c537ba0e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c0de07b0c537ba0e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
