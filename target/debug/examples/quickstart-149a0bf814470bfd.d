/root/repo/target/debug/examples/quickstart-149a0bf814470bfd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-149a0bf814470bfd: examples/quickstart.rs

examples/quickstart.rs:
