/root/repo/target/debug/examples/graph_analytics-14099e82b4d4d1da.d: examples/graph_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libgraph_analytics-14099e82b4d4d1da.rmeta: examples/graph_analytics.rs Cargo.toml

examples/graph_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
