/root/repo/target/debug/examples/graph_analytics-6d89f266f7b435d4.d: examples/graph_analytics.rs

/root/repo/target/debug/examples/graph_analytics-6d89f266f7b435d4: examples/graph_analytics.rs

examples/graph_analytics.rs:
