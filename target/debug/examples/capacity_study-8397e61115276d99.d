/root/repo/target/debug/examples/capacity_study-8397e61115276d99.d: examples/capacity_study.rs

/root/repo/target/debug/examples/capacity_study-8397e61115276d99: examples/capacity_study.rs

examples/capacity_study.rs:
