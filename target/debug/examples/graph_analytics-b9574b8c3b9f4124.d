/root/repo/target/debug/examples/graph_analytics-b9574b8c3b9f4124.d: examples/graph_analytics.rs

/root/repo/target/debug/examples/graph_analytics-b9574b8c3b9f4124: examples/graph_analytics.rs

examples/graph_analytics.rs:
