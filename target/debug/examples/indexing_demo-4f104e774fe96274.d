/root/repo/target/debug/examples/indexing_demo-4f104e774fe96274.d: examples/indexing_demo.rs

/root/repo/target/debug/examples/indexing_demo-4f104e774fe96274: examples/indexing_demo.rs

examples/indexing_demo.rs:
