/root/repo/target/debug/examples/trace_replay-0b915aba7f16e49d.d: examples/trace_replay.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_replay-0b915aba7f16e49d.rmeta: examples/trace_replay.rs Cargo.toml

examples/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
