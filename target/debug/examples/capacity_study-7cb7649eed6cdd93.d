/root/repo/target/debug/examples/capacity_study-7cb7649eed6cdd93.d: examples/capacity_study.rs Cargo.toml

/root/repo/target/debug/examples/libcapacity_study-7cb7649eed6cdd93.rmeta: examples/capacity_study.rs Cargo.toml

examples/capacity_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
