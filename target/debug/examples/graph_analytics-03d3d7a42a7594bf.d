/root/repo/target/debug/examples/graph_analytics-03d3d7a42a7594bf.d: examples/graph_analytics.rs

/root/repo/target/debug/examples/graph_analytics-03d3d7a42a7594bf: examples/graph_analytics.rs

examples/graph_analytics.rs:
