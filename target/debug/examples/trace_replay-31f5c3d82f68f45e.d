/root/repo/target/debug/examples/trace_replay-31f5c3d82f68f45e.d: examples/trace_replay.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_replay-31f5c3d82f68f45e.rmeta: examples/trace_replay.rs Cargo.toml

examples/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
