/root/repo/target/debug/examples/trace_replay-9f646ef419040c0e.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-9f646ef419040c0e: examples/trace_replay.rs

examples/trace_replay.rs:
