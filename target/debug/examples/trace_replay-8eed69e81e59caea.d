/root/repo/target/debug/examples/trace_replay-8eed69e81e59caea.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-8eed69e81e59caea: examples/trace_replay.rs

examples/trace_replay.rs:
