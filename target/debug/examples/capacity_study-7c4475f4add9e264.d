/root/repo/target/debug/examples/capacity_study-7c4475f4add9e264.d: examples/capacity_study.rs

/root/repo/target/debug/examples/capacity_study-7c4475f4add9e264: examples/capacity_study.rs

examples/capacity_study.rs:
