/root/repo/target/debug/examples/trace_replay-6b7e19d3a6128b53.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-6b7e19d3a6128b53: examples/trace_replay.rs

examples/trace_replay.rs:
