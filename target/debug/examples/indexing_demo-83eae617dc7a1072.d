/root/repo/target/debug/examples/indexing_demo-83eae617dc7a1072.d: examples/indexing_demo.rs Cargo.toml

/root/repo/target/debug/examples/libindexing_demo-83eae617dc7a1072.rmeta: examples/indexing_demo.rs Cargo.toml

examples/indexing_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unnecessary_to_owned__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::redundant_clone__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
