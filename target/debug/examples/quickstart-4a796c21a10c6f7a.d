/root/repo/target/debug/examples/quickstart-4a796c21a10c6f7a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4a796c21a10c6f7a: examples/quickstart.rs

examples/quickstart.rs:
