/root/repo/target/debug/examples/capacity_study-beb1165cdfe92d75.d: examples/capacity_study.rs

/root/repo/target/debug/examples/capacity_study-beb1165cdfe92d75: examples/capacity_study.rs

examples/capacity_study.rs:
