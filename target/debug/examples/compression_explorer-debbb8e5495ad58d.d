/root/repo/target/debug/examples/compression_explorer-debbb8e5495ad58d.d: examples/compression_explorer.rs

/root/repo/target/debug/examples/compression_explorer-debbb8e5495ad58d: examples/compression_explorer.rs

examples/compression_explorer.rs:
