/root/repo/target/release/deps/dice_cache-0d3500e14ac3a636.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libdice_cache-0d3500e14ac3a636.rlib: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libdice_cache-0d3500e14ac3a636.rmeta: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
