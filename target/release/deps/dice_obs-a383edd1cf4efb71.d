/root/repo/target/release/deps/dice_obs-a383edd1cf4efb71.d: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libdice_obs-a383edd1cf4efb71.rlib: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libdice_obs-a383edd1cf4efb71.rmeta: crates/obs/src/lib.rs crates/obs/src/hist.rs crates/obs/src/json.rs crates/obs/src/panel.rs crates/obs/src/registry.rs crates/obs/src/snapshot.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/hist.rs:
crates/obs/src/json.rs:
crates/obs/src/panel.rs:
crates/obs/src/registry.rs:
crates/obs/src/snapshot.rs:
crates/obs/src/trace.rs:
