/root/repo/target/release/deps/dice_workloads-3d45e9ced950332c.d: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

/root/repo/target/release/deps/libdice_workloads-3d45e9ced950332c.rlib: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

/root/repo/target/release/deps/libdice_workloads-3d45e9ced950332c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

crates/workloads/src/lib.rs:
crates/workloads/src/data.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/source.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/value.rs:
