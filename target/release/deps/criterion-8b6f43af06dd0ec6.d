/root/repo/target/release/deps/criterion-8b6f43af06dd0ec6.d: stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-8b6f43af06dd0ec6.rlib: stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-8b6f43af06dd0ec6.rmeta: stubs/criterion/src/lib.rs

stubs/criterion/src/lib.rs:
