/root/repo/target/release/deps/dice_workloads-0ec81b9c949f457b.d: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

/root/repo/target/release/deps/libdice_workloads-0ec81b9c949f457b.rlib: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

/root/repo/target/release/deps/libdice_workloads-0ec81b9c949f457b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/data.rs crates/workloads/src/rng.rs crates/workloads/src/source.rs crates/workloads/src/spec.rs crates/workloads/src/trace.rs crates/workloads/src/value.rs

crates/workloads/src/lib.rs:
crates/workloads/src/data.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/source.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/value.rs:
