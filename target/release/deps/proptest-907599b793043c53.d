/root/repo/target/release/deps/proptest-907599b793043c53.d: stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-907599b793043c53.rlib: stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-907599b793043c53.rmeta: stubs/proptest/src/lib.rs

stubs/proptest/src/lib.rs:
