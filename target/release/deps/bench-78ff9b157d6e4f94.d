/root/repo/target/release/deps/bench-78ff9b157d6e4f94.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-78ff9b157d6e4f94: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
