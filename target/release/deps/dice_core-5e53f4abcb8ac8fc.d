/root/repo/target/release/deps/dice_core-5e53f4abcb8ac8fc.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libdice_core-5e53f4abcb8ac8fc.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libdice_core-5e53f4abcb8ac8fc.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/inline_vec.rs crates/core/src/mapi.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/cip.rs:
crates/core/src/cset.rs:
crates/core/src/indexing.rs:
crates/core/src/inline_vec.rs:
crates/core/src/mapi.rs:
crates/core/src/stats.rs:
