/root/repo/target/release/deps/dice-933e5175d943f0b6.d: src/lib.rs

/root/repo/target/release/deps/libdice-933e5175d943f0b6.rlib: src/lib.rs

/root/repo/target/release/deps/libdice-933e5175d943f0b6.rmeta: src/lib.rs

src/lib.rs:
