/root/repo/target/release/deps/dice_bench-d0df0676c15a29ca.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libdice_bench-d0df0676c15a29ca.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libdice_bench-d0df0676c15a29ca.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
