/root/repo/target/release/deps/dice_dram-ec8e783ae9f03e67.d: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/release/deps/libdice_dram-ec8e783ae9f03e67.rlib: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/release/deps/libdice_dram-ec8e783ae9f03e67.rmeta: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

crates/dram/src/lib.rs:
crates/dram/src/config.rs:
crates/dram/src/device.rs:
crates/dram/src/energy.rs:
crates/dram/src/stats.rs:
