/root/repo/target/release/deps/dice_core-c775d2175b90e013.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libdice_core-c775d2175b90e013.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/mapi.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libdice_core-c775d2175b90e013.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/cip.rs crates/core/src/cset.rs crates/core/src/indexing.rs crates/core/src/mapi.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/cip.rs:
crates/core/src/cset.rs:
crates/core/src/indexing.rs:
crates/core/src/mapi.rs:
crates/core/src/stats.rs:
