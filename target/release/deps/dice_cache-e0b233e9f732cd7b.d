/root/repo/target/release/deps/dice_cache-e0b233e9f732cd7b.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libdice_cache-e0b233e9f732cd7b.rlib: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libdice_cache-e0b233e9f732cd7b.rmeta: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
