/root/repo/target/release/deps/dice-6f99d7627d3a598e.d: src/lib.rs

/root/repo/target/release/deps/libdice-6f99d7627d3a598e.rlib: src/lib.rs

/root/repo/target/release/deps/libdice-6f99d7627d3a598e.rmeta: src/lib.rs

src/lib.rs:
