/root/repo/target/release/deps/dcache_access-c3831eb243a1f48d.d: crates/bench/benches/dcache_access.rs

/root/repo/target/release/deps/dcache_access-c3831eb243a1f48d: crates/bench/benches/dcache_access.rs

crates/bench/benches/dcache_access.rs:
