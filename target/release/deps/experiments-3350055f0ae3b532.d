/root/repo/target/release/deps/experiments-3350055f0ae3b532.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-3350055f0ae3b532: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
