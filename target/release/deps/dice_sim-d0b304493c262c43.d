/root/repo/target/release/deps/dice_sim-d0b304493c262c43.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs

/root/repo/target/release/deps/libdice_sim-d0b304493c262c43.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs

/root/repo/target/release/deps/libdice_sim-d0b304493c262c43.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
crates/sim/src/timeline.rs:
