/root/repo/target/release/deps/experiments-e816029b6e772b05.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-e816029b6e772b05: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
