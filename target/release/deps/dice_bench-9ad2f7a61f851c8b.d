/root/repo/target/release/deps/dice_bench-9ad2f7a61f851c8b.d: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libdice_bench-9ad2f7a61f851c8b.rlib: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libdice_bench-9ad2f7a61f851c8b.rmeta: crates/bench/src/lib.rs crates/bench/src/ctx.rs crates/bench/src/table.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/ctx.rs:
crates/bench/src/table.rs:
crates/bench/src/workloads.rs:
