/root/repo/target/release/deps/dice_runner-7007c4390844ba92.d: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs

/root/repo/target/release/deps/libdice_runner-7007c4390844ba92.rlib: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs

/root/repo/target/release/deps/libdice_runner-7007c4390844ba92.rmeta: crates/runner/src/lib.rs crates/runner/src/cache.rs crates/runner/src/engine.rs crates/runner/src/key.rs

crates/runner/src/lib.rs:
crates/runner/src/cache.rs:
crates/runner/src/engine.rs:
crates/runner/src/key.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
