/root/repo/target/release/deps/dice_compress-b108975b240f59d3.d: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs

/root/repo/target/release/deps/libdice_compress-b108975b240f59d3.rlib: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs

/root/repo/target/release/deps/libdice_compress-b108975b240f59d3.rmeta: crates/compress/src/lib.rs crates/compress/src/bdi.rs crates/compress/src/bits.rs crates/compress/src/cpack.rs crates/compress/src/fpc.rs crates/compress/src/hybrid.rs crates/compress/src/pair.rs

crates/compress/src/lib.rs:
crates/compress/src/bdi.rs:
crates/compress/src/bits.rs:
crates/compress/src/cpack.rs:
crates/compress/src/fpc.rs:
crates/compress/src/hybrid.rs:
crates/compress/src/pair.rs:
