/root/repo/target/release/deps/dice_sim-40979f6fc3156cb6.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

/root/repo/target/release/deps/libdice_sim-40979f6fc3156cb6.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

/root/repo/target/release/deps/libdice_sim-40979f6fc3156cb6.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/report.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/report.rs:
crates/sim/src/system.rs:
