/root/repo/target/release/deps/dice-3761314a450762a6.d: src/lib.rs

/root/repo/target/release/deps/libdice-3761314a450762a6.rlib: src/lib.rs

/root/repo/target/release/deps/libdice-3761314a450762a6.rmeta: src/lib.rs

src/lib.rs:
