/root/repo/target/release/deps/dice_dram-493a4fb5324e5caf.d: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/release/deps/libdice_dram-493a4fb5324e5caf.rlib: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

/root/repo/target/release/deps/libdice_dram-493a4fb5324e5caf.rmeta: crates/dram/src/lib.rs crates/dram/src/config.rs crates/dram/src/device.rs crates/dram/src/energy.rs crates/dram/src/stats.rs

crates/dram/src/lib.rs:
crates/dram/src/config.rs:
crates/dram/src/device.rs:
crates/dram/src/energy.rs:
crates/dram/src/stats.rs:
