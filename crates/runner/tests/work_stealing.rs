//! The work-stealing scheduler's contract: byte-identical sweep output
//! for any `--jobs N`, and actual steals on a duration-skewed sweep.

use dice_core::Organization;
use dice_runner::{Cell, CellOutcome, Runner, RunnerConfig};
use dice_sim::{SimConfig, WorkloadSet};
use dice_workloads::spec_table;

fn spec(name: &str) -> dice_workloads::WorkloadSpec {
    spec_table().into_iter().find(|w| w.name == name).unwrap()
}

fn cfg(org: Organization, warmup: u64, measure: u64) -> SimConfig {
    SimConfig::scaled(org, 1024).with_records(warmup, measure)
}

/// A sweep whose cells differ in organization, workload and duration.
fn mixed_sweep() -> Vec<Cell> {
    let mut cells = Vec::new();
    for (i, name) in ["gcc", "mcf", "lbm"].iter().enumerate() {
        let wl = WorkloadSet::rate(spec(name), 11);
        let measure = 1_500 + 2_000 * i as u64; // deliberately uneven
        cells.push(Cell::new(
            "base",
            cfg(Organization::UncompressedAlloy, 500, measure),
            wl.clone(),
        ));
        cells.push(Cell::new(
            "dice36",
            cfg(Organization::Dice { threshold: 36 }, 500, measure),
            wl,
        ));
    }
    cells
}

type RenderedCell = ((String, String), String);

fn render_sweep(jobs: usize) -> (Vec<RenderedCell>, u64) {
    let runner = Runner::new(RunnerConfig {
        jobs,
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(mixed_sweep());
    assert_eq!(result.failed(), 0, "jobs={jobs}: no cell may fail");
    let rendered = result
        .outcomes
        .into_iter()
        .map(|(key, outcome)| match outcome {
            CellOutcome::Completed { report, .. } => (key, report.to_json().render()),
            other => panic!("jobs={jobs}: unexpected outcome {other:?}"),
        })
        .collect();
    (rendered, result.steals)
}

/// Stealing must not change results: 1, 2 and 8 workers produce
/// byte-identical report JSON for every cell, whichever thread ran or
/// stole which cell.
#[test]
fn output_is_byte_identical_for_any_job_count() {
    let (serial, serial_steals) = render_sweep(1);
    assert_eq!(serial.len(), 6);
    assert_eq!(serial_steals, 0, "a single worker has nobody to steal from");
    for jobs in [2, 8] {
        let (parallel, _) = render_sweep(jobs);
        assert_eq!(serial, parallel, "jobs={jobs} diverged from jobs=1");
    }
}

/// A sweep with all the slow cells dealt to one worker forces the other
/// worker to steal: round-robin dealing gives worker 0 the even-index
/// cells, so making those slow and the odd ones fast leaves worker 1
/// idle with worker 0's queue still deep.
#[test]
fn skewed_sweep_records_steals() {
    let slow = 30_000u64;
    let fast = 400u64;
    let wl = WorkloadSet::rate(spec("mcf"), 13);
    let mut cells = Vec::new();
    for i in 0..8u64 {
        let measure = if i % 2 == 0 { slow } else { fast };
        cells.push(Cell::new(
            format!("cell{i}"),
            cfg(Organization::UncompressedAlloy, 200, measure),
            wl.clone(),
        ));
    }
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(cells);
    assert_eq!(result.failed(), 0);
    assert_eq!(result.outcomes.len(), 8);
    assert!(
        result.steals > 0,
        "fast worker should have stolen from the slow worker's queue \
         (steals = {}, tail_idle_ms = {})",
        result.steals,
        result.tail_idle_ms,
    );

    // The new counters surface in the metric registry.
    let mut reg = dice_obs::MetricRegistry::new();
    result.register(&mut reg);
    assert_eq!(reg.counter_value("runner.steals"), Some(result.steals));
    assert_eq!(
        reg.counter_value("runner.tail_idle_ms"),
        Some(result.tail_idle_ms)
    );
}
