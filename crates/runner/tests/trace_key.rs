//! File-backed traces are cache-keyed by content: regenerating a `.dtf`
//! in place must invalidate cached cells that consumed the old bytes.

use dice_core::Organization;
use dice_ingest::{DtfWriter, TraceBinding};
use dice_runner::{cell_fingerprint, cell_key};
use dice_sim::{SimConfig, WorkloadSet};
use dice_workloads::{spec_table, TraceRecord};

fn pack(path: &std::path::Path, lines: &[u64]) {
    let mut w = DtfWriter::create(path, 1, false).unwrap();
    for &line in lines {
        let rec = TraceRecord {
            gap: 10,
            line,
            write: false,
        };
        w.push_record(0, rec).unwrap();
    }
    w.finish().unwrap();
}

#[test]
fn rewriting_the_trace_file_changes_the_cell_key() {
    let dir = std::env::temp_dir().join("dice-runner-trace-key");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("key-{}.dtf", std::process::id()));
    let spec = spec_table().into_iter().find(|w| w.name == "gcc").unwrap();
    let cfg = SimConfig::scaled(Organization::UncompressedAlloy, 1024);

    pack(&path, &[1, 2, 3, 4]);
    let first = TraceBinding::open(&path).unwrap();
    let wl_first = WorkloadSet::traced("t", spec.clone(), 1, first.clone());
    let key_first = cell_key(&cfg, &wl_first);

    // Same binding again: the key is stable.
    assert_eq!(
        key_first,
        cell_key(
            &cfg,
            &WorkloadSet::traced("t", spec.clone(), 1, first.clone())
        )
    );

    // Same path, different bytes: the content hash moves the key even
    // though tag, workload name, seed and path are all unchanged.
    pack(&path, &[1, 2, 3, 5]);
    let second = TraceBinding::open(&path).unwrap();
    assert_ne!(first.content_hash(), second.content_hash());
    let wl_second = WorkloadSet::traced("t", spec, 1, second);
    assert_ne!(key_first, cell_key(&cfg, &wl_second));

    // The hash is visible in the fingerprint text the key is built from.
    assert!(cell_fingerprint(&cfg, &wl_first).contains(&first.content_hash().to_string()));
}
