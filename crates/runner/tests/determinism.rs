//! The runner's determinism and fault-isolation contract.

use dice_core::Organization;
use dice_runner::{Cell, CellOutcome, Runner, RunnerConfig};
use dice_sim::{SimConfig, WorkloadSet};
use dice_workloads::spec_table;

fn spec(name: &str) -> dice_workloads::WorkloadSpec {
    spec_table().into_iter().find(|w| w.name == name).unwrap()
}

fn quick_cfg(org: Organization) -> SimConfig {
    SimConfig::scaled(org, 1024).with_records(1_000, 2_500)
}

fn small_sweep() -> Vec<Cell> {
    let mut cells = Vec::new();
    for name in ["gcc", "mcf"] {
        let wl = WorkloadSet::rate(spec(name), 7);
        cells.push(Cell::new(
            "base",
            quick_cfg(Organization::UncompressedAlloy),
            wl.clone(),
        ));
        cells.push(Cell::new(
            "dice36",
            quick_cfg(Organization::Dice { threshold: 36 }),
            wl,
        ));
    }
    cells
}

fn run_with_jobs(jobs: usize) -> Vec<((String, String), String)> {
    let runner = Runner::new(RunnerConfig {
        jobs,
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(small_sweep());
    assert_eq!(result.failed(), 0);
    result
        .outcomes
        .into_iter()
        .map(|(key, outcome)| match outcome {
            CellOutcome::Completed { report, .. } => (key, report.to_json().render()),
            other => panic!("unexpected outcome: {other:?}"),
        })
        .collect()
}

/// The tentpole guarantee: `--jobs 4` and `--jobs 1` produce byte-identical
/// report JSON for every cell of a sweep.
#[test]
fn parallel_and_serial_reports_are_byte_identical() {
    let serial = run_with_jobs(1);
    let parallel = run_with_jobs(4);
    assert_eq!(serial.len(), 4);
    assert_eq!(serial, parallel);
}

/// One panicking cell reports as failed; every healthy cell still
/// completes.
#[test]
fn panicking_cell_is_isolated() {
    let mut cells = small_sweep();
    // 3 specs on an 8-core config panics in `System::new` ("one spec per
    // core") — a deterministic stand-in for a diverging configuration.
    cells.push(Cell::new(
        "bad",
        quick_cfg(Organization::UncompressedAlloy),
        WorkloadSet::mix("bad-mix", vec![spec("gcc"); 3], 7),
    ));
    let runner = Runner::new(RunnerConfig {
        jobs: 3,
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(cells);
    assert_eq!(result.failed(), 1);
    assert_eq!(result.simulated(), 4);
    match &result.outcomes[&("bad".to_owned(), "bad-mix".to_owned())] {
        CellOutcome::Failed { error } => assert!(
            error.contains("one spec per core"),
            "panic message should surface, got {error:?}"
        ),
        other => panic!("expected failure, got {other:?}"),
    }
}

/// Cells repeated across figures are simulated once.
#[test]
fn duplicate_cells_are_deduped() {
    let mut cells = small_sweep();
    cells.extend(small_sweep()); // every figure re-requests the baseline
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(cells);
    assert_eq!(result.outcomes.len(), 4);
    assert_eq!(result.deduped, 4);
    assert_eq!(result.simulated(), 4);
}

/// Sweep statistics flow into the shared metric registry.
#[test]
fn sweep_registers_runner_metrics() {
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(small_sweep());
    let mut reg = dice_obs::MetricRegistry::new();
    result.register(&mut reg);
    assert_eq!(reg.counter_value("runner.cells"), Some(4));
    assert_eq!(reg.counter_value("runner.simulated"), Some(4));
    assert_eq!(reg.counter_value("runner.cached"), Some(0));
    assert_eq!(reg.counter_value("runner.failed"), Some(0));
    assert_eq!(reg.counter_value("runner.timed_out"), Some(0));
    assert_eq!(reg.counter_value("runner.retried"), Some(0));
    assert_eq!(reg.counter_value("errors.cell_panic"), Some(0));
    assert_eq!(reg.counter_value("errors.cell_timeout"), Some(0));
    assert_eq!(reg.histogram_ref("runner.cell_wall_ms").unwrap().count(), 4);
}
