//! Watchdog and retry behavior: timed-out cells are reported without
//! aborting the sweep, and panicked cells get bounded retries.

use std::time::Duration;

use dice_core::{FaultKind, FaultPlan, Organization};
use dice_runner::{Cell, CellOutcome, Runner, RunnerConfig};
use dice_sim::{SimConfig, WorkloadSet};
use dice_workloads::spec_table;

fn spec(name: &str) -> dice_workloads::WorkloadSpec {
    spec_table().into_iter().find(|w| w.name == name).unwrap()
}

fn tiny_cfg(org: Organization) -> SimConfig {
    SimConfig::scaled(org, 1024).with_records(500, 1_000)
}

/// A cell over budget reports as `TimedOut`; the healthy cell in the same
/// sweep still completes, and the summary calls the timeout out.
#[test]
fn timed_out_cell_does_not_abort_the_sweep() {
    let wl = WorkloadSet::rate(spec("gcc"), 7);
    let hung = tiny_cfg(Organization::UncompressedAlloy)
        .with_inject(FaultPlan::seeded(FaultKind::CellTimeout));
    let cells = vec![
        Cell::new("ok", tiny_cfg(Organization::UncompressedAlloy), wl.clone()),
        Cell::new("hung", hung, wl),
    ];
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        cell_timeout: Some(Duration::from_secs(3)),
        // Retries must not apply to timeouts — with retries armed, a
        // retried hang would blow the test's own budget.
        retries: 3,
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(cells);
    assert_eq!(result.timed_out(), 1);
    assert_eq!(result.simulated(), 1);
    assert_eq!(result.failed(), 0);
    assert_eq!(result.retried, 0, "timeouts must not be retried");
    match &result.outcomes[&("hung".to_owned(), "gcc".to_owned())] {
        CellOutcome::TimedOut { budget } => {
            assert_eq!(*budget, Duration::from_secs(3));
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
    assert!(
        result.summary().contains("1 timed out"),
        "summary should surface the timeout: {}",
        result.summary()
    );

    let mut reg = dice_obs::MetricRegistry::new();
    result.register(&mut reg);
    assert_eq!(reg.counter_value("runner.timed_out"), Some(1));
    assert_eq!(reg.counter_value("errors.cell_timeout"), Some(1));
}

/// A deterministic panic burns through every configured retry, then lands
/// as `Failed` with the original message; the retry count is reported.
#[test]
fn panicked_cell_is_retried_then_failed() {
    let wl = WorkloadSet::rate(spec("gcc"), 7);
    let bad = tiny_cfg(Organization::UncompressedAlloy)
        .with_inject(FaultPlan::seeded(FaultKind::CellPanic));
    let cells = vec![
        Cell::new("ok", tiny_cfg(Organization::UncompressedAlloy), wl.clone()),
        Cell::new("bad", bad, wl),
    ];
    let runner = Runner::new(RunnerConfig {
        jobs: 1,
        retries: 2,
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(cells);
    assert_eq!(result.failed(), 1);
    assert_eq!(result.simulated(), 1);
    assert_eq!(result.retried, 2, "both retries should have been spent");
    match &result.outcomes[&("bad".to_owned(), "gcc".to_owned())] {
        CellOutcome::Failed { error } => assert!(
            error.contains("injected mid-cell panic"),
            "panic message should surface, got {error:?}"
        ),
        other => panic!("expected failure, got {other:?}"),
    }

    let mut reg = dice_obs::MetricRegistry::new();
    result.register(&mut reg);
    assert_eq!(reg.counter_value("runner.failed"), Some(1));
    assert_eq!(reg.counter_value("runner.retried"), Some(2));
    assert_eq!(reg.counter_value("errors.cell_panic"), Some(1));
}

/// The watchdog path (cells on dedicated threads) must not change
/// results: the same cell with and without a generous budget produces
/// byte-identical report JSON.
#[test]
fn watchdog_path_is_result_transparent() {
    let wl = WorkloadSet::rate(spec("mcf"), 7);
    let run = |cell_timeout| {
        let runner = Runner::new(RunnerConfig {
            jobs: 1,
            cell_timeout,
            ..RunnerConfig::default()
        })
        .unwrap();
        let cells = vec![Cell::new(
            "base",
            tiny_cfg(Organization::Dice { threshold: 36 }),
            wl.clone(),
        )];
        let result = runner.run(cells);
        match &result.outcomes[&("base".to_owned(), "mcf".to_owned())] {
            CellOutcome::Completed { report, .. } => report.to_json().render(),
            other => panic!("expected completion, got {other:?}"),
        }
    };
    assert_eq!(run(None), run(Some(Duration::from_secs(120))));
}
