//! Cache-key sensitivity and on-disk cache robustness.

use std::fs;
use std::sync::Arc;

use dice_core::Organization;
use dice_runner::{
    cell_fingerprint, cell_key, cell_key_with_version, Cell, CellOutcome, DiskCache, Runner,
    RunnerConfig,
};
use dice_sim::{SimConfig, System, WorkloadSet};
use dice_workloads::spec_table;

fn spec(name: &str) -> dice_workloads::WorkloadSpec {
    spec_table().into_iter().find(|w| w.name == name).unwrap()
}

fn base_cfg() -> SimConfig {
    SimConfig::scaled(Organization::Dice { threshold: 36 }, 1024).with_records(500, 1_500)
}

fn base_wl() -> WorkloadSet {
    WorkloadSet::rate(spec("gcc"), 7)
}

/// A scratch directory under the target dir, wiped on creation.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dice-runner-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Flipping any configuration or workload field must change the cell key —
/// otherwise a stale cache entry could masquerade as a different
/// experiment's result.
#[test]
fn every_config_field_feeds_the_key() {
    type Mutation = Box<dyn Fn(&mut SimConfig, &mut WorkloadSet)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        ("cores", Box::new(|c, _| c.cores = 4)),
        ("l3_bytes", Box::new(|c, _| c.l3_bytes *= 2)),
        ("l3_ways", Box::new(|c, _| c.l3_ways = 8)),
        ("l3_hit_latency", Box::new(|c, _| c.l3_hit_latency += 1)),
        (
            "organization",
            Box::new(|c, _| c.l4.organization = Organization::Dice { threshold: 40 }),
        ),
        ("l4_capacity", Box::new(|c, _| c.l4.capacity_bytes *= 2)),
        (
            "l4_dram",
            Box::new(|c, _| c.l4_dram = c.l4_dram.clone().with_double_channels()),
        ),
        (
            "mem_dram",
            Box::new(|c, _| c.mem_dram = c.mem_dram.clone().with_half_latency()),
        ),
        (
            "l3_fetch",
            Box::new(|c, _| c.l3_fetch = dice_cache::L3FetchPolicy::Wide128),
        ),
        (
            "install_pair_in_l3",
            Box::new(|c, _| c.install_pair_in_l3 = false),
        ),
        ("mlp", Box::new(|c, _| c.mlp = 4)),
        ("base_cpi", Box::new(|c, _| c.base_cpi = 0.5)),
        ("scale", Box::new(|c, _| c.scale = 512)),
        ("warmup_records", Box::new(|c, _| c.warmup_records += 1)),
        ("measure_records", Box::new(|c, _| c.measure_records += 1)),
        (
            "obs.interval_cycles",
            Box::new(|c, _| c.obs.interval_cycles = 0),
        ),
        (
            "obs.trace_capacity",
            Box::new(|c, _| c.obs.trace_capacity = 64),
        ),
        ("audit_every", Box::new(|c, _| c.audit_every = 4096)),
        (
            "inject",
            Box::new(|c, _| {
                c.inject = Some(dice_core::FaultPlan::seeded(dice_core::FaultKind::TagFlip));
            }),
        ),
        (
            "inject kind",
            Box::new(|c, _| {
                c.inject = Some(dice_core::FaultPlan::seeded(dice_core::FaultKind::SizeLie));
            }),
        ),
        ("workload seed", Box::new(|_, w| w.seed += 1)),
        ("workload name", Box::new(|_, w| w.name.push('x'))),
        ("workload specs", Box::new(|_, w| w.specs[0] = spec("mcf"))),
        (
            "spec field",
            Box::new(|_, w| w.specs[3].footprint_bytes *= 2),
        ),
    ];

    let baseline = cell_key(&base_cfg(), &base_wl());
    let mut seen = std::collections::BTreeMap::new();
    seen.insert(baseline, "baseline");
    for (label, mutate) in &mutations {
        let mut cfg = base_cfg();
        let mut wl = base_wl();
        mutate(&mut cfg, &mut wl);
        let key = cell_key(&cfg, &wl);
        if let Some(clash) = seen.insert(key, label) {
            panic!("mutating {label} produced the same key as {clash}");
        }
    }
}

/// The crate version is part of the key, so a report format change
/// invalidates old caches instead of misparsing them.
#[test]
fn crate_version_feeds_the_key() {
    let fp = cell_fingerprint(&base_cfg(), &base_wl());
    assert_ne!(
        cell_key_with_version(&fp, "0.1.0"),
        cell_key_with_version(&fp, "0.2.0")
    );
}

/// Store/load round-trip returns a report whose JSON is byte-identical to
/// the freshly simulated one.
#[test]
fn disk_cache_round_trip_is_lossless() {
    let dir = scratch("roundtrip");
    let cache = DiskCache::open(&dir).unwrap();
    let report = System::new(base_cfg(), &base_wl()).run();
    let key = cell_key(&base_cfg(), &base_wl());
    cache.store(key, "dice36", &report).unwrap();
    let loaded = cache.load(key).expect("entry should load");
    assert_eq!(loaded.to_json().render(), report.to_json().render());
    fs::remove_dir_all(&dir).unwrap();
}

/// Corrupted, truncated, wrong-key and non-JSON cache files are misses,
/// never panics.
#[test]
fn corrupt_cache_entries_are_discarded() {
    let dir = scratch("corrupt");
    let cache = DiskCache::open(&dir).unwrap();
    let report = System::new(base_cfg(), &base_wl()).run();
    let key = cell_key(&base_cfg(), &base_wl());
    cache.store(key, "dice36", &report).unwrap();
    let good = fs::read_to_string(cache.entry_path(key)).unwrap();

    let half = good.len() / 2;
    let cases: Vec<(&str, String)> = vec![
        ("empty", String::new()),
        ("zero-byte truncation", String::new()),
        ("not json", "definitely { not json".to_owned()),
        ("truncated", good[..half].to_owned()),
        (
            "truncated mid-report JSON",
            good[..good.len() - 2].to_owned(),
        ),
        ("wrong type", "[1, 2, 3]".to_owned()),
        (
            "wrong format version",
            good.replacen("\"format\":1", "\"format\":99", 1),
        ),
        (
            "missing report",
            "{\"format\": 1, \"key\": \"0000000000000000\"}".to_owned(),
        ),
        (
            "wrong embedded key hash",
            good.replacen(&format!("{key:016x}"), "00000000deadbeef", 1),
        ),
    ];
    let n_cases = cases.len() as u64;
    for (label, text) in cases {
        fs::write(cache.entry_path(key), text).unwrap();
        assert!(
            cache.load(key).is_none(),
            "{label} entry should be treated as a miss"
        );
    }
    assert_eq!(
        cache.discarded(),
        n_cases,
        "every corrupt entry should count as discarded"
    );

    // An entry stored under the wrong key (e.g. a renamed file) is
    // rejected by the embedded-key check.
    fs::write(cache.entry_path(key ^ 1), good).unwrap();
    assert!(cache.load(key ^ 1).is_none());
    fs::remove_dir_all(&dir).unwrap();
}

/// End-to-end degrade-to-miss: poisoning the cache between sweeps makes
/// the runner re-simulate (reporting the discards) and still produce
/// byte-identical results.
#[test]
fn poisoned_cache_degrades_to_misses_and_resimulates() {
    let dir = scratch("poisoned");
    let cells = || vec![Cell::new("base", base_cfg(), base_wl())];
    let runner = Runner::new(RunnerConfig {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::default()
    })
    .unwrap();

    let cold = runner.run(cells());
    assert_eq!(cold.simulated(), 1);
    assert_eq!(cold.cache_discarded, 0);

    // Poison every entry on disk (truncate to a zero-byte file).
    let mut poisoned = 0;
    for e in fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
        if e.path().extension().is_some_and(|x| x == "json") {
            fs::write(e.path(), "").unwrap();
            poisoned += 1;
        }
    }
    assert_eq!(poisoned, 1);

    let after = runner.run(cells());
    assert_eq!(after.simulated(), 1, "poisoned entry must re-simulate");
    assert_eq!(after.cached(), 0);
    assert_eq!(after.failed(), 0);
    assert_eq!(after.cache_discarded, 1);

    let render = |o: &CellOutcome| match o {
        CellOutcome::Completed { report, .. } => Arc::clone(report).to_json().render(),
        other => panic!("unexpected outcome: {other:?}"),
    };
    let k = ("base".to_owned(), "gcc".to_owned());
    assert_eq!(render(&cold.outcomes[&k]), render(&after.outcomes[&k]));
    fs::remove_dir_all(&dir).unwrap();
}

/// Concurrent store/load of the *same key* under real contention: every
/// load must observe either a miss or a complete, byte-identical entry —
/// never a partial read — and nothing may be counted as discarded. This
/// exercises the temp-file-and-rename atomicity claim in
/// `crates/runner/src/cache.rs` (including the per-thread temp-name
/// uniqueness: before temp names carried a sequence number, two threads
/// storing one key could interleave writes through the same temp file).
#[test]
fn concurrent_same_key_store_load_is_atomic() {
    let dir = scratch("contention");
    let cache = DiskCache::open(&dir).unwrap();
    let report = System::new(base_cfg(), &base_wl()).run();
    let key = cell_key(&base_cfg(), &base_wl());
    let expected = report.to_json().render();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..25 {
                    cache.store(key, "dice36", &report).expect("store");
                }
            });
        }
        for _ in 0..4 {
            scope.spawn(|| {
                let mut hits = 0u32;
                for _ in 0..50 {
                    if let Some(loaded) = cache.load(key) {
                        hits += 1;
                        assert_eq!(
                            loaded.to_json().render(),
                            expected,
                            "a concurrent load saw a partial or corrupt entry"
                        );
                    }
                }
                hits
            });
        }
    });

    assert_eq!(
        cache.discarded(),
        0,
        "contention must never manifest as discarded entries"
    );
    // The entry survives the stampede intact and no temp files leak.
    let final_entry = cache
        .load(key)
        .expect("entry must exist after the stampede");
    assert_eq!(final_entry.to_json().render(), expected);
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    fs::remove_dir_all(&dir).unwrap();
}

/// Concurrent stores of *distinct* keys must each land intact (the lost-
/// entry half of the atomicity claim).
#[test]
fn concurrent_distinct_key_stores_lose_nothing() {
    let dir = scratch("distinct");
    let cache = DiskCache::open(&dir).unwrap();
    let report = System::new(base_cfg(), &base_wl()).run();
    let expected = report.to_json().render();
    let keys: Vec<u64> = (0..32u64).map(|i| 0xbeef_0000 + i).collect();

    std::thread::scope(|scope| {
        for chunk in keys.chunks(8) {
            let cache = &cache;
            let report = &report;
            scope.spawn(move || {
                for &k in chunk {
                    cache.store(k, "t", report).expect("store");
                }
            });
        }
    });

    for &k in &keys {
        let loaded = cache.load(k).unwrap_or_else(|| panic!("entry {k:#x} lost"));
        assert_eq!(loaded.to_json().render(), expected);
    }
    assert_eq!(cache.discarded(), 0);
    fs::remove_dir_all(&dir).unwrap();
}

/// The cooperative cancel hook: a pre-cancelled sweep claims no cells,
/// reports them all as cancelled, and an uncancelled run of the same cells
/// still completes normally.
#[test]
fn cancel_flag_skips_unclaimed_cells() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let cells = || {
        vec![
            Cell::new("base", base_cfg(), base_wl()),
            Cell::new("dice36", base_cfg(), WorkloadSet::rate(spec("soplex"), 7)),
        ]
    };
    let cancel = Arc::new(AtomicBool::new(true));
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        cancel: Some(Arc::clone(&cancel)),
        ..RunnerConfig::default()
    })
    .unwrap();
    let sweep = runner.run(cells());
    assert_eq!(sweep.cancelled, 2);
    assert!(sweep.outcomes.is_empty());
    assert!(sweep.summary().contains("(2 cancelled)"));

    cancel.store(false, Ordering::Relaxed);
    let sweep = runner.run(cells());
    assert_eq!(sweep.cancelled, 0);
    assert_eq!(sweep.simulated(), 2);
}

/// A warm cache skips every completed cell, and the recalled reports render
/// the same JSON as the cold run's.
#[test]
fn warm_cache_skips_all_simulation() {
    let dir = scratch("warm");
    let cells = || {
        vec![
            Cell::new("base", base_cfg(), base_wl()),
            Cell::new("dice36", base_cfg(), WorkloadSet::rate(spec("soplex"), 7)),
        ]
    };
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::default()
    })
    .unwrap();

    let cold = runner.run(cells());
    assert_eq!(cold.simulated(), 2);
    assert_eq!(cold.cached(), 0);

    let warm = runner.run(cells());
    assert_eq!(warm.simulated(), 0);
    assert_eq!(warm.cached(), 2);

    let render = |o: &CellOutcome| match o {
        CellOutcome::Completed { report, .. } => Arc::clone(report).to_json().render(),
        other => panic!("unexpected outcome: {other:?}"),
    };
    for (k, cold_outcome) in &cold.outcomes {
        assert_eq!(
            render(cold_outcome),
            render(&warm.outcomes[k]),
            "cell {k:?}"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Crash-consistency, exhaustively: a cache entry cut short at *every*
/// possible byte offset — the file a crashed writer without the
/// temp-and-rename discipline would leave — must load as a miss and
/// count as discarded. No prefix may panic the loader, and no prefix may
/// masquerade as a valid report (a proper prefix of a JSON object is
/// never itself a complete object, and the decode path enforces the
/// format/key/report envelope on anything that parses).
#[test]
fn truncation_at_every_byte_offset_degrades_to_a_miss() {
    let dir = scratch("truncate-sweep");
    let cache = DiskCache::open(&dir).unwrap();
    let report = System::new(base_cfg(), &base_wl()).run();
    let key = cell_key(&base_cfg(), &base_wl());
    cache.store(key, "dice36", &report).unwrap();
    let good = fs::read(cache.entry_path(key)).unwrap();

    let before = cache.discarded();
    for len in 0..good.len() {
        fs::write(cache.entry_path(key), &good[..len]).unwrap();
        assert!(
            cache.load(key).is_none(),
            "a {len}-byte prefix of a {}-byte entry loaded as a hit",
            good.len()
        );
        assert_eq!(
            cache.discarded(),
            before + len as u64 + 1,
            "a {len}-byte prefix was a miss but not counted discarded"
        );
    }

    // Restoring the full bytes restores the hit, byte-identically.
    fs::write(cache.entry_path(key), &good).unwrap();
    let loaded = cache.load(key).expect("intact entry must load");
    assert_eq!(loaded.to_json().render(), report.to_json().render());
    fs::remove_dir_all(&dir).unwrap();
}

/// Proptest-style seeded fuzz over single-byte corruptions: overwriting
/// any one byte with any seeded value must never panic the loader, and
/// every miss must be matched by exactly one discard tick. (A mutation
/// the envelope cannot detect — e.g. a digit flip inside the report body
/// — may legitimately still load; detecting those is the transport
/// checksum's job, not the cache's.)
#[test]
fn seeded_single_byte_corruptions_never_panic() {
    // SplitMix64: tiny, seeded, reproducible — the failure message names
    // the (offset, value) pair so any find replays directly.
    let mut state = 0xd1ce_cafe_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };

    let dir = scratch("byte-fuzz");
    let cache = DiskCache::open(&dir).unwrap();
    let report = System::new(base_cfg(), &base_wl()).run();
    let key = cell_key(&base_cfg(), &base_wl());
    cache.store(key, "dice36", &report).unwrap();
    let good = fs::read(cache.entry_path(key)).unwrap();

    for _ in 0..512 {
        let offset = (next() % good.len() as u64) as usize;
        let value = (next() % 256) as u8;
        let mut mutated = good.clone();
        mutated[offset] = value;
        fs::write(cache.entry_path(key), &mutated).unwrap();
        let discarded = cache.discarded();
        let outcome = cache.load(key);
        if outcome.is_none() {
            assert_eq!(
                cache.discarded(),
                discarded + 1,
                "miss without a discard tick at offset {offset} value {value:#04x}"
            );
        } else {
            assert_eq!(
                cache.discarded(),
                discarded,
                "hit with a discard tick at offset {offset} value {value:#04x}"
            );
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}
