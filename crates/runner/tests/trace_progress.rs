//! Span tracing and live progress across the worker pool.

use std::sync::{Arc, Mutex};

use dice_core::Organization;
use dice_obs::{SpanRecord, TraceCtx};
use dice_runner::{Cell, CellProgress, ProgressSink, Runner, RunnerConfig};
use dice_sim::{SimConfig, WorkloadSet};
use dice_workloads::spec_table;

fn spec(name: &str) -> dice_workloads::WorkloadSpec {
    spec_table().into_iter().find(|w| w.name == name).unwrap()
}

fn quick_cfg(org: Organization) -> SimConfig {
    SimConfig::scaled(org, 1024).with_records(1_000, 2_500)
}

fn small_sweep() -> Vec<Cell> {
    let mut cells = Vec::new();
    for name in ["gcc", "mcf"] {
        let wl = WorkloadSet::rate(spec(name), 7);
        cells.push(Cell::new(
            "base",
            quick_cfg(Organization::UncompressedAlloy),
            wl.clone(),
        ));
        cells.push(Cell::new(
            "dice36",
            quick_cfg(Organization::Dice { threshold: 36 }),
            wl,
        ));
    }
    cells
}

fn children<'a>(spans: &'a [SpanRecord], parent: &SpanRecord) -> Vec<&'a SpanRecord> {
    spans
        .iter()
        .filter(|s| s.parent == Some(parent.id))
        .collect()
}

/// A traced parallel sweep yields a single causally-linked tree: one root,
/// one `cell:` span per unique cell under it, and each simulation's
/// warmup/measure phases under their cell — even though the cells ran on
/// different worker threads.
#[test]
fn traced_sweep_yields_one_causally_linked_tree() {
    let ctx = TraceCtx::enabled();
    let root_id = {
        let root = ctx.span("sweep", None).unwrap();
        let id = root.id();
        let runner = Runner::new(RunnerConfig {
            jobs: 3,
            trace: Some(ctx.clone()),
            trace_parent: Some(id),
            ..RunnerConfig::default()
        })
        .unwrap();
        let result = runner.run(small_sweep());
        assert_eq!(result.failed(), 0);
        id
    };

    let spans = ctx.spans();
    let root = spans.iter().find(|s| s.id == root_id).unwrap();
    assert!(root.parent.is_none());

    let cells: Vec<_> = children(&spans, root);
    assert_eq!(cells.len(), 4, "one cell span per unique cell");
    let mut names: Vec<_> = cells.iter().map(|s| s.name.clone()).collect();
    names.sort();
    assert_eq!(
        names,
        [
            "cell:base/gcc",
            "cell:base/mcf",
            "cell:dice36/gcc",
            "cell:dice36/mcf"
        ]
    );

    for cell in &cells {
        let phases = children(&spans, cell);
        let mut phase_names: Vec<_> = phases.iter().map(|s| s.name.as_str()).collect();
        phase_names.sort_unstable();
        assert_eq!(
            phase_names,
            ["sim.measure", "sim.warmup"],
            "cell {} should parent both simulation phases",
            cell.name
        );
        for phase in &phases {
            assert!(phase.end_us >= phase.start_us);
            assert!(phase.cycles.is_some(), "phase spans carry sim-cycle bounds");
        }
    }

    // Every span except the root links back to the tree.
    for s in &spans {
        if s.id != root_id {
            assert!(s.parent.is_some(), "span {} is orphaned", s.name);
        }
    }
}

/// The progress sink fires exactly once per unique cell, in completion
/// order (seq 1..=total), and a disabled trace adds no spans.
#[test]
fn progress_events_fire_once_per_cell_in_completion_order() {
    let events: Arc<Mutex<Vec<CellProgress>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_events = Arc::clone(&events);
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        progress: Some(ProgressSink::new(move |p| {
            sink_events.lock().unwrap().push(p);
        })),
        ..RunnerConfig::default()
    })
    .unwrap();
    let result = runner.run(small_sweep());
    assert_eq!(result.failed(), 0);

    let events = events.lock().unwrap();
    assert_eq!(events.len(), 4);
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.seq, i + 1, "events arrive in completion order");
        assert_eq!(ev.total, 4);
        assert_eq!(ev.status, "simulated");
        assert!(ev.wall_ms < 600_000);
    }
    let mut keys: Vec<_> = events
        .iter()
        .map(|e| format!("{}/{}", e.tag, e.workload))
        .collect();
    keys.sort();
    assert_eq!(keys, ["base/gcc", "base/mcf", "dice36/gcc", "dice36/mcf"]);
}
