//! `dice-runner`: the parallel experiment engine for the DICE harness.
//!
//! The full `experiments all` sweep simulates hundreds of
//! `(configuration, workload)` cells that are completely independent of
//! each other — embarrassingly parallel work that the original harness
//! ran serially through a single-threaded memo. This crate turns that
//! loop into a real job-execution subsystem:
//!
//! * [`Cell`] — one declared unit of work (`tag`, [`SimConfig`],
//!   [`WorkloadSet`]); figure generators enumerate their cells up front
//!   instead of simulating mid-render.
//! * [`Runner`] — schedules unique cells across `jobs` worker threads
//!   (std scoped threads over per-worker work-stealing deques: owner
//!   pops LIFO, an idle thread steals the front half of the longest
//!   queue; no dependencies), isolates each simulation with
//!   `catch_unwind` so one diverging configuration reports a failed cell
//!   instead of killing the sweep, and dedupes cells shared between
//!   figures.
//! * [`DiskCache`] — a persistent result cache: completed cells are
//!   stored as lossless [`RunReport`](dice_sim::RunReport) JSON keyed by
//!   [`cell_key`] (a stable hash over every config/workload field plus
//!   the crate version), so re-runs and resumed sweeps skip completed
//!   work. Corrupt entries degrade to misses with a warning.
//! * [`SweepResult`] — sorted outcomes plus scheduling stats, exportable
//!   into a [`dice_obs::MetricRegistry`] (`runner.*` counters and a
//!   per-cell wall-time histogram).
//!
//! Determinism contract: for the same cells, `--jobs 1` and `--jobs N`
//! (and cold vs warm cache) produce byte-identical report JSON.
//!
//! [`SimConfig`]: dice_sim::SimConfig
//! [`WorkloadSet`]: dice_sim::WorkloadSet

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod key;

pub use cache::DiskCache;
pub use engine::{
    engine_runs, simulations_started, Cell, CellOutcome, CellProgress, ProgressSink, Runner,
    RunnerConfig, SweepResult,
};
pub use key::{cell_fingerprint, cell_key, cell_key_with_version, fnv1a64};
