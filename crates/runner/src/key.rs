//! Stable cache keys for experiment cells.
//!
//! A cell's result is fully determined by its [`SimConfig`] and
//! [`WorkloadSet`] (the simulator is deterministic), so the persistent
//! cache keys entries by a hash of both — plus the crate version, so a
//! rebuilt simulator never replays results produced by different code.
//!
//! The fingerprint is the `Debug` rendering of the two structs. Every
//! field of every nested config struct (`DramCacheConfig`, `DramConfig`,
//! `ObsConfig`, `L3FetchPolicy`, each `WorkloadSpec`…) appears in it, so
//! flipping *any* knob — including ones added after this crate was
//! written — changes the key. That is the property the cache needs;
//! cross-version key stability is explicitly **not** promised (the
//! version term already invalidates old entries on every release).
//!
//! File-backed traces are keyed by *content*, not just by path: a
//! [`WorkloadSet`] with a trace binding attached carries the `.dtf`
//! file's FNV-1a content hash inside the binding, and the binding's
//! `Debug` form lands in the fingerprint below. Regenerating a trace
//! file in place therefore invalidates every cached cell that consumed
//! the old bytes.

use dice_sim::{SimConfig, WorkloadSet};

/// 64-bit FNV-1a. Stable across platforms and builds, cheap, and good
/// enough for a cache keyed by a few thousand distinct configurations.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical text a cell's cache key is hashed from: every field of
/// the configuration and the workload set.
#[must_use]
pub fn cell_fingerprint(cfg: &SimConfig, workload: &WorkloadSet) -> String {
    format!("{cfg:?}|{workload:?}")
}

/// Cache key for a fingerprint under an explicit crate version (split out
/// from [`cell_key`] so tests can demonstrate version sensitivity).
#[must_use]
pub fn cell_key_with_version(fingerprint: &str, version: &str) -> u64 {
    fnv1a64(format!("dice-runner/{version}/{fingerprint}").as_bytes())
}

/// Cache key for one cell: hash of the full fingerprint and this crate's
/// version.
#[must_use]
pub fn cell_key(cfg: &SimConfig, workload: &WorkloadSet) -> u64 {
    cell_key_with_version(&cell_fingerprint(cfg, workload), env!("CARGO_PKG_VERSION"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn version_term_changes_the_key() {
        let a = cell_key_with_version("same-fingerprint", "0.1.0");
        let b = cell_key_with_version("same-fingerprint", "0.2.0");
        assert_ne!(a, b);
    }
}
