//! Persistent on-disk result cache.
//!
//! One JSON file per cell, named by the cell's [key](crate::cell_key) in
//! hex. Each file embeds a format version, the key it was written under,
//! the cell identity (tag + workload, for humans poking around the
//! directory) and the lossless [`RunReport`] serialization.
//!
//! Robustness policy: a cache can always be deleted, so **nothing in here
//! panics on bad input**. Corrupted, truncated or wrong-format files are
//! reported to stderr and treated as misses; writes go through a
//! temp-file-and-rename so a crashed or concurrent run never leaves a
//! half-written entry under a live key.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dice_obs::Json;
use dice_sim::RunReport;

/// On-disk entry format version; bump when the envelope layout changes.
/// (`RunReport` layout changes are already covered by the crate-version
/// term in the cell key.)
const FORMAT: u64 = 1;

/// A directory of cached [`RunReport`]s keyed by cell hash.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    /// Entries found unreadable or corrupt and treated as misses
    /// (atomic: `load` takes `&self` and runs from worker threads).
    discarded: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            discarded: AtomicU64::new(0),
        })
    }

    /// Number of cache entries discarded as unreadable or corrupt since
    /// this handle was opened.
    #[must_use]
    pub fn discarded(&self) -> u64 {
        self.discarded.load(Ordering::Relaxed)
    }

    /// The directory this cache lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    #[must_use]
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Loads the report cached under `key`, or `None` on a miss. A file
    /// that exists but fails to parse or validate is a miss with a stderr
    /// warning — never a panic.
    #[must_use]
    pub fn load(&self, key: u64) -> Option<RunReport> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.discarded.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "[dice-runner] ignoring unreadable cache entry {}: {e}",
                    path.display()
                );
                return None;
            }
        };
        match Self::decode(key, &text) {
            Ok(report) => Some(report),
            Err(why) => {
                self.discarded.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "[dice-runner] discarding corrupt cache entry {}: {why}",
                    path.display()
                );
                None
            }
        }
    }

    fn decode(key: u64, text: &str) -> Result<RunReport, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        match doc.get("format").and_then(Json::as_u64) {
            Some(FORMAT) => {}
            other => return Err(format!("unsupported format {other:?} (want {FORMAT})")),
        }
        let stored_key = doc.get("key").and_then(Json::as_str).unwrap_or("");
        if stored_key != format!("{key:016x}") {
            return Err(format!("key mismatch (file says {stored_key:?})"));
        }
        doc.get("report")
            .and_then(RunReport::from_json)
            .ok_or_else(|| "malformed report".to_owned())
    }

    /// Writes `report` under `key`. The write is atomic (temp file +
    /// rename), so concurrent runs — and concurrent threads within one
    /// run — sharing a cache directory at worst duplicate work, never
    /// corrupt each other. Temp names carry the process id *and* a
    /// process-wide sequence number, so two threads storing the same key
    /// simultaneously never write through the same temp file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the entry cannot be written.
    pub fn store(&self, key: u64, tag: &str, report: &RunReport) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let doc = Json::Obj(vec![
            ("format".into(), Json::u64(FORMAT)),
            ("key".into(), Json::str(format!("{key:016x}"))),
            ("tag".into(), Json::str(tag)),
            ("workload".into(), Json::str(&report.workload)),
            ("report".into(), report.to_json()),
        ]);
        let final_path = self.entry_path(key);
        let tmp_path = self.dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp_path, doc.render())?;
        fs::rename(&tmp_path, &final_path)
    }
}
