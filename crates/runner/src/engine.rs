//! The parallel experiment engine.
//!
//! Declare-then-execute: callers enumerate every `(config, workload)`
//! [`Cell`] of a sweep up front, and [`Runner::run`] schedules them across
//! a pool of worker threads using **work-stealing deques**: cells are
//! dealt round-robin into one double-ended queue per worker, each worker
//! pops its own queue LIFO (back), and a worker that runs dry steals the
//! front half (FIFO) of the longest remaining queue. Skewed sweeps — a
//! few slow full-scale cells amid hundreds of fast ones — therefore keep
//! every thread busy until the global queue set drains, instead of
//! leaving late-claiming threads idle behind one shared work index.
//! Steal operations and end-of-sweep idle time are reported as
//! [`SweepResult::steals`] and [`SweepResult::tail_idle_ms`].
//!
//! Three properties the harness depends on:
//!
//! * **Determinism** — a cell's result depends only on its config and
//!   workload (the simulator is seeded), and results are keyed and
//!   returned in a sorted map, so `--jobs 1` and `--jobs N` produce
//!   byte-identical artifacts regardless of which worker ran (or stole)
//!   which cell.
//! * **Fault isolation** — each cell runs under `catch_unwind`; a
//!   diverging configuration turns into a [`CellOutcome::Failed`] entry
//!   with the panic message, and every other cell still completes.
//! * **Memoization** — duplicate cells (every figure re-requests the
//!   uncompressed baseline) are collapsed before scheduling, and with a
//!   [`DiskCache`] attached, completed cells persist across invocations
//!   and resume interrupted sweeps for free.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use dice_obs::{Histogram, MetricRegistry, SpanGuard, SpanId, TraceCtx};
use dice_sim::{RunReport, SimConfig, System, WorkloadSet};

use crate::cache::DiskCache;
use crate::key::cell_key;

/// Process-wide count of [`Runner::run`] invocations (sweeps started).
static ENGINE_RUNS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of simulation attempts actually started (cache hits
/// and coalesced duplicates never reach this counter).
static SIMULATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of sweeps started through the engine since process start.
///
/// Single-flight layers (e.g. `dice-serve`) assert on deltas of this
/// counter to prove that N identical submissions executed exactly one
/// sweep.
#[must_use]
pub fn engine_runs() -> u64 {
    ENGINE_RUNS.load(Ordering::Relaxed)
}

/// Number of simulation attempts started since process start (excludes
/// persistent-cache hits).
#[must_use]
pub fn simulations_started() -> u64 {
    SIMULATIONS.load(Ordering::Relaxed)
}

/// One schedulable unit: a tagged configuration applied to one workload
/// set.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Configuration tag; with the workload name it is the memo key, so it
    /// must uniquely identify `cfg` within a sweep.
    pub tag: String,
    /// Full simulator configuration.
    pub cfg: SimConfig,
    /// What the cores run.
    pub workload: WorkloadSet,
}

impl Cell {
    /// A cell for `cfg` on `workload` under `tag`.
    #[must_use]
    pub fn new(tag: impl Into<String>, cfg: SimConfig, workload: WorkloadSet) -> Self {
        Self {
            tag: tag.into(),
            cfg,
            workload,
        }
    }

    /// The `(tag, workload name)` memo identity.
    #[must_use]
    pub fn memo_key(&self) -> (String, String) {
        (self.tag.clone(), self.workload.name.clone())
    }
}

/// How one cell ended.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell completed (freshly simulated or recalled from the
    /// persistent cache).
    Completed {
        /// The run's measurements.
        report: Arc<RunReport>,
        /// Whether the result came from the persistent cache.
        from_cache: bool,
        /// Wall time spent on this cell (simulation or cache load).
        wall: Duration,
    },
    /// The cell panicked (after exhausting any configured retries); the
    /// sweep continued without it.
    Failed {
        /// The panic message.
        error: String,
    },
    /// The cell exceeded the per-cell wall-clock budget; its worker
    /// thread was abandoned and the sweep continued without it.
    TimedOut {
        /// The budget it blew through.
        budget: Duration,
    },
}

/// One per-cell completion notice, emitted in completion order while a
/// sweep runs (the live-progress payload behind `dice-serve`'s SSE
/// endpoint).
#[derive(Debug, Clone)]
pub struct CellProgress {
    /// 1-based completion index (the order cells *finished*, which under
    /// parallel scheduling differs from submission order).
    pub seq: usize,
    /// Unique cells in the sweep.
    pub total: usize,
    /// The cell's configuration tag.
    pub tag: String,
    /// The cell's workload name.
    pub workload: String,
    /// How the cell ended: `simulated`, `cached`, `failed` or
    /// `timed_out`.
    pub status: &'static str,
    /// Wall time spent on the cell in milliseconds (0 for failures,
    /// the budget for timeouts).
    pub wall_ms: u64,
}

/// A live progress callback, invoked from the sweep's collector thread
/// once per finished cell, in completion order.
#[derive(Clone)]
pub struct ProgressSink(Arc<dyn Fn(CellProgress) + Send + Sync>);

impl ProgressSink {
    /// Wraps a callback.
    pub fn new(f: impl Fn(CellProgress) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    /// Delivers one progress event.
    pub fn emit(&self, p: CellProgress) {
        (self.0)(p);
    }
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressSink(..)")
    }
}

/// Scheduling knobs for one [`Runner`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads (≥ 1). Defaults to the host's available parallelism.
    pub jobs: usize,
    /// Persistent result cache directory (`None` = in-memory dedupe only).
    pub cache_dir: Option<PathBuf>,
    /// Print per-cell progress lines to stderr as cells finish.
    pub verbose: bool,
    /// Per-cell wall-clock budget (`None` = unlimited). With a budget
    /// set, each simulation runs on its own watchdog-monitored thread; a
    /// cell that blows the budget becomes [`CellOutcome::TimedOut`] and
    /// its thread is abandoned (the simulator allocates nothing global,
    /// so an abandoned thread can only waste CPU until process exit).
    pub cell_timeout: Option<Duration>,
    /// Retries for a panicked cell before recording it as
    /// [`CellOutcome::Failed`] (0 = fail on first panic). Timed-out cells
    /// are never retried — a deterministic simulator that blew its budget
    /// once will blow it again.
    pub retries: u32,
    /// Cooperative cancellation hook. When the flag flips to `true`,
    /// workers finish the cells they already claimed (in-flight work is
    /// never abandoned mid-simulation) but claim no further ones; the
    /// sweep returns early with the skipped cells counted in
    /// [`SweepResult::cancelled`]. `None` = never cancelled.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Span-tracing context. When enabled, every cell gets a span (child
    /// of [`trace_parent`](Self::trace_parent)) and each simulation's
    /// warmup/measure phases nest under it, yielding one causally-linked
    /// tree for the whole sweep across worker threads.
    pub trace: Option<TraceCtx>,
    /// Parent span for the per-cell spans (e.g. the serve request span).
    pub trace_parent: Option<SpanId>,
    /// Live per-cell progress callback, invoked in completion order.
    pub progress: Option<ProgressSink>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            jobs: std::thread::available_parallelism().map_or(1, usize::from),
            cache_dir: None,
            verbose: false,
            cell_timeout: None,
            retries: 0,
            cancel: None,
            trace: None,
            trace_parent: None,
            progress: None,
        }
    }
}

/// Everything a sweep produced: per-cell outcomes (sorted by memo key for
/// deterministic iteration) plus scheduling statistics.
#[derive(Debug)]
pub struct SweepResult {
    /// Outcome per unique `(tag, workload)` cell.
    pub outcomes: BTreeMap<(String, String), CellOutcome>,
    /// Duplicate cells collapsed before scheduling.
    pub deduped: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall time for the whole sweep.
    pub wall: Duration,
    /// Per-cell wall-time distribution in milliseconds (completed cells).
    pub cell_wall_ms: Histogram,
    /// Panicked attempts that were retried (whether or not the retry
    /// eventually succeeded).
    pub retried: usize,
    /// Persistent-cache entries discarded as corrupt during this sweep.
    pub cache_discarded: u64,
    /// Cells never started because the [`RunnerConfig::cancel`] flag
    /// flipped mid-sweep (they have no entry in `outcomes`).
    pub cancelled: usize,
    /// Successful steal operations: times an idle worker took the front
    /// half of another worker's queue. Zero on single-job runs and on
    /// sweeps balanced enough that no worker ever ran dry early.
    pub steals: u64,
    /// Total worker idle time at the sweep tail, in milliseconds: for
    /// each worker, the gap between it running out of stealable work and
    /// the last worker finishing, summed. Large values relative to
    /// [`wall`](Self::wall) mean the tail was serialized on a few slow
    /// cells.
    pub tail_idle_ms: u64,
}

impl SweepResult {
    fn count(&self, f: impl Fn(&CellOutcome) -> bool) -> usize {
        self.outcomes.values().filter(|o| f(o)).count()
    }

    /// Cells that were freshly simulated.
    #[must_use]
    pub fn simulated(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Completed { from_cache, .. } if !from_cache))
    }

    /// Cells recalled from the persistent cache.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Completed { from_cache, .. } if *from_cache))
    }

    /// Cells that panicked.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Failed { .. }))
    }

    /// Cells killed by the per-cell watchdog.
    #[must_use]
    pub fn timed_out(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::TimedOut { .. }))
    }

    /// Registers the sweep's counters and the per-cell wall-time histogram
    /// under `runner.*` in `reg`.
    pub fn register(&self, reg: &mut MetricRegistry) {
        for (name, v) in [
            ("runner.cells", self.outcomes.len()),
            ("runner.simulated", self.simulated()),
            ("runner.cached", self.cached()),
            ("runner.failed", self.failed()),
            ("runner.timed_out", self.timed_out()),
            ("runner.retried", self.retried),
            ("runner.deduped", self.deduped),
            ("runner.jobs", self.jobs),
        ] {
            let id = reg.counter(name);
            reg.set(id, v as u64);
        }
        let id = reg.counter("runner.cancelled");
        reg.set(id, self.cancelled as u64);
        let id = reg.counter("runner.cache_discarded");
        reg.set(id, self.cache_discarded);
        let id = reg.counter("runner.steals");
        reg.set(id, self.steals);
        let id = reg.counter("runner.tail_idle_ms");
        reg.set(id, self.tail_idle_ms);
        let id = reg.counter("runner.wall_ms");
        reg.set(id, self.wall.as_millis() as u64);
        let h = reg.histogram("runner.cell_wall_ms");
        reg.merge_histogram(h, &self.cell_wall_ms);

        // Event-engine counters (`sim.*`): process-wide totals from the
        // simulator's timing wheel, aggregated across every cell this
        // process has simulated (cached cells contribute nothing).
        let engine = dice_sim::engine_counters();
        for (name, v) in [
            ("sim.events_scheduled", engine.events_scheduled),
            ("sim.events_chained", engine.events_chained),
            ("sim.wheel_cascades", engine.wheel_cascades),
        ] {
            let id = reg.counter(name);
            reg.set(id, v);
        }

        // Per-class error counters (`errors.*`): the sweep's failures
        // expressed in the shared DiceError taxonomy.
        dice_obs::register_error_counters(reg);
        for ((tag, wl), outcome) in &self.outcomes {
            let err = match outcome {
                CellOutcome::Completed { .. } => continue,
                CellOutcome::Failed { error } => dice_obs::DiceError::CellPanic {
                    cell: format!("{tag}/{wl}"),
                    message: error.clone(),
                },
                CellOutcome::TimedOut { budget } => dice_obs::DiceError::CellTimeout {
                    cell: format!("{tag}/{wl}"),
                    budget_ms: budget.as_millis() as u64,
                },
            };
            dice_obs::record_error(reg, &err);
        }
        for _ in 0..self.cache_discarded {
            dice_obs::record_error(
                reg,
                &dice_obs::DiceError::CacheEntry {
                    path: String::new(),
                    reason: String::new(),
                },
            );
        }
    }

    /// A one-line human summary (`N cells: a simulated, b cached, …`).
    /// Watchdog and retry counts appear only when nonzero, keeping the
    /// healthy-path wording (which CI greps) stable.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut extras = String::new();
        if self.timed_out() > 0 {
            extras.push_str(&format!(" ({} timed out)", self.timed_out()));
        }
        if self.retried > 0 {
            extras.push_str(&format!(" ({} retried)", self.retried));
        }
        if self.cancelled > 0 {
            extras.push_str(&format!(" ({} cancelled)", self.cancelled));
        }
        format!(
            "{} cells ({} deduped): {} simulated, {} cached, {} failed{extras} in {:.1}s on {} job{}",
            self.outcomes.len(),
            self.deduped,
            self.simulated(),
            self.cached(),
            self.failed(),
            self.wall.as_secs_f64(),
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
        )
    }
}

/// The parallel experiment engine. See the module docs for the contract.
#[derive(Debug)]
pub struct Runner {
    config: RunnerConfig,
    cache: Option<DiskCache>,
}

impl Runner {
    /// Builds a runner, opening (and creating if needed) the persistent
    /// cache directory when one is configured.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directory cannot be created.
    pub fn new(config: RunnerConfig) -> io::Result<Self> {
        let cache = match &config.cache_dir {
            Some(dir) => Some(DiskCache::open(dir)?),
            None => None,
        };
        Ok(Self { config, cache })
    }

    /// The effective configuration.
    #[must_use]
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Executes `cells` across the worker pool and returns every unique
    /// cell's outcome. Duplicate `(tag, workload)` cells are collapsed
    /// (first occurrence wins); a duplicate whose configuration hashes
    /// differently from the kept one is a harness bug and gets a stderr
    /// warning.
    #[must_use]
    pub fn run(&self, cells: Vec<Cell>) -> SweepResult {
        ENGINE_RUNS.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let jobs = self.config.jobs.max(1);

        // Dedupe, preserving first-seen order for stable scheduling.
        let mut seen: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut unique: Vec<Cell> = Vec::with_capacity(cells.len());
        let mut deduped = 0usize;
        for cell in cells {
            let key = cell_key(&cell.cfg, &cell.workload);
            match seen.get(&cell.memo_key()) {
                None => {
                    seen.insert(cell.memo_key(), key);
                    unique.push(cell);
                }
                Some(kept) => {
                    deduped += 1;
                    if *kept != key {
                        eprintln!(
                            "[dice-runner] warning: tag {:?} on workload {:?} requested with \
                             two different configurations; keeping the first",
                            cell.tag, cell.workload.name
                        );
                    }
                }
            }
        }

        let total = unique.len();
        let mut outcomes = BTreeMap::new();
        let mut cell_wall_ms = Histogram::new();
        let mut retried = 0usize;
        let discarded_before = self.cache.as_ref().map_or(0, DiskCache::discarded);
        let workers = jobs.min(total.max(1));
        // Work-stealing state: one deque per worker, dealt round-robin so
        // every thread starts with local work; idle workers steal the
        // front half of the longest remaining queue.
        let queues = StealQueues::deal(total, workers);
        let exits: Vec<Mutex<Option<Instant>>> = (0..workers).map(|_| Mutex::new(None)).collect();
        let (tx, rx) = mpsc::channel::<(usize, CellOutcome, u32)>();
        let cells = &unique;

        std::thread::scope(|scope| {
            for (w, exit_slot) in exits.iter().enumerate() {
                let tx = tx.clone();
                let queues = &queues;
                let cancel = self.config.cancel.clone();
                scope.spawn(move || {
                    loop {
                        if cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed)) {
                            break;
                        }
                        let Some(i) = queues.next_task(w) else {
                            break;
                        };
                        let cell = &cells[i];
                        let span = self.config.trace.as_ref().and_then(|ctx| {
                            ctx.span(
                                &format!("cell:{}/{}", cell.tag, cell.workload.name),
                                self.config.trace_parent,
                            )
                        });
                        let parent = span.as_ref().map(SpanGuard::id);
                        let (outcome, retries) = self.run_cell(cell, parent);
                        // Close the cell span before reporting completion
                        // so a progress consumer never observes a finished
                        // cell with an open span.
                        drop(span);
                        if tx.send((i, outcome, retries)).is_err() {
                            break;
                        }
                    }
                    *lock(exit_slot) = Some(Instant::now());
                });
            }
            drop(tx);

            // The spawning thread doubles as the collector so progress
            // streams while workers are busy.
            let mut done = 0usize;
            while let Ok((i, outcome, retries)) = rx.recv() {
                done += 1;
                retried += retries as usize;
                let cell = &cells[i];
                if self.config.verbose {
                    let status = match &outcome {
                        CellOutcome::Completed {
                            from_cache: true, ..
                        } => "cache".to_owned(),
                        CellOutcome::Completed { wall, .. } => {
                            format!("sim {:.1}s", wall.as_secs_f64())
                        }
                        CellOutcome::Failed { .. } => "FAILED".to_owned(),
                        CellOutcome::TimedOut { budget } => {
                            format!("TIMED OUT after {:.1}s", budget.as_secs_f64())
                        }
                    };
                    eprintln!(
                        "  [runner {done}/{total}] {:<12} {:<10} ({status})",
                        cell.tag, cell.workload.name
                    );
                }
                if let CellOutcome::Completed { wall, .. } = &outcome {
                    cell_wall_ms.record(wall.as_millis() as u64);
                }
                if let Some(sink) = &self.config.progress {
                    let (status, wall_ms) = match &outcome {
                        CellOutcome::Completed {
                            from_cache: true,
                            wall,
                            ..
                        } => ("cached", wall.as_millis() as u64),
                        CellOutcome::Completed { wall, .. } => {
                            ("simulated", wall.as_millis() as u64)
                        }
                        CellOutcome::Failed { .. } => ("failed", 0),
                        CellOutcome::TimedOut { budget } => {
                            ("timed_out", budget.as_millis() as u64)
                        }
                    };
                    sink.emit(CellProgress {
                        seq: done,
                        total,
                        tag: cell.tag.clone(),
                        workload: cell.workload.name.clone(),
                        status,
                        wall_ms,
                    });
                }
                outcomes.insert(cell.memo_key(), outcome);
            }
        });

        // Tail idle: every worker has recorded when it ran out of
        // stealable work; measure each gap back from the last exit.
        let end = Instant::now();
        let tail_idle_ms = exits
            .iter()
            .filter_map(|slot| *lock(slot))
            .map(|t| end.duration_since(t).as_millis() as u64)
            .sum();

        let cancelled = total - outcomes.len();
        SweepResult {
            outcomes,
            deduped,
            jobs,
            wall: started.elapsed(),
            cell_wall_ms,
            retried,
            cache_discarded: self.cache.as_ref().map_or(0, DiskCache::discarded) - discarded_before,
            cancelled,
            steals: queues.steals.load(Ordering::Relaxed),
            tail_idle_ms,
        }
    }

    /// Runs one cell: persistent-cache probe, then a watchdog-supervised,
    /// unwind-isolated simulation (with bounded retries on panic), then a
    /// cache write-back. Returns the outcome and how many retries it took.
    /// `span` is the cell's span id; the simulation's phase spans nest
    /// under it.
    fn run_cell(&self, cell: &Cell, span: Option<SpanId>) -> (CellOutcome, u32) {
        let t0 = Instant::now();
        let key = cell_key(&cell.cfg, &cell.workload);
        if let Some(cached) = self.cache.as_ref().and_then(|c| c.load(key)) {
            return (
                CellOutcome::Completed {
                    report: Arc::new(cached),
                    from_cache: true,
                    wall: t0.elapsed(),
                },
                0,
            );
        }
        let attempts = self.config.retries.saturating_add(1);
        let mut last_error = String::new();
        for attempt in 0..attempts {
            match self.simulate_once(cell, span) {
                Ok(report) => {
                    if let Some(cache) = &self.cache {
                        if let Err(e) = cache.store(key, &cell.tag, &report) {
                            eprintln!(
                                "[dice-runner] failed to persist cell {}/{}: {e}",
                                cell.tag, cell.workload.name
                            );
                        }
                    }
                    return (
                        CellOutcome::Completed {
                            report: Arc::new(report),
                            from_cache: false,
                            wall: t0.elapsed(),
                        },
                        attempt,
                    );
                }
                Err(CellFailure::TimedOut(budget)) => {
                    // Deterministic simulations that blew the budget once
                    // will blow it again; retrying only multiplies the
                    // wasted wall time.
                    return (CellOutcome::TimedOut { budget }, attempt);
                }
                Err(CellFailure::Panicked(msg)) => {
                    if attempt + 1 < attempts {
                        eprintln!(
                            "[dice-runner] cell {}/{} panicked ({msg}); retry {}/{}",
                            cell.tag,
                            cell.workload.name,
                            attempt + 1,
                            attempts - 1
                        );
                    }
                    last_error = msg;
                }
            }
        }
        (CellOutcome::Failed { error: last_error }, attempts - 1)
    }

    /// One simulation attempt. With no budget the attempt runs inline on
    /// the worker thread; with a budget it runs on a dedicated thread the
    /// watchdog can abandon.
    fn simulate_once(&self, cell: &Cell, span: Option<SpanId>) -> Result<RunReport, CellFailure> {
        SIMULATIONS.fetch_add(1, Ordering::Relaxed);
        let cfg = cell.cfg.clone();
        let workload = cell.workload.clone();
        let trace = self.config.trace.clone().filter(TraceCtx::is_enabled);
        let sim = move || {
            let mut sys = System::new(cfg, &workload);
            if let Some(ctx) = trace {
                sys.set_trace(ctx, span);
            }
            sys.run()
        };
        let Some(budget) = self.config.cell_timeout else {
            return catch_unwind(AssertUnwindSafe(sim))
                .map_err(|p| CellFailure::Panicked(panic_message(p.as_ref())));
        };
        let (tx, rx) = mpsc::channel();
        // Owned (non-scoped) thread: if the simulation hangs, the watchdog
        // abandons it rather than joining, so the sweep keeps moving. The
        // send can fail only after abandonment, which is fine to ignore.
        std::thread::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(sim)).map_err(|p| panic_message(p.as_ref()));
            let _ = tx.send(result);
        });
        match rx.recv_timeout(budget) {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(msg)) => Err(CellFailure::Panicked(msg)),
            Err(_) => Err(CellFailure::TimedOut(budget)),
        }
    }
}

/// The work-stealing scheduler state: one deque of cell indices per
/// worker plus the steal counter.
///
/// Locking discipline: a worker holds at most one deque lock at a time —
/// a steal drains the victim under its lock, releases it, then pushes
/// the surplus under the thief's own lock — so two workers stealing from
/// each other can never deadlock. In the instant between those two locks
/// the stolen batch is invisible to other scanners; a worker that exits
/// because every queue *looked* empty only costs tail idle time (the
/// thief still runs the batch), never a dropped cell.
struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

impl StealQueues {
    /// Deals cell indices `0..total` round-robin into `workers` deques.
    fn deal(total: usize, workers: usize) -> Self {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for i in 0..total {
            deques[i % workers].push_back(i);
        }
        Self {
            deques: deques.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// The next cell index for worker `me`: its own queue's back (LIFO),
    /// else the front half of the longest other queue (FIFO steal).
    /// `None` means every queue is empty — no more work will appear, so
    /// the worker can exit.
    fn next_task(&self, me: usize) -> Option<usize> {
        if let Some(i) = lock(&self.deques[me]).pop_back() {
            return Some(i);
        }
        loop {
            // Snapshot lengths to pick the longest victim; lengths can
            // move under us, so an empty grab just rescans.
            let victim = self
                .deques
                .iter()
                .enumerate()
                .filter(|(v, _)| *v != me)
                .map(|(v, dq)| (lock(dq).len(), v))
                .max()?;
            let (len, victim) = victim;
            if len == 0 {
                return None;
            }
            let mut batch = Vec::new();
            {
                let mut dq = lock(&self.deques[victim]);
                let take = dq.len().div_ceil(2);
                batch.extend(dq.drain(..take));
            }
            if batch.is_empty() {
                continue;
            }
            self.steals.fetch_add(1, Ordering::Relaxed);
            let first = batch.remove(0);
            if !batch.is_empty() {
                lock(&self.deques[me]).extend(batch);
            }
            return Some(first);
        }
    }
}

/// Locks a mutex, ignoring poisoning: a worker that panicked mid-lock
/// (impossible here — guards are held only across queue ops) would still
/// leave the queue contents valid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why one simulation attempt did not produce a report.
enum CellFailure {
    Panicked(String),
    TimedOut(Duration),
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
