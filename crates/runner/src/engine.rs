//! The parallel experiment engine.
//!
//! Declare-then-execute: callers enumerate every `(config, workload)`
//! [`Cell`] of a sweep up front, and [`Runner::run`] schedules them across
//! a pool of worker threads. Three properties the harness depends on:
//!
//! * **Determinism** — a cell's result depends only on its config and
//!   workload (the simulator is seeded), and results are keyed and
//!   returned in a sorted map, so `--jobs 1` and `--jobs N` produce
//!   byte-identical artifacts.
//! * **Fault isolation** — each cell runs under `catch_unwind`; a
//!   diverging configuration turns into a [`CellOutcome::Failed`] entry
//!   with the panic message, and every other cell still completes.
//! * **Memoization** — duplicate cells (every figure re-requests the
//!   uncompressed baseline) are collapsed before scheduling, and with a
//!   [`DiskCache`] attached, completed cells persist across invocations
//!   and resume interrupted sweeps for free.

use std::collections::BTreeMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use dice_obs::{Histogram, MetricRegistry};
use dice_sim::{RunReport, SimConfig, System, WorkloadSet};

use crate::cache::DiskCache;
use crate::key::cell_key;

/// One schedulable unit: a tagged configuration applied to one workload
/// set.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Configuration tag; with the workload name it is the memo key, so it
    /// must uniquely identify `cfg` within a sweep.
    pub tag: String,
    /// Full simulator configuration.
    pub cfg: SimConfig,
    /// What the cores run.
    pub workload: WorkloadSet,
}

impl Cell {
    /// A cell for `cfg` on `workload` under `tag`.
    #[must_use]
    pub fn new(tag: impl Into<String>, cfg: SimConfig, workload: WorkloadSet) -> Self {
        Self {
            tag: tag.into(),
            cfg,
            workload,
        }
    }

    /// The `(tag, workload name)` memo identity.
    #[must_use]
    pub fn memo_key(&self) -> (String, String) {
        (self.tag.clone(), self.workload.name.clone())
    }
}

/// How one cell ended.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell completed (freshly simulated or recalled from the
    /// persistent cache).
    Completed {
        /// The run's measurements.
        report: Arc<RunReport>,
        /// Whether the result came from the persistent cache.
        from_cache: bool,
        /// Wall time spent on this cell (simulation or cache load).
        wall: Duration,
    },
    /// The cell panicked; the sweep continued without it.
    Failed {
        /// The panic message.
        error: String,
    },
}

/// Scheduling knobs for one [`Runner`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads (≥ 1). Defaults to the host's available parallelism.
    pub jobs: usize,
    /// Persistent result cache directory (`None` = in-memory dedupe only).
    pub cache_dir: Option<PathBuf>,
    /// Print per-cell progress lines to stderr as cells finish.
    pub verbose: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            jobs: std::thread::available_parallelism().map_or(1, usize::from),
            cache_dir: None,
            verbose: false,
        }
    }
}

/// Everything a sweep produced: per-cell outcomes (sorted by memo key for
/// deterministic iteration) plus scheduling statistics.
#[derive(Debug)]
pub struct SweepResult {
    /// Outcome per unique `(tag, workload)` cell.
    pub outcomes: BTreeMap<(String, String), CellOutcome>,
    /// Duplicate cells collapsed before scheduling.
    pub deduped: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall time for the whole sweep.
    pub wall: Duration,
    /// Per-cell wall-time distribution in milliseconds (completed cells).
    pub cell_wall_ms: Histogram,
}

impl SweepResult {
    fn count(&self, f: impl Fn(&CellOutcome) -> bool) -> usize {
        self.outcomes.values().filter(|o| f(o)).count()
    }

    /// Cells that were freshly simulated.
    #[must_use]
    pub fn simulated(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Completed { from_cache, .. } if !from_cache))
    }

    /// Cells recalled from the persistent cache.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Completed { from_cache, .. } if *from_cache))
    }

    /// Cells that panicked.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Failed { .. }))
    }

    /// Registers the sweep's counters and the per-cell wall-time histogram
    /// under `runner.*` in `reg`.
    pub fn register(&self, reg: &mut MetricRegistry) {
        for (name, v) in [
            ("runner.cells", self.outcomes.len()),
            ("runner.simulated", self.simulated()),
            ("runner.cached", self.cached()),
            ("runner.failed", self.failed()),
            ("runner.deduped", self.deduped),
            ("runner.jobs", self.jobs),
        ] {
            let id = reg.counter(name);
            reg.set(id, v as u64);
        }
        let id = reg.counter("runner.wall_ms");
        reg.set(id, self.wall.as_millis() as u64);
        let h = reg.histogram("runner.cell_wall_ms");
        reg.merge_histogram(h, &self.cell_wall_ms);
    }

    /// A one-line human summary (`N cells: a simulated, b cached, …`).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} cells ({} deduped): {} simulated, {} cached, {} failed in {:.1}s on {} job{}",
            self.outcomes.len(),
            self.deduped,
            self.simulated(),
            self.cached(),
            self.failed(),
            self.wall.as_secs_f64(),
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
        )
    }
}

/// The parallel experiment engine. See the module docs for the contract.
#[derive(Debug)]
pub struct Runner {
    config: RunnerConfig,
    cache: Option<DiskCache>,
}

impl Runner {
    /// Builds a runner, opening (and creating if needed) the persistent
    /// cache directory when one is configured.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directory cannot be created.
    pub fn new(config: RunnerConfig) -> io::Result<Self> {
        let cache = match &config.cache_dir {
            Some(dir) => Some(DiskCache::open(dir)?),
            None => None,
        };
        Ok(Self { config, cache })
    }

    /// The effective configuration.
    #[must_use]
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Executes `cells` across the worker pool and returns every unique
    /// cell's outcome. Duplicate `(tag, workload)` cells are collapsed
    /// (first occurrence wins); a duplicate whose configuration hashes
    /// differently from the kept one is a harness bug and gets a stderr
    /// warning.
    #[must_use]
    pub fn run(&self, cells: Vec<Cell>) -> SweepResult {
        let started = Instant::now();
        let jobs = self.config.jobs.max(1);

        // Dedupe, preserving first-seen order for stable scheduling.
        let mut seen: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut unique: Vec<Cell> = Vec::with_capacity(cells.len());
        let mut deduped = 0usize;
        for cell in cells {
            let key = cell_key(&cell.cfg, &cell.workload);
            match seen.get(&cell.memo_key()) {
                None => {
                    seen.insert(cell.memo_key(), key);
                    unique.push(cell);
                }
                Some(kept) => {
                    deduped += 1;
                    if *kept != key {
                        eprintln!(
                            "[dice-runner] warning: tag {:?} on workload {:?} requested with \
                             two different configurations; keeping the first",
                            cell.tag, cell.workload.name
                        );
                    }
                }
            }
        }

        let total = unique.len();
        let mut outcomes = BTreeMap::new();
        let mut cell_wall_ms = Histogram::new();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, CellOutcome)>();
        let cells = &unique;

        std::thread::scope(|scope| {
            for _ in 0..jobs.min(total.max(1)) {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let outcome = self.run_cell(&cells[i]);
                    if tx.send((i, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // The spawning thread doubles as the collector so progress
            // streams while workers are busy.
            let mut done = 0usize;
            while let Ok((i, outcome)) = rx.recv() {
                done += 1;
                let cell = &cells[i];
                if self.config.verbose {
                    let status = match &outcome {
                        CellOutcome::Completed {
                            from_cache: true, ..
                        } => "cache".to_owned(),
                        CellOutcome::Completed { wall, .. } => {
                            format!("sim {:.1}s", wall.as_secs_f64())
                        }
                        CellOutcome::Failed { .. } => "FAILED".to_owned(),
                    };
                    eprintln!(
                        "  [runner {done}/{total}] {:<12} {:<10} ({status})",
                        cell.tag, cell.workload.name
                    );
                }
                if let CellOutcome::Completed { wall, .. } = &outcome {
                    cell_wall_ms.record(wall.as_millis() as u64);
                }
                outcomes.insert(cell.memo_key(), outcome);
            }
        });

        SweepResult {
            outcomes,
            deduped,
            jobs,
            wall: started.elapsed(),
            cell_wall_ms,
        }
    }

    /// Runs one cell: persistent-cache probe, then an unwind-isolated
    /// simulation, then a cache write-back.
    fn run_cell(&self, cell: &Cell) -> CellOutcome {
        let t0 = Instant::now();
        let key = cell_key(&cell.cfg, &cell.workload);
        if let Some(cached) = self.cache.as_ref().and_then(|c| c.load(key)) {
            return CellOutcome::Completed {
                report: Arc::new(cached),
                from_cache: true,
                wall: t0.elapsed(),
            };
        }
        let cfg = cell.cfg.clone();
        let workload = cell.workload.clone();
        match catch_unwind(AssertUnwindSafe(move || System::new(cfg, &workload).run())) {
            Ok(report) => {
                if let Some(cache) = &self.cache {
                    if let Err(e) = cache.store(key, &cell.tag, &report) {
                        eprintln!(
                            "[dice-runner] failed to persist cell {}/{}: {e}",
                            cell.tag, cell.workload.name
                        );
                    }
                }
                CellOutcome::Completed {
                    report: Arc::new(report),
                    from_cache: false,
                    wall: t0.elapsed(),
                }
            }
            Err(payload) => CellOutcome::Failed {
                error: panic_message(payload.as_ref()),
            },
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
