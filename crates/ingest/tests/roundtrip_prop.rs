//! DTF1 container properties: encode→decode identity (values, compression
//! and multi-stream layouts included), checksum-corruption rejection at
//! every frame-region offset, and truncation-at-every-offset behavior —
//! recovery always yields a clean per-stream prefix, strict mode rejects
//! torn tails. Mirrors the DiskCache corruption suite one layer down.

use dice_ingest::{
    frame, read_core_records, scan, DtfCoreStream, DtfRecord, DtfTraceSource, DtfWriter,
    TraceBinding,
};
use dice_workloads::{RecordSource, TraceRecord, TraceSource};
use proptest::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dice-ingest-prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn arb_record() -> impl Strategy<Value = DtfRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(|(gap, line, write, has_value, fill)| DtfRecord {
            rec: TraceRecord {
                gap: gap % 1_000_000,
                line,
                write,
            },
            value: has_value.then_some([fill; 64]),
        })
}

/// Per-stream record lists for a small multi-core file. The first stream
/// is never empty (so every generated file holds records); later streams
/// may be, exercising the empty-stream paths.
fn arb_streams() -> impl Strategy<Value = Vec<Vec<DtfRecord>>> {
    (
        proptest::collection::vec(arb_record(), 1..40),
        proptest::collection::vec(proptest::collection::vec(arb_record(), 0..40), 0..3),
    )
        .prop_map(|(first, rest)| std::iter::once(first).chain(rest).collect())
}

/// Like [`arb_streams`] but every stream is non-empty (required by the
/// per-core streamed readers).
fn arb_full_streams() -> impl Strategy<Value = Vec<Vec<DtfRecord>>> {
    proptest::collection::vec(proptest::collection::vec(arb_record(), 1..40), 1..4)
}

fn write_streams(
    path: &std::path::Path,
    streams: &[Vec<DtfRecord>],
    frame_records: usize,
    compress: bool,
) {
    let mut w = DtfWriter::create(path, streams.len() as u32, compress)
        .unwrap()
        .with_frame_records(frame_records);
    // Interleave pushes round-robin so frames of different streams mix in
    // file order, exercising the reader's skip path.
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for (core, recs) in streams.iter().enumerate() {
            if let Some(r) = recs.get(i) {
                w.push(core as u32, *r).unwrap();
            }
        }
    }
    w.finish().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode is the identity, for raw and compressed frames,
    /// any frame size, values included.
    #[test]
    fn round_trips_exactly(
        streams in arb_streams(),
        frame_records in 1usize..9,
        compress in any::<bool>(),
    ) {
        let path = tmp("rt.dtf");
        write_streams(&path, &streams, frame_records, compress);
        for (core, expect) in streams.iter().enumerate() {
            let got = read_core_records(&path, core as u32).unwrap();
            prop_assert_eq!(&got, expect, "stream {}", core);
        }
        let info = scan(&path, true).unwrap();
        prop_assert_eq!(info.cores as usize, streams.len());
        prop_assert_eq!(info.records, streams.iter().map(|s| s.len() as u64).sum::<u64>());
        prop_assert_eq!(info.dropped_bytes, 0);
    }

    /// Any single corrupted byte in the frame region fails the strict
    /// scan with a typed error — the per-frame checksum covers the stream
    /// id and body, and the marker/length fields misframe loudly.
    #[test]
    fn corruption_at_every_frame_offset_is_rejected(
        streams in arb_streams(),
        compress in any::<bool>(),
        flip in any::<u8>(),
    ) {
        let flip = if flip == 0 { 0xA5 } else { flip };
        let path = tmp("corrupt.dtf");
        write_streams(&path, &streams, 7, compress);
        let clean = std::fs::read(&path).unwrap();
        let header_len = frame::header_len(streams.len() as u32) as usize;
        for off in header_len..clean.len() {
            let mut bad = clean.clone();
            bad[off] ^= flip;
            std::fs::write(&path, &bad).unwrap();
            prop_assert!(
                scan(&path, true).is_err(),
                "flip {:#04x} at offset {} accepted", flip, off
            );
        }
    }

    /// Truncation at every offset: recovery mode always yields a clean
    /// per-stream prefix of the original records (torn tail dropped,
    /// never garbage); strict mode additionally rejects any cut that is
    /// not a frame boundary.
    #[test]
    fn truncation_at_every_offset_recovers_a_prefix(streams in arb_streams()) {
        let path = tmp("trunc.dtf");
        write_streams(&path, &streams, 5, true);
        let clean = std::fs::read(&path).unwrap();
        let header_len = frame::header_len(streams.len() as u32) as usize;
        for cut in header_len..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            let info = scan(&path, false).unwrap();
            let boundary = info.dropped_bytes == 0;
            prop_assert_eq!(
                scan(&path, true).is_ok(),
                boundary,
                "strict scan at cut {} disagrees with boundary-ness", cut
            );
            for (core, full) in streams.iter().enumerate() {
                let got = read_core_records(&path, core as u32).unwrap();
                prop_assert!(
                    got.len() <= full.len() && got[..] == full[..got.len()],
                    "cut {}: stream {} is not a prefix", cut, core
                );
            }
        }
    }

    /// The bounded-memory streamed reader yields exactly the in-memory
    /// records, looping at end of trace.
    #[test]
    fn streamed_reader_matches_in_memory(
        streams in arb_full_streams(),
        frame_records in 1usize..9,
        compress in any::<bool>(),
    ) {
        let path = tmp("stream.dtf");
        write_streams(&path, &streams, frame_records, compress);
        let binding = TraceBinding::open(&path).unwrap();
        let src = DtfTraceSource::new(binding);
        for (core, expect) in streams.iter().enumerate() {
            let mut stream = src.open_core(core as u32).unwrap();
            let mut replay = src
                .open_core(core as u32 + streams.len() as u32) // modulo mapping
                .unwrap();
            for k in 0..expect.len() * 2 + 3 {
                let want = expect[k % expect.len()].rec;
                prop_assert_eq!(stream.next_record(), want, "stream {} record {}", core, k);
                prop_assert_eq!(replay.next_record(), want, "mapped stream {} record {}", core, k);
            }
        }
    }
}

#[test]
fn torn_tail_is_truncated_and_reported() {
    let path = tmp("torn.dtf");
    let records: Vec<DtfRecord> = (0..50)
        .map(|i| {
            DtfRecord::plain(TraceRecord {
                gap: i,
                line: 0x100 + i * 3,
                write: i % 2 == 0,
            })
        })
        .collect();
    write_streams(&path, std::slice::from_ref(&records), 10, false);
    let full = std::fs::read(&path).unwrap();
    // Interrupted writer: a frame marker plus half a header.
    let mut torn = full;
    torn.extend_from_slice(&[dice_ingest::FRAME_MARKER, 0x00, 0x91]);
    std::fs::write(&path, &torn).unwrap();

    let info = scan(&path, false).unwrap();
    assert_eq!(info.records, 50);
    assert_eq!(info.dropped_bytes, 3);
    assert!(scan(&path, true).is_err());

    let binding = TraceBinding::open(&path).unwrap();
    assert_eq!(binding.records(), 50);
    assert_eq!(binding.dropped_bytes(), 3);
    // The streamed reader ignores the torn tail too.
    let src = DtfTraceSource::new(binding);
    let mut s = src.open_core(0).unwrap();
    for r in &records {
        assert_eq!(s.next_record(), r.rec);
    }
    assert_eq!(s.next_record(), records[0].rec, "loops past the torn tail");
}

#[test]
fn content_hash_tracks_file_bytes() {
    let path = tmp("hash.dtf");
    let mk = |gap: u64| {
        vec![
            DtfRecord::plain(TraceRecord {
                gap,
                line: 42,
                write: false,
            });
            20
        ]
    };
    write_streams(&path, &[mk(1)], 8, true);
    let a = TraceBinding::open(&path).unwrap();
    write_streams(&path, &[mk(1)], 8, true);
    let a2 = TraceBinding::open(&path).unwrap();
    assert_eq!(
        a.content_hash(),
        a2.content_hash(),
        "hash is content-determined"
    );
    write_streams(&path, &[mk(2)], 8, true);
    let b = TraceBinding::open(&path).unwrap();
    assert_ne!(
        a.content_hash(),
        b.content_hash(),
        "changed bytes change the hash"
    );
}

#[test]
fn resident_memory_is_bounded_by_frame_size_not_file_size() {
    let path = tmp("big.dtf");
    let mut w = DtfWriter::create(&path, 1, true).unwrap();
    let mut line = 0x8000u64;
    for i in 0..200_000u64 {
        line = line.wrapping_add((i * 2654435761) % 97);
        w.push_record(
            0,
            TraceRecord {
                gap: i % 11,
                line,
                write: i % 5 == 0,
            },
        )
        .unwrap();
    }
    let stats = w.finish().unwrap();
    assert_eq!(stats.records, 200_000);
    assert!(
        stats.frames >= 48,
        "expected many frames, got {}",
        stats.frames
    );

    let mut s = DtfCoreStream::open(&path, 0, 1).unwrap();
    let mut high_water = 0usize;
    for _ in 0..250_000 {
        let _ = s.next_record();
        high_water = high_water.max(s.resident_bytes());
    }
    // One frame in flight: well under a megabyte even though the file
    // holds 200k records and the stream looped past EOF.
    assert!(
        high_water < (1 << 20),
        "resident high-water {high_water} bytes"
    );
}

#[test]
fn empty_or_headerless_files_are_typed_errors() {
    let path = tmp("empty.dtf");
    let w = DtfWriter::create(&path, 2, false).unwrap();
    let stats = w.finish().unwrap();
    assert_eq!(stats.records, 0);
    let err = TraceBinding::open(&path).unwrap_err();
    assert_eq!(err.class(), dice_obs::ErrorClass::Config);

    std::fs::write(&path, b"NOPE").unwrap();
    assert!(TraceBinding::open(&path).is_err());
    std::fs::write(&path, b"DT").unwrap();
    assert!(TraceBinding::open(&path).is_err());
}

#[test]
fn empty_stream_in_multicore_file_is_rejected_at_open() {
    let path = tmp("gap-core.dtf");
    let recs: Vec<DtfRecord> = (0..4)
        .map(|i| {
            DtfRecord::plain(TraceRecord {
                gap: i,
                line: i,
                write: false,
            })
        })
        .collect();
    // Stream 1 of 2 stays empty.
    write_streams(&path, &[recs, Vec::new()], 4, false);
    let src = DtfTraceSource::open(&path).unwrap();
    assert!(src.open_core(0).is_ok());
    let err = src.open_core(1).err().unwrap();
    assert_eq!(err.class(), dice_obs::ErrorClass::Config);
}
