//! LEB128 varints and zigzag signed mapping — the primitive integer
//! encoding under every DTF1 frame.

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Reads an LEB128 varint at `*pos`, advancing it. Returns `None` on
/// truncation or a value that would overflow 64 bits.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && (b & 0x7f) > 1 {
            return None; // bits past the 64th
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps a signed delta to an unsigned varint-friendly value (0, -1, 1, -2
/// → 0, 1, 2, 3).
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edges() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(get_varint(&buf[..cut], &mut pos), None, "cut at {cut}");
        }
        // 10 continuation bytes followed by a value bit past the 64th.
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert_eq!(get_varint(&over, &mut pos), None);
        // 11 bytes is always invalid.
        let long = [0x80u8; 10]
            .iter()
            .chain([0x01u8].iter())
            .copied()
            .collect::<Vec<_>>();
        let mut pos = 0;
        assert_eq!(get_varint(&long, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
