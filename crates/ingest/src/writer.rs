//! Writing `.dtf` files: the frame-buffering writer and the packers the
//! `dice-ingest` CLI is built on.

use std::io::{BufWriter, Write};
use std::path::Path;

use dice_obs::{DiceError, DiceResult};
use dice_workloads::{RecordSource, TraceRecord};

use crate::frame::{encode_frame, write_header, DtfRecord, MAX_CORES};

/// Records per frame before the writer flushes. 4096 value-less records
/// encode to ≤ ~50 KB raw — far under the reader's per-frame caps — while
/// amortizing the 10–12-byte frame header to noise.
pub const FRAME_RECORDS: usize = 4096;

/// What [`DtfWriter::finish`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteStats {
    /// Records written across all streams.
    pub records: u64,
    /// Frames emitted.
    pub frames: u64,
    /// Bytes written (header + frames).
    pub bytes: u64,
}

/// Streams records into a `.dtf` file, buffering [`FRAME_RECORDS`] per
/// core before encoding a frame, so packing is itself bounded-memory.
#[derive(Debug)]
pub struct DtfWriter {
    w: BufWriter<std::fs::File>,
    compress: bool,
    pending: Vec<Vec<DtfRecord>>,
    frame_records: usize,
    records: u64,
    frames: u64,
    bytes: u64,
}

impl DtfWriter {
    /// Creates `path` and writes the header for `cores` streams.
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::Config`] for a zero/oversized core count and
    /// [`DiceError::Io`] on file-system failure.
    pub fn create(path: impl AsRef<Path>, cores: u32, compress: bool) -> DiceResult<Self> {
        if cores == 0 || cores > MAX_CORES {
            return Err(DiceError::Config {
                field: "dtf cores".to_owned(),
                reason: format!("must be 1..={MAX_CORES}, got {cores}"),
            });
        }
        let path = path.as_ref();
        let shown = path.display().to_string();
        let file = std::fs::File::create(path)
            .map_err(|e| DiceError::io(format!("create dtf {shown}"), &e))?;
        let mut w = BufWriter::new(file);
        write_header(&mut w, cores)?;
        let mut count_probe = Vec::with_capacity(2);
        crate::varint::put_varint(&mut count_probe, u64::from(cores));
        Ok(Self {
            w,
            compress,
            pending: vec![Vec::new(); cores as usize],
            frame_records: FRAME_RECORDS,
            records: 0,
            frames: 0,
            bytes: 4 + count_probe.len() as u64,
        })
    }

    /// Overrides the per-frame record count (tests use tiny frames to
    /// force multi-frame files cheaply).
    #[must_use]
    pub fn with_frame_records(mut self, n: usize) -> Self {
        self.frame_records = n.max(1);
        self
    }

    /// Appends one record to stream `core`, flushing a frame when the
    /// stream's buffer is full.
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::Config`] for an out-of-range core and
    /// [`DiceError::Io`] on write failure.
    pub fn push(&mut self, core: u32, rec: DtfRecord) -> DiceResult<()> {
        let Some(pending) = self.pending.get_mut(core as usize) else {
            return Err(DiceError::Config {
                field: "dtf core".to_owned(),
                reason: format!("stream {core} out of range ({})", self.pending.len()),
            });
        };
        pending.push(rec);
        if pending.len() >= self.frame_records {
            self.flush_core(core)?;
        }
        Ok(())
    }

    /// Value-less convenience for [`push`](Self::push).
    ///
    /// # Errors
    ///
    /// As [`push`](Self::push).
    pub fn push_record(&mut self, core: u32, rec: TraceRecord) -> DiceResult<()> {
        self.push(core, DtfRecord::plain(rec))
    }

    fn flush_core(&mut self, core: u32) -> DiceResult<()> {
        let pending = &mut self.pending[core as usize];
        if pending.is_empty() {
            return Ok(());
        }
        let frame = encode_frame(core, pending, self.compress);
        self.records += pending.len() as u64;
        pending.clear();
        self.frames += 1;
        self.bytes += frame.len() as u64;
        self.w
            .write_all(&frame)
            .map_err(|e| DiceError::io("write dtf frame", &e))
    }

    /// Flushes every stream's tail frame and the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::Io`] on write failure.
    pub fn finish(mut self) -> DiceResult<WriteStats> {
        for core in 0..self.pending.len() as u32 {
            self.flush_core(core)?;
        }
        self.w.flush().map_err(|e| DiceError::io("flush dtf", &e))?;
        Ok(WriteStats {
            records: self.records,
            frames: self.frames,
            bytes: self.bytes,
        })
    }
}

/// Packs a single-stream record list into `path` (stream 0).
///
/// # Errors
///
/// Propagates [`DtfWriter`] errors.
pub fn pack_records(
    path: impl AsRef<Path>,
    records: &[TraceRecord],
    compress: bool,
) -> DiceResult<WriteStats> {
    let mut w = DtfWriter::create(path, 1, compress)?;
    for r in records {
        w.push_record(0, *r)?;
    }
    w.finish()
}

/// Packs `per_core` records from any [`RecordSource`]s (one per stream)
/// — the generator path behind `dice-ingest gen`.
///
/// # Errors
///
/// Propagates [`DtfWriter`] errors.
pub fn pack_sources(
    path: impl AsRef<Path>,
    sources: &mut [Box<dyn RecordSource>],
    per_core: u64,
    compress: bool,
) -> DiceResult<WriteStats> {
    let cores = u32::try_from(sources.len()).map_err(|_| DiceError::Config {
        field: "dtf cores".to_owned(),
        reason: format!("{} sources", sources.len()),
    })?;
    let mut w = DtfWriter::create(path, cores, compress)?;
    for (core, src) in sources.iter_mut().enumerate() {
        for _ in 0..per_core {
            w.push_record(core as u32, src.next_record())?;
        }
    }
    w.finish()
}
