//! The DTF1 on-disk container: file header, frame codec and the recovery
//! scanner.
//!
//! # Layout
//!
//! ```text
//! file  := "DTF1" varint(cores) frame*
//! frame := 0xDF varint(core) varint(body_len) u64le(fnv1a64(core_varint ++ body)) body
//! body  := flags:u8 varint(count) [varint(raw_len) if compressed] payload
//! ```
//!
//! `payload` is `count` delta-encoded records (optionally `dlz`-compressed,
//! see [`crate::lz`]); each record is
//!
//! ```text
//! record := flags:u8 varint(gap) zigzag_varint(line - prev_line) [value: 64 bytes]
//! ```
//!
//! with `prev_line` resetting to 0 at every frame boundary, so each frame
//! decodes independently — the property both the bounded-memory reader and
//! torn-tail recovery rely on. The checksum covers the core id and the
//! whole body, so a flipped bit anywhere except the un-checksummed marker
//! and length (whose corruption misframes the stream and trips the marker
//! or checksum instead) is detected. Recovery semantics mirror the fabric
//! journal (`DJR1`): an incomplete frame at end-of-file is a torn tail —
//! dropped and reported, not an error — while a checksum mismatch on a
//! complete frame is always a typed [`DiceError::TraceParse`].

use std::io::{BufRead, Read, Seek, Write};
use std::path::Path;

use dice_obs::{DiceError, DiceResult};
use dice_workloads::TraceRecord;

use crate::lz;
use crate::varint::{get_varint, put_varint, unzigzag, zigzag};

/// File magic (also the version: a breaking layout change bumps to DTF2).
pub const MAGIC: [u8; 4] = *b"DTF1";
/// First byte of every frame.
pub const FRAME_MARKER: u8 = 0xDF;
/// Hard cap on one frame's stored body, enforced on read before any
/// allocation: together with the one-frame-in-flight reader this bounds
/// resident memory regardless of file size.
pub const MAX_BODY_BYTES: usize = 4 << 20;
/// Hard cap on one frame's decompressed payload.
pub const MAX_RAW_BYTES: usize = 16 << 20;
/// Most streams a file may carry (sanity bound on the header).
pub const MAX_CORES: u32 = 1024;

/// Frame flag: payload is `dlz`-compressed.
pub const FLAG_COMPRESSED: u8 = 0x01;

/// Record flag: the access is a write.
const REC_WRITE: u8 = 0x01;
/// Record flag: a 64-byte value payload follows.
const REC_VALUE: u8 = 0x02;

/// One ingested record: the sim-visible access plus an optional 64-byte
/// value payload. The simulator synthesizes values from its `ValueProfile`
/// model, so payloads are carried for future value-exact replay and for
/// format round-trip fidelity; the streaming reader skips them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtfRecord {
    /// The access (instruction gap, line address, read/write).
    pub rec: TraceRecord,
    /// Optional cache-line contents at the time of the access.
    pub value: Option<[u8; 64]>,
}

impl DtfRecord {
    /// A value-less record.
    #[must_use]
    pub fn plain(rec: TraceRecord) -> Self {
        Self { rec, value: None }
    }
}

/// FNV-1a over `bytes`, seedable for incremental use.
#[must_use]
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The FNV-1a offset basis (initial seed).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn parse_err(path: &str, frame: u64, reason: impl Into<String>) -> DiceError {
    DiceError::TraceParse {
        path: path.to_owned(),
        line: frame,
        reason: reason.into(),
    }
}

/// Writes the file header. `cores` is the number of independent streams.
///
/// # Errors
///
/// Returns [`DiceError::Config`] for a zero or absurd core count and
/// [`DiceError::Io`] on write failure.
pub fn write_header(w: &mut impl Write, cores: u32) -> DiceResult<()> {
    if cores == 0 || cores > MAX_CORES {
        return Err(DiceError::Config {
            field: "dtf cores".to_owned(),
            reason: format!("must be 1..={MAX_CORES}, got {cores}"),
        });
    }
    let mut head = MAGIC.to_vec();
    put_varint(&mut head, u64::from(cores));
    w.write_all(&head)
        .map_err(|e| DiceError::io("write dtf header", &e))
}

/// Reads and validates the file header, returning the stream count.
///
/// # Errors
///
/// Returns [`DiceError::TraceParse`] on a bad magic or core count and
/// [`DiceError::Io`] on read failure.
pub fn read_header(r: &mut impl Read, path: &str) -> DiceResult<u32> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| DiceError::io(format!("read dtf header {path}"), &e))?;
    if magic != MAGIC {
        return Err(parse_err(path, 0, format!("bad magic {magic:02x?}")));
    }
    // The core count is a varint ≤ MAX_CORES, so at most 2 bytes.
    let mut buf = Vec::with_capacity(2);
    let mut byte = [0u8; 1];
    loop {
        r.read_exact(&mut byte)
            .map_err(|e| DiceError::io(format!("read dtf header {path}"), &e))?;
        buf.push(byte[0]);
        if byte[0] & 0x80 == 0 {
            break;
        }
        if buf.len() > 10 {
            return Err(parse_err(path, 0, "unterminated core-count varint"));
        }
    }
    let mut pos = 0;
    let cores = get_varint(&buf, &mut pos)
        .filter(|c| *c >= 1 && *c <= u64::from(MAX_CORES))
        .ok_or_else(|| parse_err(path, 0, "core count out of range"))?;
    Ok(cores as u32)
}

/// Byte length of the header for a given core count (frames start here).
#[must_use]
pub fn header_len(cores: u32) -> u64 {
    let mut v = Vec::with_capacity(2);
    put_varint(&mut v, u64::from(cores));
    MAGIC.len() as u64 + v.len() as u64
}

/// Encodes `records` into a raw (uncompressed) frame payload.
fn encode_payload(records: &[DtfRecord]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(records.len() * 4);
    let mut prev_line = 0u64;
    for r in records {
        let mut flags = 0u8;
        if r.rec.write {
            flags |= REC_WRITE;
        }
        if r.value.is_some() {
            flags |= REC_VALUE;
        }
        payload.push(flags);
        put_varint(&mut payload, r.rec.gap);
        let delta = r.rec.line.wrapping_sub(prev_line) as i64;
        put_varint(&mut payload, zigzag(delta));
        prev_line = r.rec.line;
        if let Some(v) = &r.value {
            payload.extend_from_slice(v);
        }
    }
    payload
}

/// Decodes a raw payload of `count` records. `keep_values` controls
/// whether value payloads are materialized (the streaming reader drops
/// them; the unpacker keeps them).
fn decode_payload(
    payload: &[u8],
    count: u64,
    keep_values: bool,
    out: &mut Vec<DtfRecord>,
    path: &str,
    frame: u64,
) -> DiceResult<()> {
    out.clear();
    let count = usize::try_from(count)
        .ok()
        .filter(|c| *c <= payload.len())
        .ok_or_else(|| parse_err(path, frame, "record count exceeds payload size"))?;
    out.reserve(count);
    let mut pos = 0usize;
    let mut prev_line = 0u64;
    for i in 0..count {
        let bad = |what: &str| parse_err(path, frame, format!("record {i}: {what}"));
        let flags = *payload.get(pos).ok_or_else(|| bad("truncated flags"))?;
        pos += 1;
        if flags & !(REC_WRITE | REC_VALUE) != 0 {
            return Err(bad(&format!("unknown flag bits {flags:#04x}")));
        }
        let gap = get_varint(payload, &mut pos).ok_or_else(|| bad("bad gap varint"))?;
        let zz = get_varint(payload, &mut pos).ok_or_else(|| bad("bad delta varint"))?;
        let line = prev_line.wrapping_add(unzigzag(zz) as u64);
        prev_line = line;
        let value = if flags & REC_VALUE != 0 {
            let bytes = payload
                .get(pos..pos + 64)
                .ok_or_else(|| bad("truncated value payload"))?;
            pos += 64;
            if keep_values {
                let mut v = [0u8; 64];
                v.copy_from_slice(bytes);
                Some(v)
            } else {
                None
            }
        } else {
            None
        };
        out.push(DtfRecord {
            rec: TraceRecord {
                gap,
                line,
                write: flags & REC_WRITE != 0,
            },
            value,
        });
    }
    if pos != payload.len() {
        return Err(parse_err(
            path,
            frame,
            format!("{} trailing bytes after last record", payload.len() - pos),
        ));
    }
    Ok(())
}

/// Encodes one complete frame (header + checksum + body) for stream
/// `core`. With `compress` set the payload is `dlz`-compressed when that
/// actually shrinks it; incompressible frames stay raw.
///
/// # Panics
///
/// Panics if the encoded payload exceeds [`MAX_RAW_BYTES`] — the writer's
/// per-frame record cap keeps real frames orders of magnitude below it.
#[must_use]
pub fn encode_frame(core: u32, records: &[DtfRecord], compress: bool) -> Vec<u8> {
    let payload = encode_payload(records);
    assert!(
        payload.len() <= MAX_RAW_BYTES,
        "frame payload {} exceeds MAX_RAW_BYTES",
        payload.len()
    );
    let mut body = Vec::with_capacity(payload.len() + 8);
    let compressed = if compress {
        let c = lz::compress(&payload);
        if c.len() < payload.len() {
            Some(c)
        } else {
            None
        }
    } else {
        None
    };
    match &compressed {
        Some(c) => {
            body.push(FLAG_COMPRESSED);
            put_varint(&mut body, records.len() as u64);
            put_varint(&mut body, payload.len() as u64);
            body.extend_from_slice(c);
        }
        None => {
            body.push(0);
            put_varint(&mut body, records.len() as u64);
            body.extend_from_slice(&payload);
        }
    }
    let mut core_bytes = Vec::with_capacity(2);
    put_varint(&mut core_bytes, u64::from(core));
    let checksum = fnv1a64(fnv1a64(FNV_OFFSET, &core_bytes), &body);
    let mut frame = Vec::with_capacity(body.len() + 16);
    frame.push(FRAME_MARKER);
    frame.extend_from_slice(&core_bytes);
    put_varint(&mut frame, body.len() as u64);
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Verifies a frame body's checksum and decodes its records into `out`.
/// `scratch` is the reusable decompression buffer.
///
/// # Errors
///
/// Returns [`DiceError::TraceParse`] on checksum mismatch, unknown flags,
/// malformed compression or record encoding.
#[allow(clippy::too_many_arguments)]
pub fn decode_body(
    core: u32,
    checksum: u64,
    body: &[u8],
    keep_values: bool,
    out: &mut Vec<DtfRecord>,
    scratch: &mut Vec<u8>,
    path: &str,
    frame: u64,
) -> DiceResult<()> {
    let mut core_bytes = Vec::with_capacity(2);
    put_varint(&mut core_bytes, u64::from(core));
    let got = fnv1a64(fnv1a64(FNV_OFFSET, &core_bytes), body);
    if got != checksum {
        return Err(parse_err(
            path,
            frame,
            format!("checksum mismatch (stored {checksum:016x}, computed {got:016x})"),
        ));
    }
    let flags = *body
        .first()
        .ok_or_else(|| parse_err(path, frame, "empty frame body"))?;
    if flags & !FLAG_COMPRESSED != 0 {
        return Err(parse_err(
            path,
            frame,
            format!("unknown frame flags {flags:#04x}"),
        ));
    }
    let mut pos = 1usize;
    let count = get_varint(body, &mut pos)
        .ok_or_else(|| parse_err(path, frame, "bad record-count varint"))?;
    if flags & FLAG_COMPRESSED != 0 {
        let raw_len = get_varint(body, &mut pos)
            .ok_or_else(|| parse_err(path, frame, "bad raw-length varint"))?;
        let raw_len = usize::try_from(raw_len)
            .ok()
            .filter(|l| *l <= MAX_RAW_BYTES)
            .ok_or_else(|| parse_err(path, frame, "raw length exceeds MAX_RAW_BYTES"))?;
        lz::decompress_into(&body[pos..], raw_len, scratch, path, frame)?;
        decode_payload(scratch, count, keep_values, out, path, frame)
    } else {
        decode_payload(&body[pos..], count, keep_values, out, path, frame)
    }
}

/// One step of the frame scanner.
#[derive(Debug)]
pub enum FrameStep {
    /// Clean end of file at a frame boundary.
    Eof,
    /// An incomplete frame at end of file (interrupted writer): `dropped`
    /// bytes from the frame's start to EOF.
    Torn {
        /// Bytes between the torn frame's marker and end of file.
        dropped: u64,
    },
    /// A complete frame header; the body is `body_len` bytes starting at
    /// the reader's current position.
    Frame {
        /// Stream id.
        core: u32,
        /// Stored body length.
        body_len: usize,
        /// Stored checksum (over core varint + body).
        checksum: u64,
    },
}

/// Reads the next frame header at the reader's position. Returns
/// [`FrameStep::Torn`] (not an error) when the file ends mid-frame, in
/// the style of the fabric journal's torn-tail recovery.
///
/// # Errors
///
/// Returns [`DiceError::TraceParse`] on a bad marker or an oversized body
/// length — corruption, as opposed to truncation — and [`DiceError::Io`]
/// on read failure.
pub fn next_frame_header(
    r: &mut (impl BufRead + Seek),
    file_len: u64,
    path: &str,
    frame: u64,
) -> DiceResult<FrameStep> {
    let start = r
        .stream_position()
        .map_err(|e| DiceError::io(format!("seek dtf {path}"), &e))?;
    let mut byte = [0u8; 1];
    match r.read_exact(&mut byte) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(FrameStep::Eof),
        Err(e) => return Err(DiceError::io(format!("read dtf {path}"), &e)),
    }
    if byte[0] != FRAME_MARKER {
        return Err(parse_err(
            path,
            frame,
            format!("bad frame marker {:#04x} at offset {start}", byte[0]),
        ));
    }
    // core varint, body_len varint, 8-byte checksum. Any EOF in here (or
    // in the body, judged by the caller via file_len) is a torn tail.
    let read_varint = |r: &mut dyn Read| -> DiceResult<Option<u64>> {
        let mut buf = Vec::with_capacity(10);
        let mut b = [0u8; 1];
        loop {
            match r.read_exact(&mut b) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
                Err(e) => return Err(DiceError::io(format!("read dtf {path}"), &e)),
            }
            buf.push(b[0]);
            if b[0] & 0x80 == 0 {
                let mut pos = 0;
                return get_varint(&buf, &mut pos)
                    .map(Some)
                    .ok_or_else(|| parse_err(path, frame, "overlong varint in frame header"));
            }
            if buf.len() >= 10 {
                return Err(parse_err(
                    path,
                    frame,
                    "unterminated varint in frame header",
                ));
            }
        }
    };
    let Some(core) = read_varint(r)? else {
        return Ok(FrameStep::Torn {
            dropped: file_len - start,
        });
    };
    let Some(body_len) = read_varint(r)? else {
        return Ok(FrameStep::Torn {
            dropped: file_len - start,
        });
    };
    let core = u32::try_from(core)
        .ok()
        .filter(|c| *c < MAX_CORES)
        .ok_or_else(|| parse_err(path, frame, format!("core id {core} out of range")))?;
    let body_len = usize::try_from(body_len)
        .ok()
        .filter(|l| *l <= MAX_BODY_BYTES)
        .ok_or_else(|| {
            parse_err(
                path,
                frame,
                format!("body length {body_len} exceeds MAX_BODY_BYTES"),
            )
        })?;
    let mut ck = [0u8; 8];
    match r.read_exact(&mut ck) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Ok(FrameStep::Torn {
                dropped: file_len - start,
            })
        }
        Err(e) => return Err(DiceError::io(format!("read dtf {path}"), &e)),
    }
    let here = r
        .stream_position()
        .map_err(|e| DiceError::io(format!("seek dtf {path}"), &e))?;
    if here + body_len as u64 > file_len {
        return Ok(FrameStep::Torn {
            dropped: file_len - start,
        });
    }
    Ok(FrameStep::Frame {
        core,
        body_len,
        checksum: u64::from_le_bytes(ck),
    })
}

/// Per-stream statistics collected by [`scan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStat {
    /// Records in this stream.
    pub records: u64,
    /// Lowest line address (0 when empty).
    pub min_line: u64,
    /// Highest line address (0 when empty).
    pub max_line: u64,
}

impl CoreStat {
    /// `max - min + 1`, the per-core footprint bound fed to the sim's
    /// prefetcher-reach heuristic (0 when the stream is empty).
    #[must_use]
    pub fn footprint_lines(&self) -> u64 {
        if self.records == 0 {
            0
        } else {
            self.max_line - self.min_line + 1
        }
    }
}

/// Everything a full validation pass over a `.dtf` file learns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanInfo {
    /// Stream count from the header.
    pub cores: u32,
    /// Total records across all streams.
    pub records: u64,
    /// Complete frames.
    pub frames: u64,
    /// Frames stored `dlz`-compressed.
    pub compressed_frames: u64,
    /// Per-stream statistics.
    pub per_core: Vec<CoreStat>,
    /// Bytes dropped as a torn tail (0 for a cleanly finished file).
    pub dropped_bytes: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Sum of decoded (raw) payload bytes.
    pub raw_payload_bytes: u64,
}

/// Validates every frame of `path`: checksums, flags, record encodings.
/// With `strict` set a torn tail is an error; otherwise it is truncated
/// away and reported in [`ScanInfo::dropped_bytes`] (recovery semantics,
/// matching the fabric journal).
///
/// # Errors
///
/// Returns [`DiceError::Io`] on I/O failure and [`DiceError::TraceParse`]
/// on any corruption (and, under `strict`, on a torn tail).
pub fn scan(path: impl AsRef<Path>, strict: bool) -> DiceResult<ScanInfo> {
    let path = path.as_ref();
    let shown = path.display().to_string();
    let file =
        std::fs::File::open(path).map_err(|e| DiceError::io(format!("open dtf {shown}"), &e))?;
    let file_len = file
        .metadata()
        .map_err(|e| DiceError::io(format!("stat dtf {shown}"), &e))?
        .len();
    let mut r = std::io::BufReader::new(file);
    let cores = read_header(&mut r, &shown)?;
    let mut info = ScanInfo {
        cores,
        records: 0,
        frames: 0,
        compressed_frames: 0,
        per_core: vec![CoreStat::default(); cores as usize],
        dropped_bytes: 0,
        file_bytes: file_len,
        raw_payload_bytes: 0,
    };
    let mut body = Vec::new();
    let mut records = Vec::new();
    let mut scratch = Vec::new();
    loop {
        let frame_no = info.frames + 1;
        match next_frame_header(&mut r, file_len, &shown, frame_no)? {
            FrameStep::Eof => break,
            FrameStep::Torn { dropped } => {
                if strict {
                    return Err(parse_err(
                        &shown,
                        frame_no,
                        format!("torn tail: {dropped} trailing bytes"),
                    ));
                }
                info.dropped_bytes = dropped;
                break;
            }
            FrameStep::Frame {
                core,
                body_len,
                checksum,
            } => {
                if core >= cores {
                    return Err(parse_err(
                        &shown,
                        frame_no,
                        format!("frame for core {core} but header declares {cores}"),
                    ));
                }
                body.resize(body_len, 0);
                r.read_exact(&mut body)
                    .map_err(|e| DiceError::io(format!("read dtf {shown}"), &e))?;
                decode_body(
                    core,
                    checksum,
                    &body,
                    false,
                    &mut records,
                    &mut scratch,
                    &shown,
                    frame_no,
                )?;
                let mut count_var = Vec::with_capacity(10);
                put_varint(&mut count_var, records.len() as u64);
                if body.first() == Some(&FLAG_COMPRESSED) {
                    info.compressed_frames += 1;
                    // decode_body left the decompressed payload in scratch.
                    info.raw_payload_bytes += scratch.len() as u64;
                } else {
                    info.raw_payload_bytes += (body.len() - 1 - count_var.len()) as u64;
                }
                let stat = &mut info.per_core[core as usize];
                for dr in &records {
                    if stat.records == 0 {
                        stat.min_line = dr.rec.line;
                        stat.max_line = dr.rec.line;
                    } else {
                        stat.min_line = stat.min_line.min(dr.rec.line);
                        stat.max_line = stat.max_line.max(dr.rec.line);
                    }
                    stat.records += 1;
                }
                info.records += records.len() as u64;
                info.frames += 1;
            }
        }
    }
    Ok(info)
}

/// Fully decodes the records of one stream (values included) — the
/// in-memory path the streamed reader is byte-compared against, and the
/// unpacker's workhorse. Torn tails are truncated away (recovery
/// semantics).
///
/// # Errors
///
/// Returns [`DiceError::Io`] on I/O failure, [`DiceError::TraceParse`] on
/// corruption, or [`DiceError::Config`] when `file_core` is outside the
/// header's stream count.
pub fn read_core_records(path: impl AsRef<Path>, file_core: u32) -> DiceResult<Vec<DtfRecord>> {
    let path = path.as_ref();
    let shown = path.display().to_string();
    let file =
        std::fs::File::open(path).map_err(|e| DiceError::io(format!("open dtf {shown}"), &e))?;
    let file_len = file
        .metadata()
        .map_err(|e| DiceError::io(format!("stat dtf {shown}"), &e))?
        .len();
    let mut r = std::io::BufReader::new(file);
    let cores = read_header(&mut r, &shown)?;
    if file_core >= cores {
        return Err(DiceError::Config {
            field: "dtf core".to_owned(),
            reason: format!("stream {file_core} requested, file has {cores}"),
        });
    }
    let mut out = Vec::new();
    let mut body = Vec::new();
    let mut records = Vec::new();
    let mut scratch = Vec::new();
    let mut frame_no = 0u64;
    loop {
        frame_no += 1;
        match next_frame_header(&mut r, file_len, &shown, frame_no)? {
            FrameStep::Eof | FrameStep::Torn { .. } => break,
            FrameStep::Frame {
                core,
                body_len,
                checksum,
            } => {
                if core != file_core {
                    r.seek_relative(body_len as i64)
                        .map_err(|e| DiceError::io(format!("seek dtf {shown}"), &e))?;
                    continue;
                }
                body.resize(body_len, 0);
                r.read_exact(&mut body)
                    .map_err(|e| DiceError::io(format!("read dtf {shown}"), &e))?;
                decode_body(
                    core,
                    checksum,
                    &body,
                    true,
                    &mut records,
                    &mut scratch,
                    &shown,
                    frame_no,
                )?;
                out.append(&mut records);
            }
        }
    }
    Ok(out)
}

/// FNV-1a over a whole file's bytes — the content hash that keys cached
/// cell results to the exact trace bytes they were computed from.
///
/// # Errors
///
/// Returns [`DiceError::Io`] on I/O failure.
pub fn file_content_hash(path: impl AsRef<Path>) -> DiceResult<u64> {
    let path = path.as_ref();
    let shown = path.display().to_string();
    let mut f =
        std::fs::File::open(path).map_err(|e| DiceError::io(format!("open dtf {shown}"), &e))?;
    let mut h = FNV_OFFSET;
    let mut buf = vec![0u8; 64 << 10];
    loop {
        let n = f
            .read(&mut buf)
            .map_err(|e| DiceError::io(format!("read dtf {shown}"), &e))?;
        if n == 0 {
            return Ok(h);
        }
        h = fnv1a64(h, &buf[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: u64) -> Vec<DtfRecord> {
        (0..n)
            .map(|i| {
                DtfRecord::plain(TraceRecord {
                    gap: i % 7,
                    line: 1000 + (i * 37) % 90,
                    write: i % 3 == 0,
                })
            })
            .collect()
    }

    #[test]
    fn frame_round_trips_raw_and_compressed() {
        for compress in [false, true] {
            let original = recs(100);
            let frame = encode_frame(2, &original, compress);
            assert_eq!(frame[0], FRAME_MARKER);
            let mut pos = 1usize;
            let core = get_varint(&frame, &mut pos).unwrap() as u32;
            let body_len = get_varint(&frame, &mut pos).unwrap() as usize;
            let checksum = u64::from_le_bytes(frame[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let body = &frame[pos..];
            assert_eq!(body.len(), body_len);
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            decode_body(core, checksum, body, true, &mut out, &mut scratch, "<t>", 1).unwrap();
            assert_eq!(out, original);
        }
    }

    #[test]
    fn values_round_trip_and_can_be_skipped() {
        let mut original = recs(5);
        original[2].value = Some([0xAB; 64]);
        original[4].value = Some(core::array::from_fn(|i| i as u8));
        let frame = encode_frame(0, &original, true);
        let mut pos = 1usize;
        let core = get_varint(&frame, &mut pos).unwrap() as u32;
        let _len = get_varint(&frame, &mut pos).unwrap();
        let checksum = u64::from_le_bytes(frame[pos..pos + 8].try_into().unwrap());
        let body = &frame[pos + 8..];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        decode_body(core, checksum, body, true, &mut out, &mut scratch, "<t>", 1).unwrap();
        assert_eq!(out, original);
        decode_body(
            core,
            checksum,
            body,
            false,
            &mut out,
            &mut scratch,
            "<t>",
            1,
        )
        .unwrap();
        assert!(out.iter().all(|r| r.value.is_none()));
        assert_eq!(
            out.iter().map(|r| r.rec).collect::<Vec<_>>(),
            original.iter().map(|r| r.rec).collect::<Vec<_>>()
        );
    }

    #[test]
    fn checksum_mismatch_is_typed() {
        let frame = encode_frame(1, &recs(10), false);
        let mut pos = 1usize;
        let core = get_varint(&frame, &mut pos).unwrap() as u32;
        let _len = get_varint(&frame, &mut pos).unwrap();
        let checksum = u64::from_le_bytes(frame[pos..pos + 8].try_into().unwrap());
        let mut body = frame[pos + 8..].to_vec();
        body[3] ^= 0x40;
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        let err = decode_body(
            core,
            checksum,
            &body,
            true,
            &mut out,
            &mut scratch,
            "<t>",
            7,
        )
        .unwrap_err();
        assert_eq!(err.class(), dice_obs::ErrorClass::TraceParse);
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn delta_encoding_shrinks_sequential_streams() {
        let seq: Vec<DtfRecord> = (0..1000)
            .map(|i| {
                DtfRecord::plain(TraceRecord {
                    gap: 2,
                    line: 0x4000_0000 + i,
                    write: false,
                })
            })
            .collect();
        let frame = encode_frame(0, &seq, true);
        // flags+gap+delta ≈ 3 bytes raw, and dlz collapses the repetition.
        assert!(
            frame.len() < 400,
            "sequential frame is {} bytes",
            frame.len()
        );
    }
}
