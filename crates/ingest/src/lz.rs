//! `dlz`: the zero-dependency LZ-style block compressor behind optional
//! DTF1 frame compression.
//!
//! The token stream is byte-oriented and self-delimiting:
//!
//! * `0x00..=0x7F` — a literal run: `token + 1` raw bytes follow (1–128);
//! * `0x80..=0xFF` — a back-reference: length `= (token & 0x7F) + MIN_MATCH`
//!   (4–131), followed by the match distance as a varint (≥ 1, ≤ bytes
//!   already produced).
//!
//! Compression is greedy over a 4-byte-prefix hash table (one candidate
//! per bucket), which is plenty for delta-encoded trace payloads — their
//! redundancy is short repeated gap/delta motifs. Decompression is fully
//! bounds-checked and returns typed errors: it never reads past the input,
//! never writes past the declared output size, and rejects any distance
//! outside the produced window, so a corrupt or truncated block cannot
//! panic or over-allocate.

use dice_obs::{DiceError, DiceResult};

use crate::varint::{get_varint, put_varint};

/// Shortest back-reference worth a token + distance varint.
const MIN_MATCH: usize = 4;
/// Longest back-reference one token can express.
const MAX_MATCH: usize = 127 + MIN_MATCH;
/// Longest literal run one token can express.
const MAX_LITERALS: usize = 128;
/// Hash-table buckets (4-byte prefixes → last position).
const HASH_BUCKETS: usize = 1 << 15;

fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(2654435761) >> 17) as usize & (HASH_BUCKETS - 1)
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    for chunk in lits.chunks(MAX_LITERALS) {
        out.push((chunk.len() - 1) as u8);
        out.extend_from_slice(chunk);
    }
}

/// Compresses `src` into a fresh token stream. Always succeeds; on
/// incompressible input the result is slightly larger than `src` (one
/// literal token per 128 bytes) — callers compare sizes and keep the raw
/// form when compression does not pay (the DTF1 writer does exactly that).
#[must_use]
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    let mut table = vec![usize::MAX; HASH_BUCKETS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= src.len() {
        let h = hash4(&src[i..i + MIN_MATCH]);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX && src[cand..cand + MIN_MATCH] == src[i..i + MIN_MATCH] {
            let mut len = MIN_MATCH;
            while i + len < src.len() && len < MAX_MATCH && src[cand + len] == src[i + len] {
                len += 1;
            }
            flush_literals(&mut out, &src[lit_start..i]);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            put_varint(&mut out, (i - cand) as u64);
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, &src[lit_start..]);
    out
}

/// Decompresses a token stream into exactly `raw_len` bytes, appended to
/// `out` (which is cleared first and reused across frames to keep the
/// streaming reader allocation-bounded).
///
/// # Errors
///
/// Returns [`DiceError::TraceParse`] (with `path`/`frame` context) when the
/// stream is truncated, a distance points outside the produced window, or
/// the produced size differs from `raw_len`.
pub fn decompress_into(
    src: &[u8],
    raw_len: usize,
    out: &mut Vec<u8>,
    path: &str,
    frame: u64,
) -> DiceResult<()> {
    let bad = |reason: String| DiceError::TraceParse {
        path: path.to_owned(),
        line: frame,
        reason,
    };
    out.clear();
    out.reserve(raw_len);
    let mut pos = 0usize;
    while pos < src.len() {
        let token = src[pos];
        pos += 1;
        if token < 0x80 {
            let n = usize::from(token) + 1;
            let lits = src
                .get(pos..pos + n)
                .ok_or_else(|| bad(format!("dlz literal run of {n} truncated")))?;
            if out.len() + n > raw_len {
                return Err(bad("dlz output exceeds declared raw size".to_owned()));
            }
            out.extend_from_slice(lits);
            pos += n;
        } else {
            let len = usize::from(token & 0x7f) + MIN_MATCH;
            let dist = get_varint(src, &mut pos)
                .ok_or_else(|| bad("dlz match distance truncated".to_owned()))?;
            let dist = usize::try_from(dist)
                .ok()
                .filter(|d| *d >= 1 && *d <= out.len())
                .ok_or_else(|| bad(format!("dlz match distance {dist} out of window")))?;
            if out.len() + len > raw_len {
                return Err(bad("dlz output exceeds declared raw size".to_owned()));
            }
            // Overlapping copies are the point (run-length motifs), so
            // copy byte-wise from the back-reference.
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != raw_len {
        return Err(bad(format!(
            "dlz produced {} bytes, frame declared {raw_len}",
            out.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &[u8]) {
        let c = compress(src);
        let mut out = Vec::new();
        decompress_into(&c, src.len(), &mut out, "<test>", 0).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn round_trips_basic_shapes() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcabcabcabcabcabcabcabc");
        round_trip(&[0u8; 4096]);
        round_trip(b"the quick brown fox jumps over the lazy dog");
        let ramp: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        round_trip(&ramp);
    }

    #[test]
    fn compresses_repetitive_payloads() {
        let src: Vec<u8> = std::iter::repeat_n([3u8, 1, 4, 1, 5, 9, 2, 6], 512)
            .flatten()
            .collect();
        let c = compress(&src);
        assert!(c.len() * 4 < src.len(), "{} vs {}", c.len(), src.len());
        let mut out = Vec::new();
        decompress_into(&c, src.len(), &mut out, "<test>", 0).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn decompress_rejects_corruption() {
        let src = b"abcabcabcabcabcabcabcabcabcabc";
        let c = compress(src);
        // Truncation at every offset either errors or yields a short
        // output, which the raw_len check turns into an error.
        for cut in 0..c.len() {
            let mut out = Vec::new();
            assert!(
                decompress_into(&c[..cut], src.len(), &mut out, "<t>", 1).is_err(),
                "cut at {cut} silently accepted"
            );
        }
        // A distance pointing before the start of output is rejected.
        let evil = [0x80u8, 0x05]; // match len 4, distance 5, no output yet
        let mut out = Vec::new();
        assert!(decompress_into(&evil, 4, &mut out, "<t>", 1).is_err());
        // Output larger than declared is rejected.
        let big = compress(&[7u8; 100]);
        let mut out = Vec::new();
        assert!(decompress_into(&big, 10, &mut out, "<t>", 1).is_err());
    }
}
