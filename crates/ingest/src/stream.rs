//! Bounded-memory streaming: one decoded frame in flight per core stream.
//!
//! [`DtfCoreStream`] implements [`RecordSource`] directly over the file,
//! so a multi-gigabyte `.dtf` trace drives the simulator with a few
//! hundred kilobytes resident (frame payload + decode scratch + decoded
//! records of a single frame, all capped by
//! [`MAX_BODY_BYTES`](crate::frame::MAX_BODY_BYTES) /
//! [`MAX_RAW_BYTES`](crate::frame::MAX_RAW_BYTES)). [`TraceBinding`]
//! captures the validation pass over a file — stream count, per-core
//! footprints and the FNV-1a content hash — as plain `Debug`-rendered
//! data, which is exactly what flows into the runner's disk-cache key, so
//! a cached cell can never outlive a changed trace file.

use std::fs::File;
use std::io::Read as _;
use std::io::{BufReader, Seek, SeekFrom};
use std::path::Path;

use dice_obs::{DiceError, DiceResult};
use dice_workloads::{RecordSource, ReplaySource, TraceRecord, TraceSource};

use crate::frame::{self, next_frame_header, CoreStat, DtfRecord, FrameStep};

/// A validated, content-hashed reference to a `.dtf` trace file: the
/// form in which a file-backed workload travels through `WorkloadSet`,
/// the runner and its disk cache. All fields are part of the derived
/// `Debug` output on purpose — the runner fingerprints cells by
/// `format!("{cfg:?}|{workload:?}")`, so the content hash (and everything
/// else here) keys cached results automatically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBinding {
    path: String,
    content_hash: u64,
    cores: u32,
    records: u64,
    core_records: Vec<u64>,
    core_footprints: Vec<u64>,
    dropped_bytes: u64,
    preload: bool,
}

impl TraceBinding {
    /// Scans and validates `path` (every frame checksum, every record
    /// encoding; a torn tail is truncated away and reported), computes
    /// the content hash, and captures per-stream statistics.
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::Io`] on I/O failure, [`DiceError::TraceParse`]
    /// on corruption, or [`DiceError::Config`] when the file holds no
    /// records at all.
    pub fn open(path: impl AsRef<Path>) -> DiceResult<Self> {
        let path = path.as_ref();
        let info = frame::scan(path, false)?;
        if info.records == 0 {
            return Err(DiceError::Config {
                field: "dtf trace".to_owned(),
                reason: format!("{} holds no records", path.display()),
            });
        }
        let content_hash = frame::file_content_hash(path)?;
        Ok(Self {
            path: path.display().to_string(),
            content_hash,
            cores: info.cores,
            records: info.records,
            core_records: info.per_core.iter().map(|c| c.records).collect(),
            core_footprints: info
                .per_core
                .iter()
                .map(CoreStat::footprint_lines)
                .collect(),
            dropped_bytes: info.dropped_bytes,
            preload: false,
        })
    }

    /// Switches the binding to preload mode: the sim materializes each
    /// stream into a [`ReplaySource`] instead of streaming frames. Used
    /// by the byte-identity harness (streamed vs in-memory) and small
    /// traces; the flag is `Debug`-visible, so the two modes never share
    /// a cache entry.
    #[must_use]
    pub fn with_preload(mut self, preload: bool) -> Self {
        self.preload = preload;
        self
    }

    /// The trace file path as bound.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// FNV-1a hash of the file's bytes at bind time.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Streams recorded in the file.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Total records across all streams.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records in stream `file_core`.
    #[must_use]
    pub fn core_records(&self, file_core: u32) -> u64 {
        self.core_records
            .get(file_core as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Torn-tail bytes truncated away at bind time.
    #[must_use]
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Whether streams are materialized rather than streamed.
    #[must_use]
    pub fn preload(&self) -> bool {
        self.preload
    }

    /// Maps a simulated core onto a recorded stream (`core % cores`).
    #[must_use]
    pub fn map_core(&self, core: u32) -> u32 {
        core % self.cores
    }
}

/// A [`TraceSource`] over a bound `.dtf` file.
#[derive(Debug, Clone)]
pub struct DtfTraceSource {
    binding: TraceBinding,
}

impl DtfTraceSource {
    /// Wraps an already-validated binding.
    #[must_use]
    pub fn new(binding: TraceBinding) -> Self {
        Self { binding }
    }

    /// Binds and wraps `path` in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceBinding::open`] errors.
    pub fn open(path: impl AsRef<Path>) -> DiceResult<Self> {
        Ok(Self::new(TraceBinding::open(path)?))
    }

    /// The underlying binding.
    #[must_use]
    pub fn binding(&self) -> &TraceBinding {
        &self.binding
    }
}

impl TraceSource for DtfTraceSource {
    fn cores(&self) -> u32 {
        self.binding.cores
    }

    fn open_core(&self, core: u32) -> DiceResult<Box<dyn RecordSource + Send>> {
        let file_core = self.binding.map_core(core);
        if self.binding.core_records(file_core) == 0 {
            return Err(DiceError::Config {
                field: "dtf trace".to_owned(),
                reason: format!(
                    "{}: stream {file_core} (for core {core}) holds no records",
                    self.binding.path
                ),
            });
        }
        if self.binding.preload {
            let records: Vec<TraceRecord> =
                frame::read_core_records(&self.binding.path, file_core)?
                    .into_iter()
                    .map(|r| r.rec)
                    .collect();
            return Ok(Box::new(ReplaySource::try_new(records)?));
        }
        let stream = DtfCoreStream::open(
            &self.binding.path,
            file_core,
            self.binding.core_footprints[file_core as usize],
        )?;
        Ok(Box::new(stream))
    }

    fn content_hash(&self) -> u64 {
        self.binding.content_hash
    }

    fn records(&self) -> u64 {
        self.binding.records
    }
}

/// A bounded-memory [`RecordSource`] over one stream of a `.dtf` file:
/// holds exactly one decoded frame, skips other cores' frames by seeking
/// past their bodies, and loops to the first frame at end of trace
/// (truncating any torn tail, like the fabric journal's recovery).
#[derive(Debug)]
pub struct DtfCoreStream {
    r: BufReader<File>,
    path: String,
    file_core: u32,
    /// Offset of the first frame (just past the header).
    first_frame: u64,
    file_len: u64,
    footprint: u64,
    /// Decoded records of the current frame (values dropped).
    buf: Vec<DtfRecord>,
    pos: usize,
    /// Frames decoded since the last loop restart (error context + the
    /// empty-pass guard).
    frame_no: u64,
    /// Reused frame-body buffer.
    body: Vec<u8>,
    /// Reused decompression buffer.
    scratch: Vec<u8>,
}

impl DtfCoreStream {
    /// Opens one stream. `footprint` is the per-stream footprint from the
    /// binding's scan (max line − min line + 1).
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::Io`] on I/O failure or [`DiceError::TraceParse`]
    /// on a bad header.
    pub fn open(path: impl AsRef<Path>, file_core: u32, footprint: u64) -> DiceResult<Self> {
        let path = path.as_ref();
        let shown = path.display().to_string();
        let file = File::open(path).map_err(|e| DiceError::io(format!("open dtf {shown}"), &e))?;
        let file_len = file
            .metadata()
            .map_err(|e| DiceError::io(format!("stat dtf {shown}"), &e))?
            .len();
        let mut r = BufReader::new(file);
        let cores = frame::read_header(&mut r, &shown)?;
        if file_core >= cores {
            return Err(DiceError::Config {
                field: "dtf core".to_owned(),
                reason: format!("stream {file_core} requested, file has {cores}"),
            });
        }
        let first_frame = frame::header_len(cores);
        Ok(Self {
            r,
            path: shown,
            file_core,
            first_frame,
            file_len,
            footprint,
            buf: Vec::new(),
            pos: 0,
            frame_no: 0,
            body: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// Current resident-buffer bytes (capacities of the three reusable
    /// buffers). Bounded by the per-frame caps for any file size — the
    /// memory contract the bounded-memory test pins down.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.body.capacity()
            + self.scratch.capacity()
            + self.buf.capacity() * std::mem::size_of::<DtfRecord>()
    }

    /// Decodes the next frame belonging to this stream into `buf`,
    /// looping to the first frame at end of file.
    fn refill(&mut self) -> DiceResult<()> {
        let mut looped = false;
        loop {
            self.frame_no += 1;
            match next_frame_header(&mut self.r, self.file_len, &self.path, self.frame_no)? {
                FrameStep::Eof | FrameStep::Torn { .. } => {
                    if looped {
                        // A full pass found no frame for this stream even
                        // though the binding said there was one: the file
                        // changed underneath us.
                        return Err(DiceError::TraceParse {
                            path: self.path.clone(),
                            line: self.frame_no,
                            reason: format!(
                                "no frames for stream {} in a full pass",
                                self.file_core
                            ),
                        });
                    }
                    looped = true;
                    self.frame_no = 0;
                    self.r
                        .seek(SeekFrom::Start(self.first_frame))
                        .map_err(|e| DiceError::io(format!("seek dtf {}", self.path), &e))?;
                }
                FrameStep::Frame {
                    core,
                    body_len,
                    checksum,
                } => {
                    if core != self.file_core {
                        self.r
                            .seek_relative(body_len as i64)
                            .map_err(|e| DiceError::io(format!("seek dtf {}", self.path), &e))?;
                        continue;
                    }
                    self.body.resize(body_len, 0);
                    self.r
                        .read_exact(&mut self.body)
                        .map_err(|e| DiceError::io(format!("read dtf {}", self.path), &e))?;
                    frame::decode_body(
                        core,
                        checksum,
                        &self.body,
                        false,
                        &mut self.buf,
                        &mut self.scratch,
                        &self.path,
                        self.frame_no,
                    )?;
                    if self.buf.is_empty() {
                        continue; // legal but useless frame; keep scanning
                    }
                    self.pos = 0;
                    return Ok(());
                }
            }
        }
    }
}

impl RecordSource for DtfCoreStream {
    /// # Panics
    ///
    /// Panics (with the typed error's message) if the file turns
    /// unreadable or corrupt *mid-run* — the binding validated it at open
    /// time, so this means the file changed underneath the simulation.
    /// The runner's per-cell `catch_unwind` turns that into a failed
    /// cell, not a dead sweep.
    fn next_record(&mut self) -> TraceRecord {
        if self.pos >= self.buf.len() {
            if let Err(e) = self.refill() {
                panic!("streamed trace failed mid-run: {e}");
            }
        }
        let r = self.buf[self.pos].rec;
        self.pos += 1;
        r
    }

    fn footprint_lines(&self) -> u64 {
        self.footprint
    }
}
