//! dice-ingest — streamed real-trace ingestion for the DICE simulator.
//!
//! Every workload the simulator ran before this crate was synthetic.
//! dice-ingest opens the "any trace a user brings" axis with a zero-
//! dependency framed container, **DTF1**:
//!
//! ```text
//! file  := "DTF1" varint(cores) frame*
//! frame := 0xDF varint(core) varint(body_len) u64le(checksum) body
//! body  := flags varint(count) [varint(raw_len)] payload
//! ```
//!
//! * **Delta + varint record encoding** — per record: a flags byte
//!   (read/write, value-payload present), the instruction gap as a
//!   varint, and the line address zigzag-delta-encoded against the
//!   previous record in the frame (sequential streams collapse to ~3
//!   bytes/record before compression). An optional 64-byte value payload
//!   rides behind a flag bit.
//! * **Per-frame integrity** — every frame carries its body length and an
//!   FNV-1a checksum over the stream id and body; a flipped bit anywhere
//!   is a typed [`DiceError::TraceParse`](dice_obs::DiceError), while an
//!   incomplete frame at end-of-file is a *torn tail*, truncated away on
//!   recovery exactly like the fabric journal's `DJR1` records.
//! * **Optional `dlz` block compression** — a bounds-checked LZ-style
//!   byte compressor ([`lz`]); frames store whichever of raw/compressed
//!   is smaller.
//! * **Bounded-memory streaming** — [`DtfCoreStream`] holds one decoded
//!   frame per core stream and seeks past other cores' frames, so trace
//!   size never affects resident memory; it loops at end-of-trace like
//!   [`ReplaySource`](dice_workloads::ReplaySource), and a sweep driven
//!   by a streamed file is byte-identical to the same records replayed
//!   from memory.
//! * **Cache-safe bindings** — [`TraceBinding`] validates a file once,
//!   records per-stream footprints and the file's FNV-1a content hash,
//!   and travels inside `WorkloadSet` where its `Debug` rendering feeds
//!   the runner's disk-cache key: change the file, change the key.
//!
//! The `dice-ingest` CLI (in `crates/bench`, next to `experiments`)
//! packs text/synthetic traces into `.dtf`, inspects them, and runs
//! streamed-vs-in-memory equivalence sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod lz;
pub mod stream;
pub mod varint;
pub mod writer;

pub use frame::{
    file_content_hash, fnv1a64, read_core_records, scan, CoreStat, DtfRecord, FrameStep, ScanInfo,
    FLAG_COMPRESSED, FNV_OFFSET, FRAME_MARKER, MAGIC, MAX_BODY_BYTES, MAX_CORES, MAX_RAW_BYTES,
};
pub use stream::{DtfCoreStream, DtfTraceSource, TraceBinding};
pub use writer::{pack_records, pack_sources, DtfWriter, WriteStats, FRAME_RECORDS};
