//! Frequent Pattern Compression (Alameldeen & Wood, 2004).
//!
//! FPC scans a cache line as sixteen 32-bit words and encodes each word with
//! a 3-bit pattern prefix followed by a variable-width payload:
//!
//! | prefix | pattern                                   | payload bits |
//! |--------|-------------------------------------------|--------------|
//! | `000`  | run of 1–8 zero words                     | 3 (run len)  |
//! | `001`  | 4-bit sign-extended value                 | 4            |
//! | `010`  | 8-bit sign-extended value                 | 8            |
//! | `011`  | 16-bit sign-extended value                | 16           |
//! | `100`  | lower halfword zero (upper half stored)   | 16           |
//! | `101`  | two halfwords, each a sign-extended byte  | 16           |
//! | `110`  | word of one repeated byte                 | 8            |
//! | `111`  | uncompressed word                         | 32           |
//!
//! Decompression is a handful of shifts per word, matching the 1–5 cycle
//! latency the DICE paper assumes for its compressors.

use crate::bits::{BitReader, BitWriter};
use crate::{words_of_line, LineData, LINE_BYTES};

const PREFIX_BITS: u32 = 3;

const P_ZERO_RUN: u32 = 0b000;
const P_SE4: u32 = 0b001;
const P_SE8: u32 = 0b010;
const P_SE16: u32 = 0b011;
const P_LOWER_ZERO: u32 = 0b100;
const P_TWO_SE_BYTES: u32 = 0b101;
const P_REPEATED_BYTE: u32 = 0b110;
const P_RAW: u32 = 0b111;

/// Returns `true` if `word` equals its low `n` bits sign-extended to 32.
fn fits_signed(word: u32, n: u32) -> bool {
    let v = word as i32;
    let shift = 32 - n;
    (v << shift) >> shift == v
}

/// Returns `true` if the low halfword of `h` equals its low byte
/// sign-extended to 16 bits (the "two sign-extended bytes" pattern checks
/// each halfword independently at 16-bit width).
fn half_fits_se8(h: u32) -> bool {
    let v = (h & 0xffff) as u16 as i16;
    (v << 8) >> 8 == v
}

/// Classification of a single word; `payload` holds the bits to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WordCode {
    prefix: u32,
    payload: u32,
    payload_bits: u32,
}

fn classify(word: u32) -> WordCode {
    if fits_signed(word, 4) {
        WordCode {
            prefix: P_SE4,
            payload: word & 0xf,
            payload_bits: 4,
        }
    } else if fits_signed(word, 8) {
        WordCode {
            prefix: P_SE8,
            payload: word & 0xff,
            payload_bits: 8,
        }
    } else if fits_signed(word, 16) {
        WordCode {
            prefix: P_SE16,
            payload: word & 0xffff,
            payload_bits: 16,
        }
    } else if word & 0xffff == 0 {
        WordCode {
            prefix: P_LOWER_ZERO,
            payload: word >> 16,
            payload_bits: 16,
        }
    } else if half_fits_se8(word) && half_fits_se8(word >> 16) {
        let hi = (word >> 16) & 0xff;
        let lo = word & 0xff;
        WordCode {
            prefix: P_TWO_SE_BYTES,
            payload: (hi << 8) | lo,
            payload_bits: 16,
        }
    } else {
        let b = word & 0xff;
        if word == b * 0x0101_0101 {
            WordCode {
                prefix: P_REPEATED_BYTE,
                payload: b,
                payload_bits: 8,
            }
        } else {
            WordCode {
                prefix: P_RAW,
                payload: word,
                payload_bits: 32,
            }
        }
    }
}

/// An FPC-compressed 64-byte line.
///
/// Holds the packed bit-stream; [`FpcLine::size`] is the byte size the DRAM
/// cache charges for the line's data segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FpcLine {
    bytes: Vec<u8>,
}

impl FpcLine {
    /// Compresses `line`. Always succeeds; incompressible words are emitted
    /// raw, so the worst case is 16 × (3+32) bits = 70 B, i.e. *larger* than
    /// the line. Callers compare [`size`](Self::size) against
    /// [`LINE_BYTES`](crate::LINE_BYTES) and fall back to storing the line
    /// uncompressed (the hybrid wrapper does this automatically).
    #[must_use]
    pub fn compress(line: &LineData) -> Self {
        let words = words_of_line(line);
        let mut w = BitWriter::new();
        let mut i = 0;
        while i < words.len() {
            if words[i] == 0 {
                let mut run = 1;
                while i + run < words.len() && words[i + run] == 0 && run < 8 {
                    run += 1;
                }
                w.write(P_ZERO_RUN, PREFIX_BITS);
                w.write(run as u32 - 1, 3);
                i += run;
            } else {
                let code = classify(words[i]);
                w.write(code.prefix, PREFIX_BITS);
                w.write(code.payload, code.payload_bits);
                i += 1;
            }
        }
        Self {
            bytes: w.into_bytes(),
        }
    }

    /// Compressed size in bytes (bit length rounded up).
    #[must_use]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Reconstructs the original 64-byte line.
    #[must_use]
    pub fn decompress(&self) -> LineData {
        let mut r = BitReader::new(&self.bytes);
        let mut words = [0u32; 16];
        let mut i = 0;
        while i < 16 {
            let prefix = r.read(PREFIX_BITS);
            match prefix {
                P_ZERO_RUN => {
                    let run = r.read(3) as usize + 1;
                    // Zero words are already zero in `words`.
                    i += run;
                }
                P_SE4 => {
                    let v = r.read(4);
                    words[i] = ((v as i32) << 28 >> 28) as u32;
                    i += 1;
                }
                P_SE8 => {
                    let v = r.read(8);
                    words[i] = ((v as i32) << 24 >> 24) as u32;
                    i += 1;
                }
                P_SE16 => {
                    let v = r.read(16);
                    words[i] = ((v as i32) << 16 >> 16) as u32;
                    i += 1;
                }
                P_LOWER_ZERO => {
                    words[i] = r.read(16) << 16;
                    i += 1;
                }
                P_TWO_SE_BYTES => {
                    let v = r.read(16);
                    let hi = ((v >> 8) as u8 as i8) as i16 as u16;
                    let lo = ((v & 0xff) as u8 as i8) as i16 as u16;
                    words[i] = (u32::from(hi) << 16) | u32::from(lo);
                    i += 1;
                }
                P_REPEATED_BYTE => {
                    let b = r.read(8);
                    words[i] = b * 0x0101_0101;
                    i += 1;
                }
                P_RAW => {
                    words[i] = r.read(32);
                    i += 1;
                }
                _ => unreachable!("3-bit prefix"),
            }
        }
        let mut out = [0u8; LINE_BYTES];
        for (chunk, w) in out.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// The FPC-compressed byte size of `line`, computed without materializing
/// the bit-stream.
///
/// This is the simulator's hot path: capacity accounting only ever needs
/// sizes, so the kernel sums the per-word bit widths ([`classify`] plus the
/// zero-run rule) instead of packing payload bits through a [`BitWriter`].
/// The contract — enforced by a property test — is exact equality with
/// `FpcLine::compress(line).size()` for every input.
#[must_use]
pub fn fpc_size(line: &LineData) -> usize {
    let words = words_of_line(line);
    let mut bits: u32 = 0;
    let mut i = 0;
    while i < words.len() {
        if words[i] == 0 {
            let mut run = 1;
            while i + run < words.len() && words[i + run] == 0 && run < 8 {
                run += 1;
            }
            bits += PREFIX_BITS + 3; // prefix + 3-bit run length
            i += run;
        } else {
            bits += PREFIX_BITS + classify(words[i]).payload_bits;
            i += 1;
        }
    }
    (bits as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_from_words;

    fn round_trip(words: [u32; 16]) -> usize {
        let line = line_from_words(&words);
        let c = FpcLine::compress(&line);
        assert_eq!(c.decompress(), line, "round trip failed for {words:x?}");
        c.size()
    }

    #[test]
    fn zero_line_compresses_to_two_runs() {
        // 16 zero words = two runs of 8 = 2 * 6 bits = 12 bits = 2 bytes.
        let size = round_trip([0u32; 16]);
        assert_eq!(size, 2);
    }

    #[test]
    fn small_positive_values_use_se4() {
        let size = round_trip([3u32; 16]);
        // 16 * 7 bits = 112 bits = 14 bytes.
        assert_eq!(size, 14);
    }

    #[test]
    fn small_negative_values_sign_extend() {
        let size = round_trip([(-2i32) as u32; 16]);
        assert_eq!(size, 14);
    }

    #[test]
    fn byte_values_use_se8() {
        let size = round_trip([100u32; 16]);
        // 16 * 11 bits = 176 bits = 22 bytes.
        assert_eq!(size, 22);
    }

    #[test]
    fn halfword_values_use_se16() {
        let size = round_trip([30_000u32; 16]);
        // 16 * 19 = 304 bits = 38 bytes.
        assert_eq!(size, 38);
    }

    #[test]
    fn upper_half_only_words() {
        let size = round_trip([0xabcd_0000u32; 16]);
        assert_eq!(size, 38);
    }

    #[test]
    fn paired_small_bytes_in_halves() {
        let size = round_trip([0x0011_0007u32; 16]);
        // two sign-extended bytes: 19 bits/word.
        assert_eq!(size, 38);
    }

    #[test]
    fn repeated_byte_words() {
        let size = round_trip([0x5a5a_5a5au32; 16]);
        // 11 bits per word.
        assert_eq!(size, 22);
    }

    #[test]
    fn negative_halves_round_trip() {
        round_trip([0x00ff_ff80u32; 16]); // hi = 0x00ff? exercise mixed patterns
        round_trip([0xffff_ff85u32; 16]);
        round_trip([0xff85_0003u32; 16]);
    }

    #[test]
    fn random_words_fall_back_to_raw() {
        let words = [0x1234_5678u32; 16];
        let size = round_trip(words);
        // 16 * 35 bits = 560 bits = 70 bytes — worse than uncompressed, which
        // the hybrid layer handles by storing raw.
        assert_eq!(size, 70);
    }

    #[test]
    fn mixed_content_round_trips() {
        let words = [
            0,
            0,
            0,
            5,
            0xffff_fffe,
            0x7fff,
            0x8000_0000,
            0xabab_abab,
            0x00ff_00ff,
            1,
            0,
            0xdead_beef,
            0x10_0000,
            0xffff_8000,
            0,
            42,
        ];
        round_trip(words);
    }

    #[test]
    fn interleaved_zero_runs() {
        let mut words = [0u32; 16];
        words[5] = 7;
        words[11] = 0x4242_4242;
        let line = line_from_words(&words);
        let c = FpcLine::compress(&line);
        assert_eq!(c.decompress(), line);
        // runs: 5 zeros, value, 5 zeros, value, 4 zeros
        // bits: 6 + 7 + 6 + 11 + 6 = 36 -> 5 bytes
        assert_eq!(c.size(), 5);
    }

    #[test]
    fn size_kernel_matches_bitstream_length() {
        let cases: [[u32; 16]; 6] = [
            [0u32; 16],
            [3u32; 16],
            [0x1234_5678u32; 16],
            [0x5a5a_5a5au32; 16],
            core::array::from_fn(|i| {
                if i % 3 == 0 {
                    0
                } else {
                    0xabcd_0000 + i as u32
                }
            }),
            core::array::from_fn(|i| (i as u32).wrapping_mul(0x9e37_79b9)),
        ];
        for words in cases {
            let line = line_from_words(&words);
            assert_eq!(
                fpc_size(&line),
                FpcLine::compress(&line).size(),
                "size kernel diverged for {words:x?}"
            );
        }
    }

    #[test]
    fn fits_signed_boundaries() {
        assert!(fits_signed(7, 4));
        assert!(!fits_signed(8, 4));
        assert!(fits_signed((-8i32) as u32, 4));
        assert!(!fits_signed((-9i32) as u32, 4));
        assert!(fits_signed(127, 8));
        assert!(!fits_signed(128, 8));
        assert!(fits_signed(0x7fff, 16));
        assert!(!fits_signed(0x8000, 16));
    }
}
