//! Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).
//!
//! A cache line often holds values that are numerically close to each other
//! (array indices, pointers into the same region, pixels, …). BDI stores one
//! *base* value of `B` bytes plus `64/B` signed deltas of `D < B` bytes. The
//! encodings and their sizes follow the original paper:
//!
//! | encoding | base | delta | size (B + 64/B·D)        |
//! |----------|------|-------|--------------------------|
//! | `Zeros`  | —    | —     | 1                        |
//! | `Rep8`   | 8    | —     | 8 (one repeated 64-bit)  |
//! | `B8D1`   | 8    | 1     | 16                       |
//! | `B4D1`   | 4    | 1     | 20                       |
//! | `B8D2`   | 8    | 2     | 24                       |
//! | `B2D1`   | 2    | 1     | 34                       |
//! | `B4D2`   | 4    | 2     | 36                       |
//! | `B8D4`   | 8    | 4     | 40                       |
//!
//! `B4D2`'s 36-byte size is load-bearing for DICE: it is the most common
//! "just barely half a TAD" case, and two such lines sharing their 4-byte
//! base compress to 4 + 32 + 32 = 68 B — exactly one 72 B TAD minus a shared
//! 4 B tag. That is where the paper's 36 B insertion threshold comes from
//! (§6.2).
//!
//! We implement plain base+delta (the "immediate" zero-base flags of the
//! original need a per-element mask that does not fit the 9 metadata bits the
//! DICE set format allots, so like the paper we account only base sharing).

use crate::{LineData, LINE_BYTES};

/// The BDI encoding used for a compressed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BdiEncoding {
    /// All 64 bytes are zero.
    Zeros,
    /// The line is one 64-bit value repeated eight times.
    Rep8,
    /// 8-byte base, 1-byte deltas.
    B8D1,
    /// 4-byte base, 1-byte deltas.
    B4D1,
    /// 8-byte base, 2-byte deltas.
    B8D2,
    /// 2-byte base, 1-byte deltas.
    B2D1,
    /// 4-byte base, 2-byte deltas.
    B4D2,
    /// 8-byte base, 4-byte deltas.
    B8D4,
}

impl BdiEncoding {
    /// All base+delta encodings, in increasing order of compressed size —
    /// the order the compressor tries them in.
    pub const BASE_DELTA: [BdiEncoding; 6] = [
        BdiEncoding::B8D1,
        BdiEncoding::B4D1,
        BdiEncoding::B8D2,
        BdiEncoding::B2D1,
        BdiEncoding::B4D2,
        BdiEncoding::B8D4,
    ];

    /// Width of the base value in bytes (0 for `Zeros`).
    #[must_use]
    pub fn base_bytes(self) -> usize {
        match self {
            BdiEncoding::Zeros => 0,
            BdiEncoding::Rep8 | BdiEncoding::B8D1 | BdiEncoding::B8D2 | BdiEncoding::B8D4 => 8,
            BdiEncoding::B4D1 | BdiEncoding::B4D2 => 4,
            BdiEncoding::B2D1 => 2,
        }
    }

    /// Width of each delta in bytes (0 for `Zeros`/`Rep8`).
    #[must_use]
    pub fn delta_bytes(self) -> usize {
        match self {
            BdiEncoding::Zeros | BdiEncoding::Rep8 => 0,
            BdiEncoding::B8D1 | BdiEncoding::B4D1 | BdiEncoding::B2D1 => 1,
            BdiEncoding::B8D2 | BdiEncoding::B4D2 => 2,
            BdiEncoding::B8D4 => 4,
        }
    }

    /// Number of `base_bytes`-wide elements in a 64-byte line.
    #[must_use]
    pub fn num_elems(self) -> usize {
        match self.base_bytes() {
            0 => 0,
            b => LINE_BYTES / b,
        }
    }

    /// Compressed size in bytes (base + deltas; 1 for `Zeros`).
    #[must_use]
    pub fn size(self) -> usize {
        match self {
            BdiEncoding::Zeros => 1,
            BdiEncoding::Rep8 => 8,
            enc => enc.base_bytes() + enc.num_elems() * enc.delta_bytes(),
        }
    }

    /// Size of the deltas alone — what a second line costs when it *shares*
    /// this encoding's base with its pair neighbor.
    #[must_use]
    pub fn deltas_only_size(self) -> usize {
        self.size() - self.base_bytes().min(self.size())
    }
}

fn mask(bytes: usize) -> u64 {
    if bytes == 8 {
        u64::MAX
    } else {
        (1u64 << (bytes * 8)) - 1
    }
}

/// Reads the `i`-th little-endian element of width `b` bytes.
fn elem(line: &LineData, b: usize, i: usize) -> u64 {
    let mut v = 0u64;
    for k in (0..b).rev() {
        v = (v << 8) | u64::from(line[i * b + k]);
    }
    v
}

/// Sign-extends the low `bytes` bytes of `v` to i64.
fn sext(v: u64, bytes: usize) -> i64 {
    let shift = 64 - bytes * 8;
    ((v << shift) as i64) >> shift
}

/// Checks whether every element of `line` is within a signed `D`-byte delta
/// of `base` (arithmetic performed modulo the base width, as hardware would).
#[must_use]
pub fn fits_with_base(line: &LineData, enc: BdiEncoding, base: u64) -> bool {
    let b = enc.base_bytes();
    let d = enc.delta_bytes();
    if b == 0 || d == 0 {
        return false;
    }
    let m = mask(b);
    (0..enc.num_elems()).all(|i| {
        let diff = elem(line, b, i).wrapping_sub(base) & m;
        let sd = sext(diff, b);
        let lim = 1i64 << (d * 8 - 1);
        (-lim..lim).contains(&sd)
    })
}

/// A BDI-compressed 64-byte line: the encoding tag plus packed
/// base-then-deltas bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BdiLine {
    encoding: BdiEncoding,
    data: Vec<u8>,
}

impl BdiLine {
    /// Compresses `line` with the smallest applicable encoding, or `None`
    /// if no BDI encoding beats storing the line raw.
    #[must_use]
    pub fn compress(line: &LineData) -> Option<Self> {
        if line.iter().all(|&b| b == 0) {
            return Some(Self {
                encoding: BdiEncoding::Zeros,
                data: Vec::new(),
            });
        }
        let first = elem(line, 8, 0);
        if (0..8).all(|i| elem(line, 8, i) == first) {
            return Some(Self {
                encoding: BdiEncoding::Rep8,
                data: first.to_le_bytes().to_vec(),
            });
        }
        BdiEncoding::BASE_DELTA
            .iter()
            .find(|&&enc| {
                enc.size() < LINE_BYTES
                    && fits_with_base(line, enc, elem(line, enc.base_bytes(), 0))
            })
            .map(|&enc| Self::encode(line, enc, elem(line, enc.base_bytes(), 0)))
    }

    /// Compresses `line` with a *specific* base+delta encoding and an
    /// externally supplied base (used for base sharing between paired
    /// lines). Returns `None` if the deltas do not fit.
    #[must_use]
    pub fn compress_with_base(line: &LineData, enc: BdiEncoding, base: u64) -> Option<Self> {
        fits_with_base(line, enc, base).then(|| Self::encode(line, enc, base))
    }

    fn encode(line: &LineData, enc: BdiEncoding, base: u64) -> Self {
        let b = enc.base_bytes();
        let d = enc.delta_bytes();
        let m = mask(b);
        let mut data = Vec::with_capacity(enc.size());
        data.extend_from_slice(&base.to_le_bytes()[..b]);
        for i in 0..enc.num_elems() {
            let diff = elem(line, b, i).wrapping_sub(base) & m;
            data.extend_from_slice(&diff.to_le_bytes()[..d]);
        }
        Self {
            encoding: enc,
            data,
        }
    }

    /// The encoding tag (stored in the set format's metadata bits).
    #[must_use]
    pub fn encoding(&self) -> BdiEncoding {
        self.encoding
    }

    /// Compressed size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.encoding.size()
    }

    /// The base value (0 for `Zeros`; the repeated value for `Rep8`).
    #[must_use]
    pub fn base(&self) -> u64 {
        let b = self.encoding.base_bytes();
        if b == 0 {
            return 0;
        }
        let mut v = 0u64;
        for k in (0..b).rev() {
            v = (v << 8) | u64::from(self.data[k]);
        }
        v
    }

    /// Reconstructs the original 64-byte line.
    #[must_use]
    pub fn decompress(&self) -> LineData {
        let mut out = [0u8; LINE_BYTES];
        match self.encoding {
            BdiEncoding::Zeros => {}
            BdiEncoding::Rep8 => {
                for chunk in out.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&self.data[..8]);
                }
            }
            enc => {
                let b = enc.base_bytes();
                let d = enc.delta_bytes();
                let m = mask(b);
                let base = self.base();
                for i in 0..enc.num_elems() {
                    let mut diff = 0u64;
                    let off = b + i * d;
                    for k in (0..d).rev() {
                        diff = (diff << 8) | u64::from(self.data[off + k]);
                    }
                    // Sign-extend the delta from d bytes before adding.
                    let diff = sext(diff, d) as u64;
                    let v = base.wrapping_add(diff) & m;
                    out[i * b..(i + 1) * b].copy_from_slice(&v.to_le_bytes()[..b]);
                }
            }
        }
        out
    }
}

/// The best BDI size for `line`, if any encoding applies, computed without
/// materializing a [`BdiLine`].
///
/// Mirrors [`BdiLine::compress`]'s selection order exactly (Zeros, Rep8,
/// then [`BdiEncoding::BASE_DELTA`] smallest-first) so the reported size
/// always equals `BdiLine::compress(line).map(|c| c.size())` — a BDI size
/// is fully determined by the chosen encoding, so only the fit checks run.
#[must_use]
pub fn bdi_size(line: &LineData) -> Option<usize> {
    if line.iter().all(|&b| b == 0) {
        return Some(BdiEncoding::Zeros.size());
    }
    let first = elem(line, 8, 0);
    if (0..8).all(|i| elem(line, 8, i) == first) {
        return Some(BdiEncoding::Rep8.size());
    }
    BdiEncoding::BASE_DELTA
        .iter()
        .find(|&&enc| {
            enc.size() < LINE_BYTES && fits_with_base(line, enc, elem(line, enc.base_bytes(), 0))
        })
        .map(|&enc| enc.size())
}

/// Reads the first little-endian element of `line` at `enc`'s base width —
/// the base value [`BdiLine::compress`] would pick (and the one paired
/// compression shares between neighbors).
#[must_use]
pub fn natural_base(line: &LineData, enc: BdiEncoding) -> u64 {
    let b = enc.base_bytes();
    if b == 0 {
        return 0;
    }
    elem(line, b, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zero_line;

    fn line_from_u32s(vals: [u32; 16]) -> LineData {
        let mut out = [0u8; LINE_BYTES];
        for (chunk, v) in out.chunks_exact_mut(4).zip(vals.iter()) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn line_from_u64s(vals: [u64; 8]) -> LineData {
        let mut out = [0u8; LINE_BYTES];
        for (chunk, v) in out.chunks_exact_mut(8).zip(vals.iter()) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn zeros_encoding() {
        let c = BdiLine::compress(&zero_line()).expect("zeros compress");
        assert_eq!(c.encoding(), BdiEncoding::Zeros);
        assert_eq!(c.size(), 1);
        assert_eq!(c.decompress(), zero_line());
    }

    #[test]
    fn repeated_u64() {
        let line = line_from_u64s([0x0102_0304_0506_0708; 8]);
        let c = BdiLine::compress(&line).expect("rep8");
        assert_eq!(c.encoding(), BdiEncoding::Rep8);
        assert_eq!(c.size(), 8);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn pointers_use_b8d1() {
        // Eight pointers into the same 128-byte region.
        let base = 0x7fff_a000_1000u64;
        let vals = [
            base,
            base + 8,
            base + 16,
            base + 24,
            base + 120,
            base + 64,
            base + 32,
            base + 56,
        ];
        let line = line_from_u64s(vals);
        let c = BdiLine::compress(&line).expect("b8d1");
        assert_eq!(c.encoding(), BdiEncoding::B8D1);
        assert_eq!(c.size(), 16);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn negative_deltas_round_trip() {
        let base = 0x1000u64;
        let vals = [
            base,
            base - 100,
            base + 100,
            base - 128,
            base + 127,
            base,
            base - 1,
            base + 1,
        ];
        let line = line_from_u64s(vals);
        let c = BdiLine::compress(&line).expect("b8d1 with negative deltas");
        assert_eq!(c.encoding(), BdiEncoding::B8D1);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn u32_indices_use_b4d1() {
        let vals: [u32; 16] = core::array::from_fn(|i| 0x0040_0000 + i as u32 * 4);
        let line = line_from_u32s(vals);
        let c = BdiLine::compress(&line).expect("b4d1");
        assert_eq!(c.encoding(), BdiEncoding::B4D1);
        assert_eq!(c.size(), 20);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn u32_spread_uses_b4d2() {
        let vals: [u32; 16] = core::array::from_fn(|i| 0x0040_0000 + i as u32 * 1000);
        let line = line_from_u32s(vals);
        let c = BdiLine::compress(&line).expect("b4d2");
        assert_eq!(c.encoding(), BdiEncoding::B4D2);
        assert_eq!(c.size(), 36);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn incompressible_returns_none() {
        let mut line = [0u8; LINE_BYTES];
        // A maximally spread pattern: no narrow-delta base exists.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for chunk in line.chunks_exact_mut(8) {
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        assert_eq!(BdiLine::compress(&line), None);
    }

    #[test]
    fn wraparound_deltas_are_handled() {
        // Base near the top of the u32 range, elements wrap past zero.
        let base = 0xffff_fff0u32;
        let vals: [u32; 16] = core::array::from_fn(|i| base.wrapping_add(i as u32 * 2));
        let line = line_from_u32s(vals);
        let c = BdiLine::compress(&line).expect("wraparound b4d1");
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn shared_base_compression() {
        let base = 0x0100_0000u64;
        let vals_a: [u32; 16] = core::array::from_fn(|i| (base as u32) + i as u32);
        let vals_b: [u32; 16] = core::array::from_fn(|i| (base as u32) + 50 + i as u32);
        let a = line_from_u32s(vals_a);
        let b = line_from_u32s(vals_b);
        let ca = BdiLine::compress(&a).expect("a compresses");
        let cb = BdiLine::compress_with_base(&b, ca.encoding(), ca.base()).expect("b shares base");
        assert_eq!(cb.decompress(), b);
    }

    #[test]
    fn shared_base_rejects_distant_line() {
        let vals_a: [u32; 16] = core::array::from_fn(|i| 100 + i as u32);
        let vals_b: [u32; 16] = core::array::from_fn(|i| 0x7000_0000 + i as u32);
        let a = line_from_u32s(vals_a);
        let b = line_from_u32s(vals_b);
        let ca = BdiLine::compress(&a).expect("a compresses");
        assert_eq!(
            BdiLine::compress_with_base(&b, BdiEncoding::B4D1, ca.base()),
            None
        );
    }

    #[test]
    fn encoding_sizes_match_paper() {
        assert_eq!(BdiEncoding::Zeros.size(), 1);
        assert_eq!(BdiEncoding::Rep8.size(), 8);
        assert_eq!(BdiEncoding::B8D1.size(), 16);
        assert_eq!(BdiEncoding::B4D1.size(), 20);
        assert_eq!(BdiEncoding::B8D2.size(), 24);
        assert_eq!(BdiEncoding::B2D1.size(), 34);
        assert_eq!(BdiEncoding::B4D2.size(), 36);
        assert_eq!(BdiEncoding::B8D4.size(), 40);
    }

    #[test]
    fn deltas_only_size() {
        assert_eq!(BdiEncoding::B4D2.deltas_only_size(), 32);
        assert_eq!(BdiEncoding::B8D1.deltas_only_size(), 8);
    }

    #[test]
    fn size_kernel_matches_materialized() {
        let mut lines: Vec<LineData> = vec![zero_line()];
        lines.push(line_from_u64s([0x0102_0304_0506_0708; 8]));
        lines.push(line_from_u32s(core::array::from_fn(|i| {
            0x0040_0000 + i as u32 * 1000
        })));
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut noise = zero_line();
        for chunk in noise.chunks_exact_mut(8) {
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        lines.push(noise);
        for line in lines {
            assert_eq!(bdi_size(&line), BdiLine::compress(&line).map(|c| c.size()));
        }
    }

    #[test]
    fn natural_base_matches_compressor_choice() {
        let line = line_from_u32s(core::array::from_fn(|i| 0x0040_0000 + i as u32 * 4));
        let c = BdiLine::compress(&line).expect("b4d1");
        assert_eq!(natural_base(&line, c.encoding()), c.base());
    }

    #[test]
    fn compressor_prefers_smaller_encoding() {
        // Values within ±127 of base fit B8D1; compressor must not pick B8D2.
        let base = 0x10_0000u64;
        let vals = [
            base,
            base + 1,
            base + 2,
            base + 3,
            base + 4,
            base + 5,
            base + 6,
            base + 7,
        ];
        let line = line_from_u64s(vals);
        assert_eq!(
            BdiLine::compress(&line).expect("compresses").encoding(),
            BdiEncoding::B8D1
        );
    }
}
