//! C-PACK: dictionary-based cache-line compression (Chen, Yang, Dick,
//! Shang & Lekatsas, TVLSI 2010).
//!
//! The DICE paper evaluates with FPC+BDI but notes (§7.1) that the design
//! "can be used in conjunction with any data compression scheme, including
//! ones that employ dictionary-based compression [C-PACK]". This module
//! provides that option: a faithful C-PACK codec over 32-bit words with a
//! 16-entry FIFO dictionary and the original pattern set:
//!
//! | code   | pattern                          | bits |
//! |--------|----------------------------------|------|
//! | `00`   | zero word                        | 2    |
//! | `01`   | uncompressed word                | 34   |
//! | `10`   | full dictionary match            | 6    |
//! | `1100` | match except the low byte        | 16   |
//! | `1101` | only the low byte is non-zero    | 12   |
//! | `1110` | match except the low two bytes   | 24   |
//!
//! Words that are not zero and not full matches are pushed into the FIFO
//! dictionary, so later words can match earlier ones — the cross-word
//! redundancy FPC and BDI cannot see.

use crate::bits::{BitReader, BitWriter};
use crate::{words_of_line, LineData, LINE_BYTES};

const DICT_WORDS: usize = 16;

const C_ZERO: u32 = 0b00;
const C_RAW: u32 = 0b01;
const C_FULL_MATCH: u32 = 0b10;
const C_MATCH_HI3: u32 = 0b1100;
const C_LOW_BYTE: u32 = 0b1101;
const C_MATCH_HI2: u32 = 0b1110;

/// FIFO dictionary shared by the encoder and decoder.
#[derive(Debug, Clone, Default)]
struct Dict {
    entries: Vec<u32>,
    next: usize,
}

impl Dict {
    fn push(&mut self, word: u32) {
        if self.entries.len() < DICT_WORDS {
            self.entries.push(word);
        } else {
            self.entries[self.next] = word;
            self.next = (self.next + 1) % DICT_WORDS;
        }
    }

    fn find_full(&self, word: u32) -> Option<usize> {
        self.entries.iter().position(|&e| e == word)
    }

    fn find_hi3(&self, word: u32) -> Option<usize> {
        self.entries.iter().position(|&e| e >> 8 == word >> 8)
    }

    fn find_hi2(&self, word: u32) -> Option<usize> {
        self.entries.iter().position(|&e| e >> 16 == word >> 16)
    }

    fn get(&self, idx: usize) -> u32 {
        self.entries[idx]
    }
}

/// A C-PACK-compressed 64-byte line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CpackLine {
    bytes: Vec<u8>,
}

impl CpackLine {
    /// Compresses `line`. Like FPC, the worst case (all raw words) exceeds
    /// the raw line; callers fall back to uncompressed storage above
    /// [`LINE_BYTES`](crate::LINE_BYTES).
    #[must_use]
    pub fn compress(line: &LineData) -> Self {
        let mut dict = Dict::default();
        let mut w = BitWriter::new();
        for word in words_of_line(line) {
            if word == 0 {
                w.write(C_ZERO, 2);
            } else if let Some(i) = dict.find_full(word) {
                w.write(C_FULL_MATCH, 2);
                w.write(i as u32, 4);
            } else if word & !0xff == 0 {
                w.write(C_LOW_BYTE, 4);
                w.write(word, 8);
            } else if let Some(i) = dict.find_hi3(word) {
                w.write(C_MATCH_HI3, 4);
                w.write(i as u32, 4);
                w.write(word & 0xff, 8);
                dict.push(word);
            } else if let Some(i) = dict.find_hi2(word) {
                w.write(C_MATCH_HI2, 4);
                w.write(i as u32, 4);
                w.write(word & 0xffff, 16);
                dict.push(word);
            } else {
                w.write(C_RAW, 2);
                w.write(word, 32);
                dict.push(word);
            }
        }
        Self {
            bytes: w.into_bytes(),
        }
    }

    /// Compressed size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Reconstructs the original line.
    #[must_use]
    pub fn decompress(&self) -> LineData {
        let mut dict = Dict::default();
        let mut r = BitReader::new(&self.bytes);
        let mut words = [0u32; 16];
        for word in &mut words {
            let hi = r.read(2);
            *word = match hi {
                x if x == C_ZERO => 0,
                x if x == C_RAW => {
                    let v = r.read(32);
                    dict.push(v);
                    v
                }
                x if x == C_FULL_MATCH => {
                    let i = r.read(4) as usize;
                    dict.get(i)
                }
                _ => {
                    // Extended 4-bit code: read the low half.
                    let code = (hi << 2) | r.read(2);
                    match code {
                        x if x == C_LOW_BYTE => r.read(8),
                        x if x == C_MATCH_HI3 => {
                            let i = r.read(4) as usize;
                            let b = r.read(8);
                            let v = (dict.get(i) & !0xff) | b;
                            dict.push(v);
                            v
                        }
                        x if x == C_MATCH_HI2 => {
                            let i = r.read(4) as usize;
                            let h = r.read(16);
                            let v = (dict.get(i) & !0xffff) | h;
                            dict.push(v);
                            v
                        }
                        other => unreachable!("invalid C-PACK code {other:04b}"),
                    }
                }
            };
        }
        let mut out = [0u8; LINE_BYTES];
        for (chunk, w) in out.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// Convenience: the C-PACK compressed byte size of `line`.
#[must_use]
pub fn cpack_size(line: &LineData) -> usize {
    CpackLine::compress(line).size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{line_from_words, zero_line};

    fn round_trip(words: [u32; 16]) -> usize {
        let line = line_from_words(&words);
        let c = CpackLine::compress(&line);
        assert_eq!(c.decompress(), line, "round trip failed for {words:x?}");
        c.size()
    }

    #[test]
    fn zero_line_is_four_bytes() {
        // 16 × 2 bits = 32 bits.
        let line = zero_line();
        let c = CpackLine::compress(&line);
        assert_eq!(c.size(), 4);
        assert_eq!(c.decompress(), line);
    }

    #[test]
    fn repeated_words_hit_the_dictionary() {
        // First word raw (34 bits), the other 15 full matches (6 bits each):
        // 124 bits = 16 bytes.
        let size = round_trip([0xdead_beef; 16]);
        assert_eq!(size, 16);
    }

    #[test]
    fn low_byte_words_use_short_code() {
        // 16 × 12 bits = 192 bits = 24 bytes.
        let size = round_trip([0x42; 16]);
        assert_eq!(size, 24);
    }

    #[test]
    fn near_matches_share_high_bytes() {
        // Pointers into one region: word i = base | i → raw + hi3 matches.
        let words: [u32; 16] = core::array::from_fn(|i| 0x7f00_1200 + i as u32);
        let size = round_trip(words);
        // 34 + 15 × 16 = 274 bits = 35 bytes (beats FPC's raw 70 here).
        assert_eq!(size, 35);
    }

    #[test]
    fn random_words_fall_back_to_raw() {
        let words: [u32; 16] =
            core::array::from_fn(|i| (i as u32).wrapping_mul(0x9e37_79b9) ^ 0x5bd1_e995);
        let size = round_trip(words);
        assert!(size >= 64, "random data should not compress, got {size}");
    }

    #[test]
    fn mixed_content_round_trips() {
        round_trip([
            0,
            1,
            0xdead_beef,
            0xdead_beef,
            0xdead_be00,
            0x77,
            0,
            0x1234_5678,
            0x1234_0000,
            0xffff_ffff,
            0xffff_fffe,
            0,
            0x80,
            0xdead_beef,
            5,
            0,
        ]);
    }

    #[test]
    fn dictionary_wraps_after_16_inserts() {
        // 20 distinct raw words force FIFO eviction; later references to
        // early words must NOT match stale indices.
        let words: [u32; 16] = core::array::from_fn(|i| 0x0101_0000 + (i as u32) * 0x10101);
        round_trip(words);
    }

    #[test]
    fn captures_cross_word_redundancy_bdi_misses() {
        // Three far-apart values cycling with period 3: no repeated 64-bit
        // value (Rep8 fails), no shared base (BDI fails), raw words for
        // FPC — but C-PACK's dictionary catches every repetition.
        let vals = [0x4000_0001u32, 0x9000_0007, 0x6abc_0d03];
        let words: [u32; 16] = core::array::from_fn(|i| vals[i % 3]);
        let line = line_from_words(&words);
        let cpack = cpack_size(&line);
        let hybrid = crate::compressed_size(&line);
        // 3 raw (34 bits) + 13 full matches (6 bits) = 180 bits = 23 B.
        assert_eq!(cpack, 23, "cpack should exploit repetition");
        assert!(
            cpack < hybrid,
            "cpack {cpack} should beat FPC+BDI {hybrid} here"
        );
    }
}
