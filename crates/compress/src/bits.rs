//! Minimal MSB-first bit-stream reader/writer used by the FPC codec.
//!
//! FPC is defined at bit granularity (3-bit prefixes, 4/8/16-bit payloads),
//! so the encoder needs sub-byte packing. The stream is written most
//! significant bit first within each byte, which makes hexdumps of encoded
//! lines readable left-to-right.

/// Accumulates bits into a byte buffer, MSB first.
#[derive(Debug, Default, Clone)]
pub(crate) struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits already written into the last byte of `buf`
    /// (0 means the last byte is full / the buffer is empty).
    partial: u32,
}

impl BitWriter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value` (1..=32), most significant first.
    pub(crate) fn write(&mut self, value: u32, n: u32) {
        debug_assert!((1..=32).contains(&n), "bit count {n} out of range");
        debug_assert!(n == 32 || value < (1u32 << n), "value wider than field");
        let mut remaining = n;
        while remaining > 0 {
            if self.partial == 0 {
                self.buf.push(0);
                self.partial = 8;
            }
            let take = remaining.min(self.partial);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u32 << take) - 1)) as u8;
            let last = self.buf.last_mut().expect("buffer non-empty");
            *last |= chunk << (self.partial - take);
            self.partial -= take;
            if self.partial == 0 {
                // Last byte is now full; the next write allocates a new one.
            }
            remaining -= take;
        }
    }

    /// Total number of bits written so far.
    #[cfg(test)]
    pub(crate) fn bit_len(&self) -> usize {
        if self.buf.is_empty() {
            0
        } else {
            self.buf.len() * 8 - self.partial as usize
        }
    }

    /// Finishes the stream, returning the packed bytes (last byte
    /// zero-padded).
    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits back out of a buffer produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub(crate) struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit index to read (0 = MSB of byte 0).
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads `n` bits (1..=32), MSB first.
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted — the codecs always know exactly how
    /// many bits they wrote, so running out indicates a corrupted encoding.
    pub(crate) fn read(&mut self, n: u32) -> u32 {
        debug_assert!((1..=32).contains(&n));
        let mut out: u32 = 0;
        for _ in 0..n {
            let byte = self.buf[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | u32::from(bit);
            self.pos += 1;
        }
        out
    }

    /// Number of bits consumed so far.
    #[cfg(test)]
    pub(crate) fn bits_read(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_round_trip() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0b01, 2);
        w.write(0b110, 3);
        assert_eq!(w.bit_len(), 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1010_1110]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(2), 0b01);
        assert_eq!(r.read(3), 0b110);
        assert_eq!(r.bits_read(), 8);
    }

    #[test]
    fn cross_byte_fields() {
        let mut w = BitWriter::new();
        w.write(0x3, 3); // 011
        w.write(0xabcd, 16);
        w.write(0x1f, 5);
        let total = w.bit_len();
        assert_eq!(total, 24);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 0x3);
        assert_eq!(r.read(16), 0xabcd);
        assert_eq!(r.read(5), 0x1f);
    }

    #[test]
    fn thirty_two_bit_field() {
        let mut w = BitWriter::new();
        w.write(0xdead_beef, 32);
        w.write(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(32), 0xdead_beef);
        assert_eq!(r.read(1), 1);
    }

    #[test]
    fn empty_writer_is_empty() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn padding_is_zero() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }
}
