//! Low-latency cache-line compression for the DICE DRAM-cache reproduction.
//!
//! DICE (ISCA 2017) compresses 64-byte cache lines with a hybrid of two
//! classic low-latency schemes and picks whichever yields the smaller
//! encoding:
//!
//! * [Frequent Pattern Compression (FPC)](fpc) — per-32-bit-word pattern
//!   encoding (zero runs, sign-extended narrow values, repeated bytes, …).
//! * [Base-Delta-Immediate (BDI)](bdi) — a line is a base value plus small
//!   per-element deltas.
//!
//! The crate provides bit-exact compression *and* decompression (round-trip
//! tested), because the simulated DRAM cache stores and later reconstructs
//! real line contents. It also implements the *paired* compression used by
//! DICE's Bandwidth-Aware Indexing, where two spatially adjacent lines are
//! compressed together and may share one BDI base (this is why the paper's
//! 36 B insertion threshold works: a 36 B `B4D2` single line pairs into 68 B
//! when the 4 B base is shared, which fits one 72 B Alloy TAD with a shared
//! tag).
//!
//! # Example
//!
//! ```
//! use dice_compress::{compress, decompress, LineData, LINE_BYTES};
//!
//! // A line of small 32-bit integers compresses well.
//! let mut line: LineData = [0u8; LINE_BYTES];
//! for (i, w) in line.chunks_exact_mut(4).enumerate() {
//!     w.copy_from_slice(&(i as u32 + 1000).to_le_bytes());
//! }
//! let c = compress(&line);
//! assert!(c.size() < LINE_BYTES);
//! assert_eq!(decompress(&c), line);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdi;
mod bits;
pub mod cpack;
pub mod fpc;
mod hybrid;
mod pair;

pub use bdi::{BdiEncoding, BdiLine};
pub use cpack::CpackLine;
pub use fpc::FpcLine;
pub use hybrid::{compress, compressed_size, decompress, Algorithm, Compressed};
pub use pair::{compress_pair, pair_compressed_size, PairCompressed, PairMode};

/// Size of one cache line in bytes. Every level of the simulated hierarchy
/// uses 64 B lines, as in the paper's configuration (Table 2).
pub const LINE_BYTES: usize = 64;

/// Raw contents of one 64-byte cache line.
pub type LineData = [u8; LINE_BYTES];

/// Returns a line whose bytes are all zero.
///
/// Zero lines are the most compressible input (FPC encodes them as two zero
/// runs; the hybrid compressor special-cases them to a 1-byte encoding).
#[must_use]
pub fn zero_line() -> LineData {
    [0u8; LINE_BYTES]
}

/// Builds a line from sixteen little-endian 32-bit words.
///
/// Convenience used pervasively by tests and by the synthetic workload
/// generators, which think in terms of 32-bit program values.
#[must_use]
pub fn line_from_words(words: &[u32; 16]) -> LineData {
    let mut out = [0u8; LINE_BYTES];
    for (chunk, w) in out.chunks_exact_mut(4).zip(words.iter()) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Splits a line into sixteen little-endian 32-bit words.
#[must_use]
pub fn words_of_line(line: &LineData) -> [u32; 16] {
    let mut out = [0u32; 16];
    for (w, chunk) in out.iter_mut().zip(line.chunks_exact(4)) {
        *w = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let words = [0xdead_beefu32; 16];
        assert_eq!(words_of_line(&line_from_words(&words)), words);
    }

    #[test]
    fn zero_line_is_all_zero() {
        assert!(zero_line().iter().all(|&b| b == 0));
    }
}
