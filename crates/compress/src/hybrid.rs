//! Hybrid FPC+BDI compressor — the scheme DICE evaluates (§4.2).
//!
//! Each line is compressed with both FPC and BDI and the smaller encoding
//! wins; if neither beats the raw 64 bytes, the line is stored uncompressed.
//! Which algorithm (and which BDI encoding) was used is recorded in the
//! per-line metadata bits of the DRAM-cache set format — the paper allots up
//! to 9 bits for this, which [`Algorithm::metadata_bits`] stays within.

use crate::bdi::{BdiEncoding, BdiLine};
use crate::fpc::FpcLine;
use crate::{LineData, LINE_BYTES};

/// Which algorithm encoded a [`Compressed`] line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Stored uncompressed (64 B).
    Raw,
    /// Frequent Pattern Compression bit-stream.
    Fpc,
    /// Base-Delta-Immediate with the given encoding.
    Bdi(BdiEncoding),
}

impl Algorithm {
    /// Number of metadata bits needed to describe this encoding in the DRAM
    /// cache's per-line tag: 1 bit FPC/BDI selector + 3 bits BDI encoding +
    /// 1 bit raw flag = 5 bits, within the paper's 9-bit budget.
    #[must_use]
    pub fn metadata_bits(self) -> u32 {
        5
    }
}

/// A 64-byte line compressed with the best of FPC and BDI.
///
/// Create with [`compress`]; recover the original bytes with [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compressed {
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    Raw(Box<LineData>),
    Fpc(FpcLine),
    Bdi(BdiLine),
}

impl Compressed {
    /// The winning algorithm.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        match &self.repr {
            Repr::Raw(_) => Algorithm::Raw,
            Repr::Fpc(_) => Algorithm::Fpc,
            Repr::Bdi(b) => Algorithm::Bdi(b.encoding()),
        }
    }

    /// Compressed data size in bytes (64 when stored raw).
    ///
    /// This is the size the DRAM-cache set format charges against the 72 B
    /// TAD payload; tag bytes are accounted separately by the set format.
    #[must_use]
    pub fn size(&self) -> usize {
        match &self.repr {
            Repr::Raw(_) => LINE_BYTES,
            Repr::Fpc(f) => f.size(),
            Repr::Bdi(b) => b.size(),
        }
    }

    /// Access the BDI representation, if BDI won — used by paired
    /// compression to attempt base sharing.
    #[must_use]
    pub fn as_bdi(&self) -> Option<&BdiLine> {
        match &self.repr {
            Repr::Bdi(b) => Some(b),
            _ => None,
        }
    }
}

/// Compresses `line` with the better of FPC and BDI (raw if neither helps).
#[must_use]
pub fn compress(line: &LineData) -> Compressed {
    let fpc = FpcLine::compress(line);
    let bdi = BdiLine::compress(line);
    let fpc_size = fpc.size();
    let bdi_size = bdi.as_ref().map_or(usize::MAX, BdiLine::size);
    let best = fpc_size.min(bdi_size);
    let repr = if best >= LINE_BYTES {
        Repr::Raw(Box::new(*line))
    } else if bdi_size <= fpc_size {
        Repr::Bdi(bdi.expect("bdi_size finite implies Some"))
    } else {
        Repr::Fpc(fpc)
    };
    Compressed { repr }
}

/// Reconstructs the original line from a [`Compressed`] value.
#[must_use]
pub fn decompress(c: &Compressed) -> LineData {
    match &c.repr {
        Repr::Raw(l) => **l,
        Repr::Fpc(f) => f.decompress(),
        Repr::Bdi(b) => b.decompress(),
    }
}

/// The hybrid compressed size of `line` in bytes, computed without building
/// a [`Compressed`] value (no `Vec<u8>` payloads, no heap traffic).
///
/// This is what the simulator's hot path calls when only the size matters
/// (e.g. the DICE 36 B insertion decision, set occupancy accounting). The
/// contract is exact equality with `compress(line).size()`: the size-only
/// FPC and BDI kernels replicate the materializing selection logic, and the
/// raw fallback caps the result at [`LINE_BYTES`] just as [`compress`]
/// stores the line uncompressed when neither codec helps.
#[must_use]
pub fn compressed_size(line: &LineData) -> usize {
    let fpc = crate::fpc::fpc_size(line);
    let bdi = crate::bdi::bdi_size(line).unwrap_or(usize::MAX);
    fpc.min(bdi).min(LINE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{line_from_words, zero_line};

    #[test]
    fn zero_line_takes_bdi_zeros() {
        let c = compress(&zero_line());
        assert_eq!(c.algorithm(), Algorithm::Bdi(BdiEncoding::Zeros));
        assert_eq!(c.size(), 1);
        assert_eq!(decompress(&c), zero_line());
    }

    #[test]
    fn small_ints_prefer_fpc_over_bdi() {
        // Sixteen tiny values with a period-3 pattern (so no 64-bit value
        // repeats): FPC = 14 B beats BDI B4D1 = 20 B.
        let words: [u32; 16] = core::array::from_fn(|i| [3u32, 5, 7][i % 3]);
        let line = line_from_words(&words);
        let c = compress(&line);
        assert_eq!(c.algorithm(), Algorithm::Fpc);
        assert_eq!(c.size(), 14);
        assert_eq!(decompress(&c), line);
    }

    #[test]
    fn repeated_u64_prefers_bdi_rep8() {
        // A repeated 64-bit value: BDI Rep8 (8 B) beats FPC (14 B).
        let line = line_from_words(&[3u32; 16]);
        let c = compress(&line);
        assert_eq!(c.algorithm(), Algorithm::Bdi(BdiEncoding::Rep8));
        assert_eq!(c.size(), 8);
        assert_eq!(decompress(&c), line);
    }

    #[test]
    fn clustered_values_prefer_bdi() {
        // Large values close together: FPC emits raw words, BDI wins.
        let words: [u32; 16] = core::array::from_fn(|i| 0x1234_5678 + i as u32);
        let line = line_from_words(&words);
        let c = compress(&line);
        assert_eq!(c.algorithm(), Algorithm::Bdi(BdiEncoding::B4D1));
        assert_eq!(c.size(), 20);
        assert_eq!(decompress(&c), line);
    }

    #[test]
    fn incompressible_line_stored_raw() {
        let mut line = zero_line();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for chunk in line.chunks_exact_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let c = compress(&line);
        assert_eq!(c.algorithm(), Algorithm::Raw);
        assert_eq!(c.size(), LINE_BYTES);
        assert_eq!(decompress(&c), line);
    }

    #[test]
    fn size_never_exceeds_line_bytes() {
        // Even for the FPC worst case (70 B), the hybrid caps at 64 B raw.
        let line = line_from_words(&[0x1357_9bdf; 16]);
        assert!(compress(&line).size() <= LINE_BYTES);
    }

    #[test]
    fn size_kernel_matches_materialized() {
        let mut lines: Vec<crate::LineData> = vec![zero_line()];
        lines.push(line_from_words(&core::array::from_fn(|i| {
            [3u32, 5, 7][i % 3]
        })));
        lines.push(line_from_words(&[3u32; 16]));
        lines.push(line_from_words(&core::array::from_fn(|i| {
            0x1234_5678 + i as u32
        })));
        lines.push(line_from_words(&[0x1357_9bdf; 16]));
        let mut noise = zero_line();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for chunk in noise.chunks_exact_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        lines.push(noise);
        for line in lines {
            assert_eq!(compressed_size(&line), compress(&line).size());
        }
    }

    #[test]
    fn metadata_fits_paper_budget() {
        assert!(Algorithm::Raw.metadata_bits() <= 9);
        assert!(Algorithm::Fpc.metadata_bits() <= 9);
        assert!(Algorithm::Bdi(BdiEncoding::B4D2).metadata_bits() <= 9);
    }
}
