//! Paired compression of two spatially adjacent lines (§4.2, §6.2).
//!
//! When DICE's Bandwidth-Aware Indexing places lines `2k` and `2k+1` in the
//! same set, the pair can be compressed *together*: the two encodings are
//! stored back-to-back, and if both lines are BDI-compressible against the
//! same base, the base is stored once ("we share tags and bases", §4.2).
//! Base sharing is what lets two 36 B `B4D2` lines fit one TAD:
//! 4 B base + 32 B deltas + 32 B deltas = 68 B ≤ 72 B − 4 B shared tag.

use crate::bdi::{fits_with_base, BdiEncoding, BdiLine};
use crate::hybrid::{compress, decompress, Compressed};
use crate::LineData;

/// How a pair of adjacent lines was jointly encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairMode {
    /// Independent encodings stored back-to-back (no sharing).
    Concat,
    /// Both lines use the same BDI encoding and share one base value.
    SharedBase(BdiEncoding),
}

/// Two adjacent lines compressed together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCompressed {
    mode: PairMode,
    first: Pair1,
    second: Pair1,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Pair1 {
    Hybrid(Compressed),
    SharedBdi(BdiLine),
}

impl PairCompressed {
    /// The joint encoding mode.
    #[must_use]
    pub fn mode(&self) -> PairMode {
        self.mode
    }

    /// Total data bytes for both lines (tags excluded — the set format
    /// accounts one shared 4 B tag for the pair).
    #[must_use]
    pub fn total_size(&self) -> usize {
        match self.mode {
            PairMode::Concat => self.one_size(&self.first) + self.one_size(&self.second),
            PairMode::SharedBase(enc) => enc.size() + enc.deltas_only_size(),
        }
    }

    fn one_size(&self, p: &Pair1) -> usize {
        match p {
            Pair1::Hybrid(c) => c.size(),
            Pair1::SharedBdi(b) => b.size(),
        }
    }

    /// Reconstructs both original lines (first, second).
    #[must_use]
    pub fn decompress(&self) -> (LineData, LineData) {
        let d = |p: &Pair1| match p {
            Pair1::Hybrid(c) => decompress(c),
            Pair1::SharedBdi(b) => b.decompress(),
        };
        (d(&self.first), d(&self.second))
    }
}

/// Compresses two adjacent lines together, choosing the smaller of
/// back-to-back hybrid encodings and a shared-base BDI encoding.
#[must_use]
pub fn compress_pair(a: &LineData, b: &LineData) -> PairCompressed {
    let ca = compress(a);
    let cb = compress(b);
    let concat_size = ca.size() + cb.size();

    // Shared base: try each base+delta encoding with line A's first element
    // as the common base (the hardware-simple choice); pick the smallest
    // joint size among the ones that fit both lines.
    let mut best: Option<(BdiEncoding, BdiLine, BdiLine)> = None;
    for enc in BdiEncoding::BASE_DELTA {
        let shared_size = enc.size() + enc.deltas_only_size();
        if shared_size >= concat_size {
            continue; // sorted by size, but shared sizes interleave; just skip
        }
        if best
            .as_ref()
            .is_some_and(|(e, _, _)| e.size() + e.deltas_only_size() <= shared_size)
        {
            continue;
        }
        let base = first_elem(a, enc.base_bytes());
        if let (Some(ea), Some(eb)) = (
            BdiLine::compress_with_base(a, enc, base),
            BdiLine::compress_with_base(b, enc, base),
        ) {
            best = Some((enc, ea, eb));
        }
    }

    match best {
        Some((enc, ea, eb)) => PairCompressed {
            mode: PairMode::SharedBase(enc),
            first: Pair1::SharedBdi(ea),
            second: Pair1::SharedBdi(eb),
        },
        None => PairCompressed {
            mode: PairMode::Concat,
            first: Pair1::Hybrid(ca),
            second: Pair1::Hybrid(cb),
        },
    }
}

/// The joint compressed size of a pair in bytes, computed without building
/// [`PairCompressed`] (or any intermediate `Vec<u8>` payloads).
///
/// This is the quantity Figure 4's "Double ≤ 68 B" metric measures: a pair
/// whose joint size is ≤ 68 B fits a 72 B TAD alongside one shared 4 B tag.
///
/// The selection loop is a size-only replica of [`compress_pair`] — same
/// candidate order, same skip rules, same shared-base fit checks — so the
/// result always equals `compress_pair(a, b).total_size()` (enforced by a
/// property test).
#[must_use]
pub fn pair_compressed_size(a: &LineData, b: &LineData) -> usize {
    let concat_size = crate::hybrid::compressed_size(a) + crate::hybrid::compressed_size(b);

    let mut best: Option<BdiEncoding> = None;
    for enc in BdiEncoding::BASE_DELTA {
        let shared_size = enc.size() + enc.deltas_only_size();
        if shared_size >= concat_size {
            continue;
        }
        if best.is_some_and(|e| e.size() + e.deltas_only_size() <= shared_size) {
            continue;
        }
        let base = first_elem(a, enc.base_bytes());
        if fits_with_base(a, enc, base) && fits_with_base(b, enc, base) {
            best = Some(enc);
        }
    }

    match best {
        Some(enc) => enc.size() + enc.deltas_only_size(),
        None => concat_size,
    }
}

fn first_elem(line: &LineData, b: usize) -> u64 {
    let mut v = 0u64;
    for k in (0..b).rev() {
        v = (v << 8) | u64::from(line[k]);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zero_line, LINE_BYTES};

    fn line_from_u32s(vals: [u32; 16]) -> LineData {
        let mut out = [0u8; LINE_BYTES];
        for (chunk, v) in out.chunks_exact_mut(4).zip(vals.iter()) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn two_b4d2_lines_share_base_to_68_bytes() {
        // The canonical DICE case: each line alone is B4D2 (36 B); together
        // with a shared base they are 4 + 32 + 32 = 68 B.
        let a = line_from_u32s(core::array::from_fn(|i| 0x0800_0000 + i as u32 * 900));
        let b = line_from_u32s(core::array::from_fn(|i| 0x0800_4000 + i as u32 * 900));
        let p = compress_pair(&a, &b);
        assert_eq!(p.mode(), PairMode::SharedBase(BdiEncoding::B4D2));
        assert_eq!(p.total_size(), 68);
        let (da, db) = p.decompress();
        assert_eq!(da, a);
        assert_eq!(db, b);
    }

    #[test]
    fn unrelated_lines_concatenate() {
        let a = line_from_u32s([7u32; 16]);
        let mut b = zero_line();
        let mut x = 0x0123_4567_89ab_cdefu64;
        for chunk in b.chunks_exact_mut(8) {
            x = x.rotate_left(17).wrapping_mul(0x2545_f491_4f6c_dd1d);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let p = compress_pair(&a, &b);
        assert_eq!(p.mode(), PairMode::Concat);
        let (da, db) = p.decompress();
        assert_eq!(da, a);
        assert_eq!(db, b);
        // No sharing possible: the joint size is the sum of the parts.
        let independent = crate::compressed_size(&a) + crate::compressed_size(&b);
        assert_eq!(p.total_size(), independent);
    }

    #[test]
    fn zero_pair_is_tiny() {
        let p = compress_pair(&zero_line(), &zero_line());
        assert!(
            p.total_size() <= 2,
            "two zero lines should be ~2 bytes, got {}",
            p.total_size()
        );
    }

    #[test]
    fn shared_base_only_when_smaller() {
        // Both lines tiny constants: hybrid concat (1 B + 1 B via Zeros /
        // small FPC) must beat any shared-base encoding.
        let a = zero_line();
        let b = line_from_u32s([1u32; 16]);
        let p = compress_pair(&a, &b);
        let independent = crate::compressed_size(&a) + crate::compressed_size(&b);
        assert!(p.total_size() <= independent);
    }

    #[test]
    fn pair_size_never_exceeds_two_raw_lines() {
        let mut worst = zero_line();
        let mut x = 0x6a09_e667_f3bc_c908u64;
        for chunk in worst.chunks_exact_mut(8) {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            chunk.copy_from_slice(&x.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes());
        }
        assert!(pair_compressed_size(&worst, &worst) <= 2 * LINE_BYTES);
    }

    #[test]
    fn pair_size_kernel_matches_materialized() {
        let shared_a: LineData =
            line_from_u32s(core::array::from_fn(|i| 0x0800_0000 + i as u32 * 900));
        let shared_b: LineData =
            line_from_u32s(core::array::from_fn(|i| 0x0800_4000 + i as u32 * 900));
        let mut noise = zero_line();
        let mut x = 0x0123_4567_89ab_cdefu64;
        for chunk in noise.chunks_exact_mut(8) {
            x = x.rotate_left(17).wrapping_mul(0x2545_f491_4f6c_dd1d);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let cases = [
            (shared_a, shared_b),
            (zero_line(), zero_line()),
            (line_from_u32s([7u32; 16]), noise),
            (noise, noise),
            (zero_line(), line_from_u32s([1u32; 16])),
        ];
        for (a, b) in cases {
            assert_eq!(
                pair_compressed_size(&a, &b),
                compress_pair(&a, &b).total_size()
            );
        }
    }

    #[test]
    fn pointer_pages_pair_well() {
        // Adjacent lines of pointers into one heap arena share an 8-byte
        // base: each line alone needs B8D2 (24 B); shared, the pair is
        // 24 + 16 = 40 B instead of 48 B.
        let mut a = zero_line();
        let mut b = zero_line();
        let heap = 0x7f00_0000_0000u64;
        for (i, chunk) in a.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(heap + i as u64 * 300).to_le_bytes());
        }
        for (i, chunk) in b.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(heap + 2400 + i as u64 * 300).to_le_bytes());
        }
        let p = compress_pair(&a, &b);
        assert_eq!(p.mode(), PairMode::SharedBase(BdiEncoding::B8D2));
        assert_eq!(p.total_size(), 40);
        let (da, db) = p.decompress();
        assert_eq!((da, db), (a, b));
    }
}
