//! Property-based tests for the compression codecs.
//!
//! The central invariants: every codec round-trips bit-exactly on arbitrary
//! line contents, and reported sizes respect the bounds the DRAM-cache set
//! format relies on.

use dice_compress::{
    bdi::{bdi_size, BdiLine},
    compress, compress_pair, compressed_size,
    cpack::CpackLine,
    decompress,
    fpc::{fpc_size, FpcLine},
    pair_compressed_size, LineData, LINE_BYTES,
};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = LineData> {
    proptest::array::uniform32(any::<u8>()).prop_flat_map(|lo| {
        proptest::array::uniform32(any::<u8>()).prop_map(move |hi| {
            let mut line = [0u8; LINE_BYTES];
            line[..32].copy_from_slice(&lo);
            line[32..].copy_from_slice(&hi);
            line
        })
    })
}

/// Lines biased toward compressible content: small words, strided values,
/// repeats — the patterns the workload generators emit.
fn arb_structured_line() -> impl Strategy<Value = LineData> {
    (any::<u32>(), 0u32..2048, any::<u8>()).prop_map(|(base, stride, kind)| {
        let mut line = [0u8; LINE_BYTES];
        match kind % 4 {
            0 => {
                for (i, chunk) in line.chunks_exact_mut(4).enumerate() {
                    chunk.copy_from_slice(&base.wrapping_add(i as u32 * stride).to_le_bytes());
                }
            }
            1 => {
                for chunk in line.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&(u64::from(base) << 16).to_le_bytes());
                }
            }
            2 => {
                for (i, chunk) in line.chunks_exact_mut(4).enumerate() {
                    let v = (stride.wrapping_mul(i as u32)) & 0xff;
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            _ => {} // zero line
        }
        line
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fpc_round_trips(line in arb_line()) {
        let c = FpcLine::compress(&line);
        prop_assert_eq!(c.decompress(), line);
    }

    #[test]
    fn fpc_round_trips_structured(line in arb_structured_line()) {
        let c = FpcLine::compress(&line);
        prop_assert_eq!(c.decompress(), line);
    }

    #[test]
    fn cpack_round_trips(line in arb_line()) {
        let c = CpackLine::compress(&line);
        prop_assert_eq!(c.decompress(), line);
    }

    #[test]
    fn cpack_round_trips_structured(line in arb_structured_line()) {
        let c = CpackLine::compress(&line);
        prop_assert_eq!(c.decompress(), line);
        prop_assert!(c.size() >= 4);
    }

    #[test]
    fn bdi_round_trips_when_applicable(line in arb_structured_line()) {
        if let Some(c) = BdiLine::compress(&line) {
            prop_assert_eq!(c.decompress(), line);
            prop_assert!(c.size() < LINE_BYTES);
        }
    }

    #[test]
    fn hybrid_round_trips(line in arb_line()) {
        let c = compress(&line);
        prop_assert_eq!(decompress(&c), line);
        prop_assert!(c.size() <= LINE_BYTES);
        prop_assert!(c.size() >= 1);
    }

    #[test]
    fn hybrid_round_trips_structured(line in arb_structured_line()) {
        let c = compress(&line);
        prop_assert_eq!(decompress(&c), line);
    }

    #[test]
    fn hybrid_size_is_minimal_of_components(line in arb_line()) {
        let c = compress(&line);
        let fpc = FpcLine::compress(&line).size();
        let bdi = BdiLine::compress(&line).map_or(usize::MAX, |b| b.size());
        let best = fpc.min(bdi).min(LINE_BYTES);
        prop_assert_eq!(c.size(), best);
    }

    #[test]
    fn pair_round_trips(a in arb_line(), b in arb_line()) {
        let p = compress_pair(&a, &b);
        let (da, db) = p.decompress();
        prop_assert_eq!(da, a);
        prop_assert_eq!(db, b);
    }

    #[test]
    fn pair_round_trips_structured(a in arb_structured_line(), b in arb_structured_line()) {
        let p = compress_pair(&a, &b);
        let (da, db) = p.decompress();
        prop_assert_eq!(da, a);
        prop_assert_eq!(db, b);
    }

    #[test]
    fn pair_never_worse_than_concat(a in arb_line(), b in arb_line()) {
        let joint = pair_compressed_size(&a, &b);
        let independent = compressed_size(&a) + compressed_size(&b);
        prop_assert!(joint <= independent);
    }

    #[test]
    fn pair_is_order_sensitive_but_bounded(a in arb_structured_line(), b in arb_structured_line()) {
        // Base sharing uses A's base, so (a,b) and (b,a) may differ — but
        // both must stay within two raw lines.
        prop_assert!(pair_compressed_size(&a, &b) <= 2 * LINE_BYTES);
        prop_assert!(pair_compressed_size(&b, &a) <= 2 * LINE_BYTES);
    }

    // The size-only hot-path kernels must report *exactly* the sizes the
    // materializing compressors produce — the DRAM-cache capacity and
    // indexing decisions ride on them being interchangeable.

    #[test]
    fn fpc_size_kernel_matches_materialized(line in arb_line()) {
        prop_assert_eq!(fpc_size(&line), FpcLine::compress(&line).size());
    }

    #[test]
    fn fpc_size_kernel_matches_materialized_structured(line in arb_structured_line()) {
        prop_assert_eq!(fpc_size(&line), FpcLine::compress(&line).size());
    }

    #[test]
    fn bdi_size_kernel_matches_materialized(line in arb_line()) {
        prop_assert_eq!(bdi_size(&line), BdiLine::compress(&line).map(|c| c.size()));
    }

    #[test]
    fn bdi_size_kernel_matches_materialized_structured(line in arb_structured_line()) {
        prop_assert_eq!(bdi_size(&line), BdiLine::compress(&line).map(|c| c.size()));
    }

    #[test]
    fn hybrid_size_kernel_matches_materialized(line in arb_line()) {
        prop_assert_eq!(compressed_size(&line), compress(&line).size());
    }

    #[test]
    fn hybrid_size_kernel_matches_materialized_structured(line in arb_structured_line()) {
        prop_assert_eq!(compressed_size(&line), compress(&line).size());
    }

    #[test]
    fn pair_size_kernel_matches_materialized(a in arb_line(), b in arb_line()) {
        prop_assert_eq!(pair_compressed_size(&a, &b), compress_pair(&a, &b).total_size());
    }

    #[test]
    fn pair_size_kernel_matches_materialized_structured(
        a in arb_structured_line(),
        b in arb_structured_line(),
    ) {
        prop_assert_eq!(pair_compressed_size(&a, &b), compress_pair(&a, &b).total_size());
        // Mixed random/structured pairs exercise the concat fallback.
        prop_assert_eq!(pair_compressed_size(&b, &a), compress_pair(&b, &a).total_size());
    }
}
