//! Verifies the controller's steady-state hot path performs **zero heap
//! allocations** — the contract behind `InlineVec` outcomes and the
//! reusable eviction scratch buffer.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warmup phase (which grows per-set entry vectors to their steady-state
//! capacity) a measured window of reads, fills and writebacks must leave
//! the allocation counter untouched.
//!
//! This file intentionally contains a single test: a sibling test running
//! on another thread would bump the shared counter and fail the assertion
//! spuriously.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dice_core::{DramCacheConfig, DramCacheController, LineAddr, Organization, SizeInfo};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Address-dependent sizes without any heap state: mixes compressible and
/// incompressible lines so both BAI and TSI install paths run.
struct MixedSizes;

impl SizeInfo for MixedSizes {
    fn single_size(&mut self, line: LineAddr) -> u32 {
        match line % 4 {
            0 => 16,
            1 => 30,
            2 => 36,
            _ => 64,
        }
    }

    fn pair_size(&mut self, even_line: LineAddr) -> u32 {
        self.single_size(even_line) + self.single_size(even_line | 1) - 4
    }
}

/// One steady-state traffic round: misses trigger fills, periodic dirty
/// writebacks exercise the write-prediction path, and the working set
/// (4× the cache) keeps evictions continuous.
fn run_round(c: &mut DramCacheController, sizes: &mut MixedSizes, lines: u64) {
    for i in 0..lines {
        let line = (i * 7) % lines; // strided sweep touches pairs + conflicts
        let r = c.read(line);
        if !r.hit {
            c.fill(line, false, r.probes.last().map(|p| p.set), sizes);
        }
        if i.is_multiple_of(5) {
            c.writeback(line ^ 1, sizes);
        }
    }
}

#[test]
fn steady_state_access_handling_is_allocation_free() {
    let cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 1 << 14);
    let mut c = DramCacheController::new(cfg);
    let mut sizes = MixedSizes;
    let working_set = 4 * c.num_sets();

    // Warmup: grow every touched set's entry vector (and the eviction
    // scratch) to steady-state capacity. Two full rounds make the second
    // round's capacity demands a repeat of the first.
    run_round(&mut c, &mut sizes, working_set);
    run_round(&mut c, &mut sizes, working_set);

    // The counter is process-global, so the test harness's own threads can
    // sporadically allocate during a window. A hot-path allocation would
    // taint *every* window with thousands of counts; harness noise is rare
    // and small, so requiring one clean window out of several is exact.
    let mut leaks = Vec::new();
    for _ in 0..5 {
        let before = allocations();
        run_round(&mut c, &mut sizes, working_set);
        let after = allocations();
        if after == before {
            return;
        }
        leaks.push(after - before);
    }
    panic!("steady-state reads/fills/writebacks allocated in every measured window: {leaks:?}");
}
