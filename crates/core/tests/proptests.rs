//! Property-based tests for the DRAM-cache core: indexing algebra, set
//! format accounting, and controller state invariants under arbitrary
//! operation sequences.

use dice_core::{
    CompressedSet, DramCacheConfig, DramCacheController, Evicted, IndexScheme, Indexer, InlineVec,
    Organization, SetMode, SizeInfo, TagVariant, MAX_LINES_PER_SET, SET_BYTES, TAG_BYTES,
};
use proptest::prelude::*;

/// A deterministic, address-derived size oracle (sizes in 1..=64).
struct HashSizes;

impl SizeInfo for HashSizes {
    fn single_size(&mut self, line: u64) -> u32 {
        let h = line.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
        1 + (h % 64) as u32
    }
    fn pair_size(&mut self, even: u64) -> u32 {
        let a = self.single_size(even & !1);
        let b = self.single_size(even | 1);
        // Shared base saves up to 4 bytes, never negative.
        (a + b).saturating_sub((even >> 3) as u32 % 5).max(2)
    }
}

fn arb_sets() -> impl Strategy<Value = u64> {
    (2u32..16).prop_map(|k| 1u64 << k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bai_pairs_and_stays_adjacent(sets in arb_sets(), line in any::<u64>()) {
        let line = line >> 1 << 1; // even
        let ix = Indexer::new(sets);
        prop_assert_eq!(ix.bai(line), ix.bai(line + 1));
        prop_assert_eq!(ix.tsi(line) & !1, ix.bai(line) & !1);
        prop_assert!(ix.tsi(line).abs_diff(ix.bai(line)) <= 1);
    }

    #[test]
    fn exactly_one_pair_member_is_invariant(sets in arb_sets(), pair in any::<u32>()) {
        let ix = Indexer::new(sets);
        let a = u64::from(pair) * 2;
        let kept = u32::from(ix.invariant(a)) + u32::from(ix.invariant(a + 1));
        prop_assert_eq!(kept, 1);
    }

    #[test]
    fn nsi_maps_pairs_together(sets in arb_sets(), line in any::<u64>()) {
        let ix = Indexer::new(sets);
        prop_assert_eq!(ix.nsi(line & !1), ix.nsi(line | 1));
        prop_assert!(ix.nsi(line) < sets);
    }

    #[test]
    fn index_dispatch_matches_named_functions(sets in arb_sets(), line in any::<u64>()) {
        let ix = Indexer::new(sets);
        prop_assert_eq!(ix.index(line, IndexScheme::Tsi), ix.tsi(line));
        prop_assert_eq!(ix.index(line, IndexScheme::Bai), ix.bai(line));
    }

    #[test]
    fn bai_is_balanced_over_aligned_windows(sets in (2u32..10).prop_map(|k| 1u64 << k)) {
        let ix = Indexer::new(sets);
        let mut counts = vec![0u32; sets as usize];
        for line in 0..(2 * sets) {
            counts[ix.bai(line) as usize] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == 2));
    }
}

/// Arbitrary operation stream for the controller.
#[derive(Debug, Clone)]
enum Op {
    Read(u16),
    Fill(u16, bool),
    Writeback(u16),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(Op::Read),
            (any::<u16>(), any::<bool>()).prop_map(|(l, d)| Op::Fill(l, d)),
            any::<u16>().prop_map(Op::Writeback),
        ],
        1..400,
    )
}

fn run_ops(org: Organization, variant: TagVariant, ops: &[Op]) -> DramCacheController {
    let mut cfg = DramCacheConfig::with_capacity(org, 256 * 64);
    cfg.tag_variant = variant;
    let mut l4 = DramCacheController::new(cfg);
    let mut sizes = HashSizes;
    for op in ops {
        match *op {
            Op::Read(l) => {
                let _ = l4.read(u64::from(l));
            }
            Op::Fill(l, d) => {
                let _ = l4.fill(u64::from(l), d, None, &mut sizes);
            }
            Op::Writeback(l) => {
                let _ = l4.writeback(u64::from(l), &mut sizes);
            }
        }
    }
    l4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn controller_state_invariants_hold(ops in arb_ops()) {
        for org in [
            Organization::UncompressedAlloy,
            Organization::CompressedTsi,
            Organization::CompressedNsi,
            Organization::CompressedBai,
            Organization::Dice { threshold: 36 },
            Organization::Scc,
        ] {
            let l4 = run_ops(org, TagVariant::Alloy, &ops);
            let s = l4.stats();
            prop_assert!(s.read_hits <= s.reads);
            prop_assert!(s.wpred_correct <= s.wpred_scored);
            prop_assert!(l4.valid_lines() <= l4.num_sets() * MAX_LINES_PER_SET as u64);
            prop_assert!(l4.occupied_sets() <= l4.num_sets());
            prop_assert!(l4.valid_lines() >= l4.occupied_sets());
            if org == Organization::UncompressedAlloy {
                prop_assert!(l4.valid_lines() <= l4.num_sets());
            }
            prop_assert!(l4.cip_accuracy() >= 0.0 && l4.cip_accuracy() <= 1.0);
        }
    }

    #[test]
    fn fill_then_read_always_hits(ops in arb_ops(), line in any::<u16>()) {
        // Whatever happened before, a fill immediately followed by a read of
        // the same line must hit (nothing evicts between the two).
        for org in [Organization::CompressedTsi, Organization::Dice { threshold: 36 }] {
            let mut l4 = run_ops(org, TagVariant::Alloy, &ops);
            let mut sizes = HashSizes;
            l4.fill(u64::from(line), false, None, &mut sizes);
            prop_assert!(l4.read(u64::from(line)).hit, "{org:?} lost a just-filled line");
        }
    }

    #[test]
    fn knl_and_alloy_agree_on_contents(ops in arb_ops()) {
        // The tag variant changes probe counts, never hit/miss outcomes.
        let ops_reads: Vec<u16> = (0..64).collect();
        let a = run_ops(Organization::Dice { threshold: 36 }, TagVariant::Alloy, &ops);
        let k = run_ops(Organization::Dice { threshold: 36 }, TagVariant::Knl, &ops);
        let mut a = a;
        let mut k = k;
        for l in ops_reads {
            prop_assert_eq!(a.read(u64::from(l)).hit, k.read(u64::from(l)).hit);
        }
    }

    #[test]
    fn probes_stay_within_bounds(ops in arb_ops()) {
        let mut cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 256 * 64);
        cfg.tag_variant = TagVariant::Knl;
        let mut l4 = DramCacheController::new(cfg);
        let mut sizes = HashSizes;
        for op in &ops {
            let n = match *op {
                Op::Read(l) => l4.read(u64::from(l)).probes.len(),
                Op::Fill(l, d) => l4.fill(u64::from(l), d, None, &mut sizes).probes.len(),
                Op::Writeback(l) => l4.writeback(u64::from(l), &mut sizes).probes.len(),
            };
            prop_assert!((1..=4).contains(&n), "probe count {n} out of range");
        }
    }

    #[test]
    fn format_constants_are_consistent(_x in 0u8..1) {
        prop_assert!(TAG_BYTES * MAX_LINES_PER_SET as u32 >= SET_BYTES,
            "28 lines only fit via tag sharing — the cap must exceed the byte budget");
    }

    #[test]
    fn insert_into_with_reused_scratch_matches_fresh_insert(
        inserts in proptest::collection::vec((any::<u8>(), any::<bool>(), any::<bool>()), 1..120),
    ) {
        // The allocation-free path (`insert_into` + one reused buffer) must
        // be observationally identical to the allocating `insert` wrapper:
        // same evictions in the same order, same resulting set contents.
        let mut fresh = CompressedSet::default();
        let mut reused = CompressedSet::default();
        let mut scratch: Vec<Evicted> = Vec::new();
        let mut sizes_a = HashSizes;
        let mut sizes_b = HashSizes;
        for (stamp, &(line, dirty, bai)) in inserts.iter().enumerate() {
            let scheme = if bai { IndexScheme::Bai } else { IndexScheme::Tsi };
            let ev = fresh.insert(
                u64::from(line),
                dirty,
                scheme,
                stamp as u64,
                SetMode::Compressed,
                &mut sizes_a,
            );
            reused.insert_into(
                u64::from(line),
                dirty,
                scheme,
                stamp as u64,
                SetMode::Compressed,
                &mut sizes_b,
                &mut scratch,
            );
            prop_assert_eq!(&ev, &scratch, "evictions diverged at stamp {}", stamp);
            prop_assert_eq!(fresh.entries(), reused.entries());
        }
    }

    #[test]
    fn controller_outcomes_are_reproducible(ops in arb_ops()) {
        // Two fresh controllers fed the same sequence must report identical
        // outcome *contents* (probes, free lines, writebacks) — the inline
        // buffers carry exactly what the Vec-returning outcomes carried.
        for org in [Organization::Dice { threshold: 36 }, Organization::CompressedBai] {
            let cfg = DramCacheConfig::with_capacity(org, 256 * 64);
            let mut a = DramCacheController::new(cfg);
            let mut b = DramCacheController::new(cfg);
            let mut sizes_a = HashSizes;
            let mut sizes_b = HashSizes;
            for op in &ops {
                match *op {
                    Op::Read(l) => {
                        let (ra, rb) = (a.read(u64::from(l)), b.read(u64::from(l)));
                        prop_assert_eq!(&ra, &rb);
                        prop_assert!(ra.probes.len() <= 4, "probe list spilled its bound");
                    }
                    Op::Fill(l, d) => {
                        let wa = a.fill(u64::from(l), d, None, &mut sizes_a);
                        let wb = b.fill(u64::from(l), d, None, &mut sizes_b);
                        prop_assert_eq!(&wa, &wb);
                        prop_assert!(wa.memory_writebacks.len() <= MAX_LINES_PER_SET);
                    }
                    Op::Writeback(l) => {
                        let wa = a.writeback(u64::from(l), &mut sizes_a);
                        let wb = b.writeback(u64::from(l), &mut sizes_b);
                        prop_assert_eq!(&wa, &wb);
                    }
                }
            }
        }
    }

    #[test]
    fn cip_confusion(ops in arb_ops()) {
        // The decision-diagnostics confusion matrices must stay consistent
        // with the controller's independent counters on arbitrary traces:
        //  * fill-matrix row sums == total CIP-consulted fills (DICE fills
        //    of non-invariant lines), recounted here via the indexing
        //    algebra without touching the diagnostics;
        //  * read-matrix total == the CIP's scored-prediction counter and
        //    its diagonal == the CIP's predicted-correct counter.
        let ix = Indexer::new(256);
        let consulted_expected: u64 = ops
            .iter()
            .filter(|op| matches!(op, Op::Fill(l, _) if !ix.invariant(u64::from(*l))))
            .count() as u64;
        let l4 = run_ops(Organization::Dice { threshold: 36 }, TagVariant::Alloy, &ops);
        let d = l4.diagnostics();
        prop_assert_eq!(d.consulted_fills(), consulted_expected);
        prop_assert_eq!(d.read_predictions(), l4.cip_predictions());
        prop_assert_eq!(d.read_correct(), l4.cip_correct());
        prop_assert_eq!(d.read_accuracy(), l4.cip_accuracy());
        let s = l4.stats();
        prop_assert_eq!(
            d.hits_at_bai + d.hits_at_tsi + d.hits_invariant,
            s.read_hits
        );
        prop_assert_eq!(d.second_probe_reads + d.second_probe_writes, s.second_probes);
    }

    #[test]
    fn inline_vec_behaves_like_vec(
        values in proptest::collection::vec(any::<u64>(), 0..40),
        clear_at in 0u8..60,
    ) {
        // Model check: InlineVec (inline capacity 4, well below the input
        // length bound) tracks Vec through pushes, clears and iteration.
        // `clear_at` past the input length simply means no clear happens.
        let mut iv: InlineVec<u64, 4> = InlineVec::new();
        let mut model: Vec<u64> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if i == usize::from(clear_at) {
                iv.clear();
                model.clear();
            }
            iv.push(v);
            model.push(v);
            prop_assert_eq!(iv.len(), model.len());
            prop_assert_eq!(iv.as_slice(), model.as_slice());
            prop_assert_eq!(iv.last(), model.last());
        }
        prop_assert_eq!(&iv, &model);
        let roundtrip: Vec<u64> = iv.clone().into_iter().collect();
        prop_assert_eq!(&roundtrip, &model);
        let collected: InlineVec<u64, 4> = model.iter().copied().collect();
        prop_assert_eq!(collected, model);
    }
}
