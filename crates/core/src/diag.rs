//! DICE decision diagnostics: CIP confusion matrices, per-policy probe
//! attribution and bandwidth-bloat accounting.
//!
//! The paper's claims live in *decisions* — CIP predicting BAI vs TSI,
//! compressed lines fitting the 36 B threshold, mispredictions paying
//! second probes — and the flat [`L4Stats`](crate::L4Stats) counters do
//! not say *why* traffic happened. [`DecisionDiag`] attributes it:
//!
//! * **Read confusion** (`cip_read_*`): scored CIP predictions, predicted
//!   scheme × the scheme the line was actually found under. The diagonal
//!   is exactly the predictor's `correct` counter and the matrix total is
//!   exactly its `predictions` counter (property-tested).
//! * **Fill confusion** (`cip_fill_*`): at every CIP-consulted fill
//!   (DICE, non-invariant line), the LTT's prediction at that moment × the
//!   actual install decision (compressed size ≤ threshold ⇒ BAI). Row
//!   sums therefore total the CIP-consulted fills.
//! * **Hit attribution**: where demand reads resolved (BAI set, TSI set,
//!   invariant set) and how many needed a second probe, split by read and
//!   write paths.
//! * **Bandwidth bloat**: bytes moved on the stacked-DRAM bus versus the
//!   64 B payload each demand transfer actually needed, with the bloat
//!   split by cause (second probes vs read-modify-write reads; the
//!   remainder is tag/format overhead).
//!
//! The counters are plain `u64`s updated unconditionally on the
//! controller's paths — no allocation, no branches — so the
//! allocation-free hot-path guarantee holds regardless of trace level.
//! The `TraceLevel` knob gates *reporting*: a run at `TraceLevel::Off`
//! never serializes this struct, keeping its artifacts byte-identical to
//! pre-diagnostics builds.

use dice_obs::{impl_snapshot, ratio};

use crate::indexing::IndexScheme;

/// Decision-level counters for one DRAM-cache controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionDiag {
    /// Scored reads: predicted BAI, found under BAI.
    pub cip_read_bai_bai: u64,
    /// Scored reads: predicted BAI, found under TSI (second probe).
    pub cip_read_bai_tsi: u64,
    /// Scored reads: predicted TSI, found under BAI (second probe).
    pub cip_read_tsi_bai: u64,
    /// Scored reads: predicted TSI, found under TSI.
    pub cip_read_tsi_tsi: u64,
    /// CIP-consulted fills: LTT said BAI, line fit ≤ threshold (BAI).
    pub cip_fill_bai_bai: u64,
    /// CIP-consulted fills: LTT said BAI, line did not fit (TSI).
    pub cip_fill_bai_tsi: u64,
    /// CIP-consulted fills: LTT said TSI, line fit ≤ threshold (BAI).
    pub cip_fill_tsi_bai: u64,
    /// CIP-consulted fills: LTT said TSI, line did not fit (TSI).
    pub cip_fill_tsi_tsi: u64,
    /// Demand reads that hit a BAI-indexed location.
    pub hits_at_bai: u64,
    /// Demand reads that hit a TSI-indexed location.
    pub hits_at_tsi: u64,
    /// Demand reads that hit an invariant location (TSI == BAI).
    pub hits_invariant: u64,
    /// Demand reads that missed every candidate location.
    pub read_misses: u64,
    /// Second set probes paid on the read path.
    pub second_probe_reads: u64,
    /// Second set probes paid on the writeback path.
    pub second_probe_writes: u64,
    /// Total bytes moved on the stacked-DRAM bus by this controller's
    /// probes (reads, fills and writebacks).
    pub bytes_moved: u64,
    /// Bytes the demand transfers actually needed (64 per hit data
    /// delivery, install write and writeback write).
    pub bytes_needed: u64,
    /// Bloat bytes attributable to second probes (read + write paths).
    pub bloat_second_probe_bytes: u64,
    /// Bloat bytes attributable to read-modify-write reads on fills and
    /// writebacks of compressed sets.
    pub bloat_rmw_bytes: u64,
}

impl_snapshot!(DecisionDiag {
    cip_read_bai_bai: Monotonic,
    cip_read_bai_tsi: Monotonic,
    cip_read_tsi_bai: Monotonic,
    cip_read_tsi_tsi: Monotonic,
    cip_fill_bai_bai: Monotonic,
    cip_fill_bai_tsi: Monotonic,
    cip_fill_tsi_bai: Monotonic,
    cip_fill_tsi_tsi: Monotonic,
    hits_at_bai: Monotonic,
    hits_at_tsi: Monotonic,
    hits_invariant: Monotonic,
    read_misses: Monotonic,
    second_probe_reads: Monotonic,
    second_probe_writes: Monotonic,
    bytes_moved: Monotonic,
    bytes_needed: Monotonic,
    bloat_second_probe_bytes: Monotonic,
    bloat_rmw_bytes: Monotonic,
});

impl DecisionDiag {
    /// Records one scored read prediction (predicted scheme × where the
    /// line was found).
    pub(crate) fn record_read(&mut self, predicted: IndexScheme, actual: IndexScheme) {
        match (predicted, actual) {
            (IndexScheme::Bai, IndexScheme::Bai) => self.cip_read_bai_bai += 1,
            (IndexScheme::Bai, IndexScheme::Tsi) => self.cip_read_bai_tsi += 1,
            (IndexScheme::Tsi, IndexScheme::Bai) => self.cip_read_tsi_bai += 1,
            (IndexScheme::Tsi, IndexScheme::Tsi) => self.cip_read_tsi_tsi += 1,
        }
    }

    /// Records one CIP-consulted fill (LTT prediction × install decision).
    pub(crate) fn record_fill(&mut self, predicted: IndexScheme, actual: IndexScheme) {
        match (predicted, actual) {
            (IndexScheme::Bai, IndexScheme::Bai) => self.cip_fill_bai_bai += 1,
            (IndexScheme::Bai, IndexScheme::Tsi) => self.cip_fill_bai_tsi += 1,
            (IndexScheme::Tsi, IndexScheme::Bai) => self.cip_fill_tsi_bai += 1,
            (IndexScheme::Tsi, IndexScheme::Tsi) => self.cip_fill_tsi_tsi += 1,
        }
    }

    /// Attributes a resolved demand hit to its index scheme.
    pub(crate) fn record_hit(&mut self, scheme: IndexScheme) {
        match scheme {
            IndexScheme::Bai => self.hits_at_bai += 1,
            IndexScheme::Tsi => self.hits_at_tsi += 1,
        }
    }

    /// Total scored read predictions (sum of the read confusion matrix).
    #[must_use]
    pub fn read_predictions(&self) -> u64 {
        self.cip_read_bai_bai
            + self.cip_read_bai_tsi
            + self.cip_read_tsi_bai
            + self.cip_read_tsi_tsi
    }

    /// Correct scored read predictions (the read matrix diagonal).
    #[must_use]
    pub fn read_correct(&self) -> u64 {
        self.cip_read_bai_bai + self.cip_read_tsi_tsi
    }

    /// Total CIP-consulted fills (sum of the fill confusion matrix rows).
    #[must_use]
    pub fn consulted_fills(&self) -> u64 {
        self.cip_fill_bai_bai
            + self.cip_fill_bai_tsi
            + self.cip_fill_tsi_bai
            + self.cip_fill_tsi_tsi
    }

    /// Read-prediction accuracy (0.0 when idle, per the workspace-wide
    /// convention of [`dice_obs::ratio`]).
    #[must_use]
    pub fn read_accuracy(&self) -> f64 {
        ratio(self.read_correct(), self.read_predictions())
    }

    /// Fill-time agreement between the LTT and the size-based install
    /// rule (0.0 when no fills were consulted).
    #[must_use]
    pub fn fill_agreement(&self) -> f64 {
        ratio(
            self.cip_fill_bai_bai + self.cip_fill_tsi_tsi,
            self.consulted_fills(),
        )
    }

    /// Bloat bytes: moved minus needed (0 when the bus moved no more than
    /// the demand payloads).
    #[must_use]
    pub fn bloat_bytes(&self) -> u64 {
        self.bytes_moved.saturating_sub(self.bytes_needed)
    }

    /// Bloat not explained by second probes or RMW reads — the tag/format
    /// transfer overhead (80 B or 72 B bursts carrying 64 B payloads) plus
    /// miss-probe traffic that delivered no payload.
    #[must_use]
    pub fn bloat_tag_overhead_bytes(&self) -> u64 {
        self.bloat_bytes()
            .saturating_sub(self.bloat_second_probe_bytes + self.bloat_rmw_bytes)
    }

    /// Bytes-moved to bytes-needed ratio (0.0 when idle).
    #[must_use]
    pub fn bloat_factor(&self) -> f64 {
        if self.bytes_needed == 0 {
            0.0
        } else {
            self.bytes_moved as f64 / self.bytes_needed as f64
        }
    }

    /// Counter-wise difference `self - earlier`.
    #[must_use]
    pub fn delta_since(&self, earlier: &DecisionDiag) -> DecisionDiag {
        dice_obs::delta(self, earlier)
    }
}

#[cfg(test)]
mod tests {
    use dice_obs::Snapshot;

    use super::*;

    #[test]
    fn rates_when_idle() {
        // Idle convention: a denominator of zero reads as a 0.0 rate,
        // never NaN and never an optimistic 1.0.
        let d = DecisionDiag::default();
        assert_eq!(d.read_accuracy(), 0.0);
        assert_eq!(d.fill_agreement(), 0.0);
        assert_eq!(d.bloat_factor(), 0.0);
        assert_eq!(d.bloat_bytes(), 0);
        assert_eq!(d.bloat_tag_overhead_bytes(), 0);
    }

    #[test]
    fn matrices_sum_and_diagonalize() {
        let mut d = DecisionDiag::default();
        d.record_read(IndexScheme::Bai, IndexScheme::Bai);
        d.record_read(IndexScheme::Bai, IndexScheme::Tsi);
        d.record_read(IndexScheme::Tsi, IndexScheme::Tsi);
        d.record_fill(IndexScheme::Tsi, IndexScheme::Bai);
        assert_eq!(d.read_predictions(), 3);
        assert_eq!(d.read_correct(), 2);
        assert!((d.read_accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.consulted_fills(), 1);
        assert_eq!(d.fill_agreement(), 0.0);
    }

    #[test]
    fn bloat_split_accounts_residual_to_tags() {
        let d = DecisionDiag {
            bytes_moved: 1000,
            bytes_needed: 640,
            bloat_second_probe_bytes: 160,
            bloat_rmw_bytes: 80,
            ..DecisionDiag::default()
        };
        assert_eq!(d.bloat_bytes(), 360);
        assert_eq!(d.bloat_tag_overhead_bytes(), 120);
        assert!((d.bloat_factor() - 1000.0 / 640.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_fields_cover_the_struct() {
        assert_eq!(DecisionDiag::FIELDS.len(), 18);
        let mut d = DecisionDiag::default();
        for i in 0..DecisionDiag::FIELDS.len() {
            d.set_field(i, i as u64 + 1);
        }
        assert_eq!(d.delta_since(&DecisionDiag::default()), d);
    }
}
