//! Cache Index Predictor (CIP) — §5.3, Figure 9.
//!
//! Under DICE a line can live at its TSI or BAI index. Probing both on every
//! access would waste the bandwidth DICE exists to save, so reads consult a
//! *Last-Time Table* (LTT): one bit per entry recording the index scheme
//! last seen for a (hashed) page. Compressibility is strongly page-correlated
//! (LCP's observation, which §5.2 leans on), so last-time prediction reaches
//! ~94% accuracy with only 2048 entries = 256 B of SRAM.
//!
//! Writes don't use the LTT: the controller predicts from the line's own
//! compressed size — the same rule the insertion policy uses — which the
//! paper measures at ~95% accuracy.

use crate::indexing::IndexScheme;
use crate::LineAddr;

/// Lines per 4 KB page (64 B lines).
const LINES_PER_PAGE: u64 = 64;

/// History-based read-index predictor (the LTT).
#[derive(Debug, Clone)]
pub struct CachePredictor {
    /// One bit per entry: `true` = BAI, `false` = TSI.
    ltt: Vec<bool>,
    predictions: u64,
    correct: u64,
}

impl CachePredictor {
    /// Creates a predictor with `entries` LTT slots (the paper sweeps
    /// 512–8192 and defaults to 2048 = 256 B).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "LTT entries must be a power of two"
        );
        Self {
            ltt: vec![false; entries],
            predictions: 0,
            correct: 0,
        }
    }

    /// Storage cost in bytes (1 bit per entry) — the paper's <1 KB claim.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.ltt.len() / 8
    }

    fn slot(&self, line: LineAddr) -> usize {
        let page = line / LINES_PER_PAGE;
        // Fibonacci hash of the page number onto the table.
        let h = page.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (h >> (64 - self.ltt.len().trailing_zeros())) as usize
    }

    /// Predicts the index scheme for a read of `line`.
    #[must_use]
    pub fn predict(&self, line: LineAddr) -> IndexScheme {
        if self.ltt[self.slot(line)] {
            IndexScheme::Bai
        } else {
            IndexScheme::Tsi
        }
    }

    /// Records the resolved scheme for `line` and whether the earlier
    /// prediction was right (callers invoke this once per *predicted*
    /// access, i.e. only for lines whose TSI and BAI indices differ).
    pub fn update(&mut self, line: LineAddr, actual: IndexScheme) {
        let slot = self.slot(line);
        let predicted = if self.ltt[slot] {
            IndexScheme::Bai
        } else {
            IndexScheme::Tsi
        };
        self.predictions += 1;
        if predicted == actual {
            self.correct += 1;
        }
        self.ltt[slot] = actual == IndexScheme::Bai;
    }

    /// Records an install's scheme without scoring it as a prediction.
    pub fn train(&mut self, line: LineAddr, scheme: IndexScheme) {
        let slot = self.slot(line);
        self.ltt[slot] = scheme == IndexScheme::Bai;
    }

    /// Number of scored predictions.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of scored predictions that were correct.
    #[must_use]
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Fraction of scored predictions that were correct (0.0 when idle,
    /// per the workspace-wide [`dice_obs::ratio`] convention).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        dice_obs::ratio(self.correct, self.predictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_tsi() {
        let p = CachePredictor::new(2048);
        assert_eq!(p.predict(12345), IndexScheme::Tsi);
    }

    #[test]
    fn default_sizing_is_256_bytes() {
        assert_eq!(CachePredictor::new(2048).storage_bytes(), 256);
    }

    #[test]
    fn learns_page_scheme() {
        let mut p = CachePredictor::new(2048);
        let line = 64 * 7 + 3; // page 7
        p.update(line, IndexScheme::Bai);
        // Any line of the same page predicts BAI now.
        assert_eq!(p.predict(64 * 7 + 60), IndexScheme::Bai);
        // A different page is (very likely) unaffected; this specific pair
        // of pages does not collide under the hash.
        assert_eq!(p.predict(64 * 1000), IndexScheme::Tsi);
    }

    #[test]
    fn accuracy_tracks_stable_pages() {
        let mut p = CachePredictor::new(2048);
        // First access to the page mispredicts, the next 99 hit.
        for i in 0..100 {
            let line = 64 * 42 + (i % 64);
            let predicted = p.predict(line);
            p.update(line, IndexScheme::Bai);
            if i == 0 {
                assert_eq!(predicted, IndexScheme::Tsi);
            } else {
                assert_eq!(predicted, IndexScheme::Bai);
            }
        }
        assert!((p.accuracy() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn train_does_not_score() {
        let mut p = CachePredictor::new(512);
        p.train(0, IndexScheme::Bai);
        assert_eq!(p.predictions(), 0);
        assert_eq!(p.predict(0), IndexScheme::Bai);
    }

    #[test]
    fn idle_accuracy_is_zero() {
        // The workspace idle convention: no scored predictions reads as a
        // 0.0 rate, never an optimistic 1.0.
        let p = CachePredictor::new(512);
        assert_eq!(p.accuracy(), 0.0);
        assert_eq!(p.correct(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_sizes() {
        let _ = CachePredictor::new(1000);
    }
}
