//! The deterministic fault-injection matrix.
//!
//! Each [`FaultKind`] names one way the simulation stack can be corrupted
//! on demand, paired with the layer that must detect it or degrade
//! gracefully:
//!
//! | kind            | injected where                  | expected handling        |
//! |-----------------|---------------------------------|--------------------------|
//! | `TagFlip`       | resident L4 tag bit             | auditor → set refilled   |
//! | `SizeLie`       | compressed-size oracle on fills | auditor → set refilled   |
//! | `GarbledTrace`  | trace-file record               | typed parse error        |
//! | `PoisonedCache` | runner result-cache entry       | cache miss, re-simulate  |
//! | `CellPanic`     | mid-simulation panic            | isolated failed cell     |
//! | `CellTimeout`   | cell exceeds wall-clock budget  | `TimedOut`, sweep lives  |
//!
//! All injectors are pure functions of a seed, so every faulty run is
//! reproducible. The enum lives in `dice-core` so `dice-sim` can embed a
//! [`FaultPlan`] in its config (feeding the runner's cache key) while the
//! runner and CLI parse `--inject` flags against the same names.

use std::fmt;

/// One injector from the fault matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip a bit inside a resident L4 tag.
    TagFlip,
    /// Under-report compressed sizes on the fill path.
    SizeLie,
    /// Corrupt trace-file records.
    GarbledTrace,
    /// Corrupt on-disk runner cache entries.
    PoisonedCache,
    /// Panic in the middle of a simulation cell.
    CellPanic,
    /// Make a cell exceed its wall-clock budget.
    CellTimeout,
}

impl FaultKind {
    /// Every injector, in matrix order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TagFlip,
        FaultKind::SizeLie,
        FaultKind::GarbledTrace,
        FaultKind::PoisonedCache,
        FaultKind::CellPanic,
        FaultKind::CellTimeout,
    ];

    /// Stable CLI name (`tag-flip`, `size-lie`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TagFlip => "tag-flip",
            FaultKind::SizeLie => "size-lie",
            FaultKind::GarbledTrace => "garbled-trace",
            FaultKind::PoisonedCache => "poisoned-cache",
            FaultKind::CellPanic => "cell-panic",
            FaultKind::CellTimeout => "cell-timeout",
        }
    }

    /// Parses a CLI name back into a kind.
    #[must_use]
    pub fn parse(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded injection request, embeddable in simulator configs. The
/// `Debug` rendering feeds the runner's cache key, so injected runs never
/// collide with clean ones in the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Which injector to arm.
    pub kind: FaultKind,
    /// Seed making the injection deterministic.
    pub seed: u64,
}

impl FaultPlan {
    /// An injection plan with the workspace's default seed.
    #[must_use]
    pub fn seeded(kind: FaultKind) -> Self {
        Self { kind, seed: 0xD1CE }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(FaultKind::parse("frobnicate"), None);
    }

    #[test]
    fn plan_debug_feeds_cache_keys() {
        let a = format!("{:?}", FaultPlan::seeded(FaultKind::TagFlip));
        let b = format!("{:?}", FaultPlan::seeded(FaultKind::SizeLie));
        assert_ne!(a, b);
    }
}
