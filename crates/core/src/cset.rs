//! The flexible compressed set format (§4.3, Figure 5).
//!
//! Each Alloy set provides 72 bytes that the memory controller is free to
//! interpret as tags or data. Uncompressed, that is one 4 B tag (18-bit tag,
//! valid, dirty, BAI, shared-tag, next-tag-valid, ≤9 metadata bits — the 8 B
//! Alloy field is bus alignment, the *useful* tag is 4 B) plus one 64 B
//! line. Compressed, a set holds a variable number of lines, each charged
//! 4 B of tag plus its compressed data size, except that a spatially
//! adjacent pair compressed together shares one tag and (when BDI applies)
//! one base. The format caps at 28 lines per set.
//!
//! This module tracks set *contents* and byte accounting; actual data bytes
//! live in the workload's value model, consulted through [`SizeInfo`].

use crate::indexing::IndexScheme;
use crate::LineAddr;

/// Usable bytes per set (the 72 B TAD payload).
pub const SET_BYTES: u32 = 72;
/// Bytes charged per (possibly shared) tag.
pub const TAG_BYTES: u32 = 4;
/// Maximum lines one set can reference (§4.3).
pub const MAX_LINES_PER_SET: usize = 28;

/// Source of compressed sizes — implemented by the workload's value model
/// (sizes are a pure function of a line's current contents).
pub trait SizeInfo {
    /// Compressed size in bytes of `line` alone (1..=64).
    fn single_size(&mut self, line: LineAddr) -> u32;

    /// Joint compressed size of the aligned pair `(even, even|1)`,
    /// including any shared-base saving but not tags.
    fn pair_size(&mut self, even_line: LineAddr) -> u32;
}

/// Whether a set stores one raw line (baseline Alloy) or compressed lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetMode {
    /// Direct-mapped baseline: exactly one 64 B line per set.
    Uncompressed,
    /// Variable number of compressed lines within 72 B.
    Compressed,
}

/// One resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The line address.
    pub line: LineAddr,
    /// Needs a memory writeback when evicted.
    pub dirty: bool,
    /// Which index function placed the line here (Fig 11 statistics and
    /// CIP updates).
    pub scheme: IndexScheme,
    /// Recency stamp (larger = more recent).
    pub stamp: u64,
}

/// A line evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether it must be written back to memory.
    pub dirty: bool,
}

/// Contents of one DRAM-cache set.
#[derive(Debug, Clone, Default)]
pub struct CompressedSet {
    entries: Vec<Entry>,
}

impl CompressedSet {
    /// Entries currently resident.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no line is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finds `line` without touching recency.
    #[must_use]
    pub fn get(&self, line: LineAddr) -> Option<&Entry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Finds `line`, updating its recency stamp; `write` also sets dirty.
    pub fn touch(&mut self, line: LineAddr, stamp: u64, write: bool) -> Option<&Entry> {
        let e = self.entries.iter_mut().find(|e| e.line == line)?;
        e.stamp = stamp;
        e.dirty |= write;
        Some(e)
    }

    /// Total bytes the current contents occupy: per entry 4 B tag + its
    /// single compressed size, except co-resident pairs, which are charged
    /// one shared tag + their joint pair size.
    pub fn occupancy(&self, info: &mut dyn SizeInfo) -> u32 {
        let mut total = 0;
        for (i, e) in self.entries.iter().enumerate() {
            let partner = e.line ^ 1;
            let partner_idx = self.entries.iter().position(|o| o.line == partner);
            match partner_idx {
                // Count each pair once, at its lower-index member.
                Some(j) if j < i => {}
                Some(_) => total += TAG_BYTES + info.pair_size(e.line & !1),
                None => total += TAG_BYTES + info.single_size(e.line),
            }
        }
        total
    }

    /// Inserts (or refreshes) `line`, evicting least-recently-used entries
    /// until the contents fit `mode`'s capacity. The inserted line itself is
    /// never evicted (a single raw line always fits: 4 + 64 ≤ 72).
    ///
    /// Convenience wrapper over [`insert_into`](Self::insert_into) that
    /// allocates a fresh eviction vector; hot paths should hold a reusable
    /// scratch buffer and call `insert_into` directly.
    pub fn insert(
        &mut self,
        line: LineAddr,
        dirty: bool,
        scheme: IndexScheme,
        stamp: u64,
        mode: SetMode,
        info: &mut dyn SizeInfo,
    ) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        self.insert_into(line, dirty, scheme, stamp, mode, info, &mut evicted);
        evicted
    }

    /// [`insert`](Self::insert), but reporting evictions through a
    /// caller-owned buffer: `evicted` is cleared, then the victims (if any)
    /// are appended. With a reused buffer the steady-state path performs no
    /// heap allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_into(
        &mut self,
        line: LineAddr,
        dirty: bool,
        scheme: IndexScheme,
        stamp: u64,
        mode: SetMode,
        info: &mut dyn SizeInfo,
        evicted: &mut Vec<Evicted>,
    ) {
        evicted.clear();
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.stamp = stamp;
            e.dirty |= dirty;
            e.scheme = scheme;
        } else {
            // Two-step capacity ladder so the install path never
            // reallocates in steady state without bloating every set to
            // the worst case: the first insert reserves the typical
            // equilibrium (most compressed sets hold well under 8 lines),
            // and a set that outgrows it jumps straight to the format's
            // hard bound — at most two allocations per set, ever, both
            // taken while the set is still filling. The `+ 1` covers the
            // eviction loop below, which transiently holds one entry above
            // the cap before trimming.
            let (seed_cap, full_cap) = match mode {
                SetMode::Uncompressed => (2, 2),
                SetMode::Compressed => (8, MAX_LINES_PER_SET + 1),
            };
            let cap = self.entries.capacity();
            if cap < seed_cap {
                self.entries.reserve_exact(seed_cap - self.entries.len());
            } else if cap == self.entries.len() && cap < full_cap {
                self.entries.reserve_exact(full_cap - self.entries.len());
            }
            self.entries.push(Entry {
                line,
                dirty,
                scheme,
                stamp,
            });
        }

        loop {
            let over = match mode {
                SetMode::Uncompressed => self.entries.len() > 1,
                SetMode::Compressed => {
                    self.entries.len() > MAX_LINES_PER_SET || self.occupancy(info) > SET_BYTES
                }
            };
            if !over {
                break;
            }
            let victim_idx = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.line != line)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("the new line alone always fits");
            let v = self.entries.swap_remove(victim_idx);
            evicted.push(Evicted {
                line: v.line,
                dirty: v.dirty,
            });
        }
    }

    /// Removes `line` if resident.
    pub fn remove(&mut self, line: LineAddr) -> Option<Entry> {
        let idx = self.entries.iter().position(|e| e.line == line)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Drops every entry, returning how many were resident. Used by the
    /// integrity layer when an audit finds the set's metadata untrustworthy:
    /// contents (dirty bits included) can no longer be believed, so the set
    /// is treated as invalid and refilled from memory on later accesses.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Fault injector: XORs `bit` into the stored line address of the entry
    /// at `idx`, modeling a flipped tag bit in the DRAM array. Returns the
    /// (old, new) line addresses, or `None` when `idx` is out of range.
    /// The resulting state intentionally violates set invariants — it is
    /// meant to be caught by the auditor, never used in normal operation.
    pub fn corrupt_line_at(&mut self, idx: usize, bit: u32) -> Option<(LineAddr, LineAddr)> {
        let e = self.entries.get_mut(idx)?;
        let old = e.line;
        e.line ^= 1 << bit;
        Some((old, e.line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Scriptable size oracle for tests.
    struct FakeSizes {
        default_single: u32,
        single: HashMap<LineAddr, u32>,
        pair: HashMap<LineAddr, u32>,
    }

    impl FakeSizes {
        fn with_all(size: u32) -> Self {
            Self {
                default_single: size,
                single: HashMap::new(),
                pair: HashMap::new(),
            }
        }
    }

    impl SizeInfo for FakeSizes {
        fn single_size(&mut self, line: LineAddr) -> u32 {
            self.single
                .get(&line)
                .copied()
                .unwrap_or(self.default_single)
        }
        fn pair_size(&mut self, even: LineAddr) -> u32 {
            if let Some(&p) = self.pair.get(&even) {
                return p;
            }
            // Default: no sharing benefit.
            self.single_size(even) + self.single_size(even | 1)
        }
    }

    #[test]
    fn uncompressed_mode_holds_one_line() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(64);
        assert!(set
            .insert(
                10,
                false,
                IndexScheme::Tsi,
                1,
                SetMode::Uncompressed,
                &mut info
            )
            .is_empty());
        let ev = set.insert(
            20,
            false,
            IndexScheme::Tsi,
            2,
            SetMode::Uncompressed,
            &mut info,
        );
        assert_eq!(
            ev,
            vec![Evicted {
                line: 10,
                dirty: false
            }]
        );
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn two_half_lines_fit_compressed() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(32);
        set.insert(
            10,
            false,
            IndexScheme::Tsi,
            1,
            SetMode::Compressed,
            &mut info,
        );
        let ev = set.insert(
            1000,
            false,
            IndexScheme::Tsi,
            2,
            SetMode::Compressed,
            &mut info,
        );
        assert!(ev.is_empty(), "4+32 + 4+32 = 72 fits");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn thirtysix_byte_lines_do_not_fit_unshared() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(36);
        set.insert(
            10,
            false,
            IndexScheme::Tsi,
            1,
            SetMode::Compressed,
            &mut info,
        );
        // 4+36 + 4+36 = 80 > 72: distant lines at 36 B thrash...
        let ev = set.insert(
            1000,
            false,
            IndexScheme::Tsi,
            2,
            SetMode::Compressed,
            &mut info,
        );
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn paired_36b_lines_fit_via_sharing() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(36);
        info.pair.insert(10, 68); // shared base: 68 B joint
        set.insert(
            10,
            false,
            IndexScheme::Bai,
            1,
            SetMode::Compressed,
            &mut info,
        );
        // ...but the spatial pair shares tag and base: 4 + 68 = 72 fits.
        let ev = set.insert(
            11,
            false,
            IndexScheme::Bai,
            2,
            SetMode::Compressed,
            &mut info,
        );
        assert!(ev.is_empty(), "paired 36 B lines share tag+base");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn eviction_is_lru_and_spares_newcomer() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(20);
        set.insert(
            1,
            false,
            IndexScheme::Tsi,
            1,
            SetMode::Compressed,
            &mut info,
        );
        set.insert(
            3,
            false,
            IndexScheme::Tsi,
            2,
            SetMode::Compressed,
            &mut info,
        );
        set.insert(5, true, IndexScheme::Tsi, 3, SetMode::Compressed, &mut info);
        // 3 × 24 = 72 full. Touch 1 so 3 is LRU.
        set.touch(1, 4, false);
        let ev = set.insert(
            7,
            false,
            IndexScheme::Tsi,
            5,
            SetMode::Compressed,
            &mut info,
        );
        assert_eq!(
            ev,
            vec![Evicted {
                line: 3,
                dirty: false
            }]
        );
        assert!(set.get(7).is_some());
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(64);
        set.insert(1, true, IndexScheme::Tsi, 1, SetMode::Compressed, &mut info);
        let ev = set.insert(
            2,
            false,
            IndexScheme::Tsi,
            2,
            SetMode::Compressed,
            &mut info,
        );
        assert_eq!(
            ev,
            vec![Evicted {
                line: 1,
                dirty: true
            }]
        );
    }

    #[test]
    fn zero_heavy_set_caps_at_28_lines() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(1); // everything compresses to 1 B
                                               // Use odd spacing so no pairs form (pair accounting would halve tags).
        for i in 0..40u64 {
            set.insert(
                i * 2,
                false,
                IndexScheme::Tsi,
                i,
                SetMode::Compressed,
                &mut info,
            );
        }
        assert!(set.len() <= MAX_LINES_PER_SET, "len {} > 28", set.len());
        // 28 × (4+1) = 140 > 72, so the byte budget binds first: 14 lines.
        assert_eq!(set.len(), 72 / 5);
    }

    #[test]
    fn touch_updates_dirty_and_recency() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(10);
        set.insert(
            9,
            false,
            IndexScheme::Bai,
            1,
            SetMode::Compressed,
            &mut info,
        );
        assert!(set.touch(9, 5, true).is_some());
        let e = set.get(9).expect("resident");
        assert!(e.dirty);
        assert_eq!(e.stamp, 5);
        assert!(set.touch(10, 6, false).is_none());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(10);
        set.insert(
            9,
            false,
            IndexScheme::Tsi,
            1,
            SetMode::Compressed,
            &mut info,
        );
        set.insert(9, true, IndexScheme::Bai, 2, SetMode::Compressed, &mut info);
        assert_eq!(set.len(), 1);
        let e = set.get(9).expect("resident");
        assert!(e.dirty);
        assert_eq!(e.scheme, IndexScheme::Bai);
    }

    #[test]
    fn remove_returns_entry() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(10);
        set.insert(4, true, IndexScheme::Tsi, 1, SetMode::Compressed, &mut info);
        let e = set.remove(4).expect("present");
        assert!(e.dirty);
        assert!(set.remove(4).is_none());
        assert!(set.is_empty());
    }

    #[test]
    fn occupancy_counts_pairs_once() {
        let mut set = CompressedSet::default();
        let mut info = FakeSizes::with_all(30);
        info.pair.insert(6, 40);
        set.insert(
            6,
            false,
            IndexScheme::Bai,
            1,
            SetMode::Compressed,
            &mut info,
        );
        set.insert(
            7,
            false,
            IndexScheme::Bai,
            2,
            SetMode::Compressed,
            &mut info,
        );
        assert_eq!(set.occupancy(&mut info), 4 + 40);
    }
}
