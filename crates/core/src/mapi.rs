//! MAP-I–style hit/miss predictor for the DRAM cache.
//!
//! The Alloy Cache paper pairs its direct-mapped design with a *Memory
//! Access Predictor* (MAP-I): when a cache access is predicted to miss, the
//! main-memory read is launched in parallel with the cache probe, hiding the
//! serialization latency. The original indexes 2-bit counters by instruction
//! address; our traces are address streams, so we index by page — the same
//! spatial-correlation substitution the CIP makes (documented in DESIGN.md).

use crate::LineAddr;

const LINES_PER_PAGE: u64 = 64;

/// A page-indexed table of 2-bit saturating hit/miss counters.
#[derive(Debug, Clone)]
pub struct HitPredictor {
    counters: Vec<u8>,
    predictions: u64,
    correct: u64,
}

impl HitPredictor {
    /// Creates a predictor with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        // Start weakly predicting "hit" (2): misfiring extra memory reads on
        // a cold cache is the conservative direction for bandwidth.
        Self {
            counters: vec![2; entries],
            predictions: 0,
            correct: 0,
        }
    }

    fn slot(&self, line: LineAddr) -> usize {
        let page = line / LINES_PER_PAGE;
        let h = page.wrapping_mul(0xd6e8_feb8_6659_fd93);
        (h >> (64 - self.counters.len().trailing_zeros())) as usize
    }

    /// Predicts whether a read of `line` will hit the DRAM cache.
    #[must_use]
    pub fn predict_hit(&self, line: LineAddr) -> bool {
        self.counters[self.slot(line)] >= 2
    }

    /// Records the actual outcome and scores the previous prediction.
    pub fn update(&mut self, line: LineAddr, hit: bool) {
        let slot = self.slot(line);
        let predicted = self.counters[slot] >= 2;
        self.predictions += 1;
        if predicted == hit {
            self.correct += 1;
        }
        let c = &mut self.counters[slot];
        if hit {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Fraction of correct predictions (0.0 when idle, per the
    /// workspace-wide [`dice_obs::ratio`] convention).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        dice_obs::ratio(self.correct, self.predictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_predicting_hit() {
        assert!(HitPredictor::new(1024).predict_hit(0));
    }

    #[test]
    fn learns_a_missing_page() {
        let mut p = HitPredictor::new(1024);
        p.update(0, false);
        p.update(0, false);
        assert!(!p.predict_hit(0));
        assert!(!p.predict_hit(63), "same page shares the counter");
    }

    #[test]
    fn counters_saturate() {
        let mut p = HitPredictor::new(64);
        for _ in 0..10 {
            p.update(0, false);
        }
        // Two hits flip it back over the threshold.
        p.update(0, true);
        p.update(0, true);
        assert!(p.predict_hit(0));
    }

    #[test]
    fn idle_accuracy_is_zero() {
        assert_eq!(HitPredictor::new(64).accuracy(), 0.0);
    }

    #[test]
    fn accuracy_on_stable_stream() {
        let mut p = HitPredictor::new(64);
        for _ in 0..100 {
            p.update(0, true);
        }
        assert_eq!(p.accuracy(), 1.0);
    }
}
