//! DICE: Dynamic-Indexing Cache comprEssion — the primary contribution of
//! *"DICE: Compressing DRAM Caches for Bandwidth and Capacity"* (Young,
//! Nair, Qureshi; ISCA 2017), reproduced from scratch.
//!
//! A gigabyte-scale stacked-DRAM cache stores tags inside the DRAM array
//! (Alloy Cache: one 72 B tag-and-data unit per direct-mapped set), which
//! makes compression nearly free — any bit can be a tag bit or a data bit.
//! The catch is *what compression buys*:
//!
//! * with **traditional set indexing** (TSI), compression only increases
//!   capacity (≈7% speedup on the paper's workloads);
//! * with **spatial indexing**, one access can return two *adjacent* — and
//!   therefore soon-useful — lines, doubling effective bandwidth, but
//!   incompressible data then thrashes.
//!
//! DICE gets both: its [`Indexer`] provides **Bandwidth-Aware Indexing**
//! (BAI), constructed so every line's BAI location is its TSI set or the
//! adjacent set; the [`DramCacheController`] chooses per line at insertion
//! (compressed size ≤ 36 B ⇒ BAI, else TSI) and predicts the location on
//! reads with a 256-byte [`CachePredictor`] (CIP). The controller also
//! implements the paper's baselines: uncompressed Alloy, static
//! TSI/NSI/BAI compressed caches, the KNL no-neighbor-tag variant, and SCC
//! mapped onto DRAM.
//!
//! Timing is delegated: every operation reports its physical set
//! [`Probe`]s, which `dice-sim` replays against the `dice-dram` model.
//!
//! # Example
//!
//! ```
//! use dice_core::{DramCacheConfig, DramCacheController, Organization, SizeInfo};
//!
//! /// All lines compress to 24 B; pairs share a base.
//! struct Sizes;
//! impl SizeInfo for Sizes {
//!     fn single_size(&mut self, _line: u64) -> u32 { 24 }
//!     fn pair_size(&mut self, _even: u64) -> u32 { 44 }
//! }
//!
//! let cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 1 << 20);
//! let mut l4 = DramCacheController::new(cfg);
//! let mut sizes = Sizes;
//!
//! // Install a spatial pair; a read of one returns the other for free.
//! let line = l4.num_sets(); // a line whose TSI and BAI locations differ
//! l4.fill(line, false, None, &mut sizes);
//! l4.fill(line ^ 1, false, None, &mut sizes);
//! let hit = l4.read(line);
//! assert!(hit.hit);
//! assert_eq!(hit.free_lines, vec![line ^ 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod cache;
mod cip;
mod cset;
mod diag;
mod faults;
mod indexing;
mod inline_vec;
mod mapi;
mod stats;

pub use audit::{InvariantKind, InvariantViolation, LyingSizes};
pub use cache::{
    DramCacheConfig, DramCacheController, FreeLineList, Organization, Probe, ProbeList,
    ReadOutcome, TagVariant, WriteOutcome, WritebackList,
};
pub use cip::CachePredictor;
pub use cset::{
    CompressedSet, Entry, Evicted, SetMode, SizeInfo, MAX_LINES_PER_SET, SET_BYTES, TAG_BYTES,
};
pub use diag::DecisionDiag;
pub use faults::{FaultKind, FaultPlan};
pub use indexing::{IndexScheme, Indexer, SetIndex};
pub use inline_vec::InlineVec;
pub use mapi::HitPredictor;
pub use stats::L4Stats;

/// A line address (byte address divided by the 64 B line size).
pub type LineAddr = u64;
