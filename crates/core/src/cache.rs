//! The DRAM-cache controller: Alloy baseline, statically indexed compressed
//! variants, DICE, the KNL tag variant and the SCC baseline (§4–§5, §6.6,
//! §7.3).
//!
//! The controller is *functional*: it tracks set contents and, for every
//! operation, reports the physical set probes the operation performs. The
//! system simulator (`dice-sim`) executes those probes against the DRAM
//! timing model; unit tests here assert on contents and probe counts
//! directly.

use crate::audit::{first_duplicate, InvariantKind, InvariantViolation};
use crate::cip::CachePredictor;
use crate::cset::{CompressedSet, Evicted, SetMode, SizeInfo, MAX_LINES_PER_SET, SET_BYTES};
use crate::diag::DecisionDiag;
use crate::indexing::{IndexScheme, Indexer, SetIndex};
use crate::inline_vec::InlineVec;
use crate::mapi::HitPredictor;
use crate::stats::L4Stats;
use crate::LineAddr;

/// How the DRAM cache is organized and indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// Baseline Alloy Cache: direct-mapped, uncompressed, TSI.
    UncompressedAlloy,
    /// Compressed, statically TSI-indexed (capacity only — Fig 7 "TSI").
    CompressedTsi,
    /// Compressed, naive spatial indexing (§4.5's strawman).
    CompressedNsi,
    /// Compressed, statically BAI-indexed (Fig 7 "BAI").
    CompressedBai,
    /// Dynamic-Indexing Cache Compression: BAI when the line compresses to
    /// `threshold` bytes or fewer, TSI otherwise (§5).
    Dice {
        /// Insertion threshold in bytes (the paper's default is 36).
        threshold: u32,
    },
    /// Skewed Compressed Cache mapped onto DRAM (§7.3): compression like
    /// TSI, but every request pays three skewed tag probes plus a data
    /// probe.
    Scc,
}

/// Whether the stacked DRAM delivers the neighboring set's tag with each
/// TAD transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TagVariant {
    /// Alloy layout: 80 B bursts carry the neighbor tag, so the alternate
    /// index can be ruled out without a second access (§5.1).
    #[default]
    Alloy,
    /// Knights-Landing layout: tags ride the ECC lanes, 72 B over four
    /// bursts, no neighbor tag — misses on non-invariant lines must check
    /// both locations (§6.6).
    Knl,
}

/// Static configuration of the DRAM-cache controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCacheConfig {
    /// Nominal (uncompressed) capacity in bytes; sets = capacity / 64.
    pub capacity_bytes: u64,
    /// Cache organization / index policy.
    pub organization: Organization,
    /// Neighbor-tag availability.
    pub tag_variant: TagVariant,
    /// CIP last-time-table entries (paper default 2048).
    pub ltt_entries: usize,
    /// MAP-I predictor entries.
    pub mapi_entries: usize,
    /// Sets per 2 KB DRAM row (28 in the Alloy layout).
    pub sets_per_row: u64,
}

impl DramCacheConfig {
    /// The paper's 1 GB cache with the given organization.
    #[must_use]
    pub fn paper_1gb(organization: Organization) -> Self {
        Self::with_capacity(organization, 1 << 30)
    }

    /// A cache of `capacity_bytes` (power-of-two line count required).
    #[must_use]
    pub fn with_capacity(organization: Organization, capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            organization,
            tag_variant: TagVariant::Alloy,
            ltt_entries: 2048,
            mapi_entries: 4096,
            sets_per_row: 28,
        }
    }

    /// Bytes transferred per set read (TAD plus neighbor tag under Alloy).
    #[must_use]
    pub fn read_bytes(&self) -> u32 {
        match self.tag_variant {
            TagVariant::Alloy => 80,
            TagVariant::Knl => 72,
        }
    }

    /// Bytes transferred per set write.
    #[must_use]
    pub fn write_bytes(&self) -> u32 {
        72
    }
}

/// One physical access to the DRAM-cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Probe {
    /// The set accessed.
    pub set: SetIndex,
    /// True for writes, false for reads.
    pub write: bool,
    /// Bytes transferred on the stacked-DRAM bus.
    pub bytes: u32,
}

/// Probe sequence of one operation. Worst case is four probes (SCC hit:
/// three tag lookups plus data), so the buffer never spills to the heap.
pub type ProbeList = InlineVec<Probe, 4>;

/// Free pair-partner lines delivered with a hit. At most one partner per
/// aligned pair; two slots leave headroom without leaving the stack.
pub type FreeLineList = InlineVec<LineAddr, 2>;

/// Dirty victims of one insertion. A set holds at most
/// [`MAX_LINES_PER_SET`] lines, bounding evictions per operation.
pub type WritebackList = InlineVec<LineAddr, MAX_LINES_PER_SET>;

/// Result of a demand read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Whether the line was found (in either candidate location).
    pub hit: bool,
    /// Physical accesses performed, in order.
    pub probes: ProbeList,
    /// Adjacent lines delivered free with the hit (pair partners resident
    /// in the same set) — candidates for L3 installation.
    pub free_lines: FreeLineList,
    /// MAP-I's prediction for this access (made before probing); the
    /// simulator overlaps the memory access when this is `false`.
    pub predicted_hit: bool,
}

/// Result of a fill or writeback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Physical accesses performed, in order.
    pub probes: ProbeList,
    /// Dirty victims that must be written to main memory.
    pub memory_writebacks: WritebackList,
}

/// A one-element probe list (the common single-access case).
fn one_probe(set: SetIndex, write: bool, bytes: u32) -> ProbeList {
    let mut probes = ProbeList::new();
    probes.push(Probe { set, write, bytes });
    probes
}

/// Total stacked-DRAM bus bytes of one operation's probe sequence.
fn probe_bytes(probes: &ProbeList) -> u64 {
    probes.iter().map(|p| u64::from(p.bytes)).sum()
}

/// The DRAM-cache controller.
///
/// # Example
///
/// ```
/// use dice_core::{DramCacheConfig, DramCacheController, Organization, SizeInfo};
///
/// struct Fixed(u32);
/// impl SizeInfo for Fixed {
///     fn single_size(&mut self, _: u64) -> u32 { self.0 }
///     fn pair_size(&mut self, _: u64) -> u32 { 2 * self.0 - 4 }
/// }
///
/// let cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 1 << 20);
/// let mut l4 = DramCacheController::new(cfg);
/// let mut sizes = Fixed(30);
/// assert!(!l4.read(42).hit);
/// l4.fill(42, false, None, &mut sizes);
/// assert!(l4.read(42).hit);
/// ```
#[derive(Debug, Clone)]
pub struct DramCacheController {
    cfg: DramCacheConfig,
    ix: Indexer,
    sets: Vec<CompressedSet>,
    cip: CachePredictor,
    mapi: HitPredictor,
    stamp: u64,
    stats: L4Stats,
    /// Decision diagnostics: confusion matrices, hit attribution and
    /// bandwidth-bloat accounting. Plain counters, updated unconditionally
    /// (see `diag.rs` for why this never allocates).
    diag: DecisionDiag,
    /// Reusable eviction buffer: after warmup its capacity covers any
    /// insertion, so steady-state fills and writebacks never allocate.
    evict_scratch: Vec<Evicted>,
}

impl DramCacheController {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes / 64` is not a power of two ≥ 4.
    #[must_use]
    pub fn new(cfg: DramCacheConfig) -> Self {
        let sets = cfg.capacity_bytes / 64;
        Self {
            ix: Indexer::new(sets),
            sets: vec![CompressedSet::default(); sets as usize],
            cip: CachePredictor::new(cfg.ltt_entries),
            mapi: HitPredictor::new(cfg.mapi_entries),
            stamp: 0,
            stats: L4Stats::default(),
            diag: DecisionDiag::default(),
            evict_scratch: Vec::with_capacity(MAX_LINES_PER_SET),
            cfg,
        }
    }

    /// The configuration this controller was built with.
    #[must_use]
    pub fn config(&self) -> &DramCacheConfig {
        &self.cfg
    }

    /// Number of sets (== baseline line capacity).
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.ix.sets()
    }

    /// DRAM row holding `set` (consecutive sets share 2 KB rows).
    #[must_use]
    pub fn row_of(&self, set: SetIndex) -> u64 {
        set / self.cfg.sets_per_row
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &L4Stats {
        &self.stats
    }

    /// Read-index predictor accuracy so far (§5.3's ~94%).
    #[must_use]
    pub fn cip_accuracy(&self) -> f64 {
        self.cip.accuracy()
    }

    /// Number of scored CIP predictions.
    #[must_use]
    pub fn cip_predictions(&self) -> u64 {
        self.cip.predictions()
    }

    /// Number of correct scored CIP predictions.
    #[must_use]
    pub fn cip_correct(&self) -> u64 {
        self.cip.correct()
    }

    /// Decision diagnostics accumulated so far (confusion matrices, hit
    /// attribution, bandwidth-bloat split).
    #[must_use]
    pub fn diagnostics(&self) -> &DecisionDiag {
        &self.diag
    }

    /// MAP-I hit-predictor accuracy so far.
    #[must_use]
    pub fn mapi_accuracy(&self) -> f64 {
        self.mapi.accuracy()
    }

    /// MAP-I's current hit prediction for `line`, without issuing an access
    /// or updating any state. Prefetchers use this to throttle: a prefetch
    /// that would miss the L4 costs scarce DDR bandwidth and is dropped.
    #[must_use]
    pub fn predicts_hit(&self, line: LineAddr) -> bool {
        self.mapi.predict_hit(line)
    }

    /// Total lines currently resident (Table 5's effective capacity,
    /// normalized by [`num_sets`](Self::num_sets)).
    #[must_use]
    pub fn valid_lines(&self) -> u64 {
        self.sets.iter().map(|s| s.len() as u64).sum()
    }

    /// Number of sets holding at least one line. `valid_lines /
    /// occupied_sets` estimates steady-state packing density even before a
    /// (simulation-scaled) run has touched every set.
    #[must_use]
    pub fn occupied_sets(&self) -> u64 {
        self.sets.iter().filter(|s| !s.is_empty()).count() as u64
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn set_mode(&self) -> SetMode {
        match self.cfg.organization {
            Organization::UncompressedAlloy => SetMode::Uncompressed,
            _ => SetMode::Compressed,
        }
    }

    /// The single home set for statically indexed organizations.
    fn static_set(&self, line: LineAddr) -> Option<SetIndex> {
        match self.cfg.organization {
            Organization::UncompressedAlloy | Organization::CompressedTsi | Organization::Scc => {
                Some(self.ix.tsi(line))
            }
            Organization::CompressedNsi => Some(self.ix.nsi(line)),
            Organization::CompressedBai => Some(self.ix.bai(line)),
            Organization::Dice { .. } => None,
        }
    }

    /// Free pair partner resident in `set` alongside a hit on `line`.
    ///
    /// Delivering the partner also refreshes its recency: the line was just
    /// sent to the L3, so it is as live as the demand line, and leaving it
    /// LRU-stale would evict exactly the hottest spatial data (its later
    /// accesses are absorbed by the L3 and never touch the L4 again).
    fn partner_in(&mut self, set: SetIndex, line: LineAddr, stamp: u64) -> Option<LineAddr> {
        let partner = Indexer::pair_partner(line);
        self.sets[set as usize]
            .touch(partner, stamp, false)
            .map(|_| partner)
    }

    /// Services a demand read for `line`.
    pub fn read(&mut self, line: LineAddr) -> ReadOutcome {
        self.stats.reads += 1;
        let predicted_hit = self.mapi.predict_hit(line);
        let stamp = self.next_stamp();
        let rb = self.cfg.read_bytes();

        let outcome = match self.cfg.organization {
            Organization::Scc => self.read_scc(line, stamp, predicted_hit),
            Organization::Dice { .. } => self.read_dice(line, stamp, predicted_hit, rb),
            _ => {
                let set = self.static_set(line).expect("static organization");
                let hit = self.sets[set as usize].touch(line, stamp, false).is_some();
                let free_lines = if hit && self.set_mode() == SetMode::Compressed {
                    self.partner_in(set, line, stamp).into_iter().collect()
                } else {
                    FreeLineList::new()
                };
                ReadOutcome {
                    hit,
                    probes: one_probe(set, false, rb),
                    free_lines,
                    predicted_hit,
                }
            }
        };

        if outcome.hit {
            self.stats.read_hits += 1;
            self.diag.bytes_needed += 64;
        } else {
            self.diag.read_misses += 1;
        }
        self.diag.bytes_moved += probe_bytes(&outcome.probes);
        self.stats.free_lines += outcome.free_lines.len() as u64;
        self.mapi.update(line, outcome.hit);
        outcome
    }

    fn read_dice(
        &mut self,
        line: LineAddr,
        stamp: u64,
        predicted_hit: bool,
        rb: u32,
    ) -> ReadOutcome {
        if self.ix.invariant(line) {
            // TSI == BAI: one location, no prediction involved.
            let set = self.ix.tsi(line);
            let hit = self.sets[set as usize].touch(line, stamp, false).is_some();
            if hit {
                self.diag.hits_invariant += 1;
            }
            let free_lines = if hit {
                self.partner_in(set, line, stamp).into_iter().collect()
            } else {
                FreeLineList::new()
            };
            return ReadOutcome {
                hit,
                probes: one_probe(set, false, rb),
                free_lines,
                predicted_hit,
            };
        }

        let pred_scheme = self.cip.predict(line);
        let s_pred = self.ix.index(line, pred_scheme);
        let s_alt = self.ix.index(line, pred_scheme.other());
        debug_assert_eq!(s_alt, s_pred ^ 1, "BAI/TSI candidates are LSB-adjacent");
        let mut probes = one_probe(s_pred, false, rb);

        if self.sets[s_pred as usize]
            .touch(line, stamp, false)
            .is_some()
        {
            self.cip.update(line, pred_scheme);
            self.diag.record_read(pred_scheme, pred_scheme);
            self.diag.record_hit(pred_scheme);
            let free_lines = self.partner_in(s_pred, line, stamp).into_iter().collect();
            return ReadOutcome {
                hit: true,
                probes,
                free_lines,
                predicted_hit,
            };
        }

        let in_alt = self.sets[s_alt as usize].get(line).is_some();
        let (hit, hit_set) = match self.cfg.tag_variant {
            TagVariant::Alloy => {
                // The neighbor tag came with the first probe: a second
                // access is issued only when the line is actually there.
                if in_alt {
                    probes.push(Probe {
                        set: s_alt,
                        write: false,
                        bytes: rb,
                    });
                    self.stats.second_probes += 1;
                    self.diag.second_probe_reads += 1;
                    self.diag.bloat_second_probe_bytes += u64::from(rb);
                    (true, Some(s_alt))
                } else {
                    (false, None)
                }
            }
            TagVariant::Knl => {
                // No neighbor tag: both locations must be checked before
                // declaring a miss (§6.6).
                probes.push(Probe {
                    set: s_alt,
                    write: false,
                    bytes: rb,
                });
                self.stats.second_probes += 1;
                self.diag.second_probe_reads += 1;
                self.diag.bloat_second_probe_bytes += u64::from(rb);
                if in_alt {
                    (true, Some(s_alt))
                } else {
                    (false, None)
                }
            }
        };

        let free_lines = match hit_set {
            Some(s) => {
                self.sets[s as usize].touch(line, stamp, false);
                self.cip.update(line, pred_scheme.other());
                self.diag.record_read(pred_scheme, pred_scheme.other());
                self.diag.record_hit(pred_scheme.other());
                self.partner_in(s, line, stamp).into_iter().collect()
            }
            None => FreeLineList::new(),
        };
        ReadOutcome {
            hit,
            probes,
            free_lines,
            predicted_hit,
        }
    }

    fn read_scc(&mut self, line: LineAddr, stamp: u64, predicted_hit: bool) -> ReadOutcome {
        // Three skewed tag lookups land in three different rows; a hit pays
        // a fourth access for the data (§7.3: "Each request in SCC incurs
        // four accesses to DRAM cache, 3 for tags and one for data").
        let home = self.ix.tsi(line);
        let mask = self.ix.sets() - 1;
        let skew1 = line.wrapping_mul(0x9e37_79b9).rotate_left(13) & mask;
        let skew2 = line.wrapping_mul(0x85eb_ca6b).rotate_left(29) & mask;
        // Tag lookups transfer only the tag region of each candidate set
        // (one 16 B burst); the data access moves the full TAD.
        let tag_bytes = 16;
        let mut probes = ProbeList::new();
        for set in [home, skew1, skew2] {
            probes.push(Probe {
                set,
                write: false,
                bytes: tag_bytes,
            });
        }
        let hit = self.sets[home as usize].touch(line, stamp, false).is_some();
        if hit {
            probes.push(Probe {
                set: home,
                write: false,
                bytes: self.cfg.read_bytes(),
            });
        }
        ReadOutcome {
            hit,
            probes,
            free_lines: FreeLineList::new(),
            predicted_hit,
        }
    }

    /// Decides the install scheme and set for `line` (§5.2: compressed size
    /// at or below the threshold ⇒ BAI, else TSI).
    fn install_target(
        &mut self,
        line: LineAddr,
        info: &mut dyn SizeInfo,
    ) -> (IndexScheme, SetIndex, bool) {
        match self.cfg.organization {
            Organization::Dice { threshold } => {
                if self.ix.invariant(line) {
                    (IndexScheme::Tsi, self.ix.tsi(line), true)
                } else if info.single_size(line) <= threshold {
                    (IndexScheme::Bai, self.ix.bai(line), false)
                } else {
                    (IndexScheme::Tsi, self.ix.tsi(line), false)
                }
            }
            _ => {
                let set = self.static_set(line).expect("static organization");
                (IndexScheme::Tsi, set, self.ix.invariant(line))
            }
        }
    }

    fn record_install(&mut self, scheme: IndexScheme, invariant: bool) {
        if invariant {
            self.stats.installs_invariant += 1;
        } else {
            match scheme {
                IndexScheme::Tsi => self.stats.installs_tsi += 1,
                IndexScheme::Bai => self.stats.installs_bai += 1,
            }
        }
    }

    /// Inserts `line` into `set` through the reusable eviction scratch
    /// buffer and returns the dirty victims needing memory writebacks.
    fn install(
        &mut self,
        set: SetIndex,
        line: LineAddr,
        dirty: bool,
        scheme: IndexScheme,
        mode: SetMode,
        info: &mut dyn SizeInfo,
    ) -> WritebackList {
        let stamp = self.next_stamp();
        self.sets[set as usize].insert_into(
            line,
            dirty,
            scheme,
            stamp,
            mode,
            info,
            &mut self.evict_scratch,
        );
        let memory_writebacks: WritebackList = self
            .evict_scratch
            .iter()
            .filter(|e| e.dirty)
            .map(|e| e.line)
            .collect();
        self.stats.memory_writebacks += memory_writebacks.len() as u64;
        memory_writebacks
    }

    /// Installs `line` after a memory fetch. `probed` is the set already
    /// read on the miss path, if any — installing there needs no second
    /// read-modify-write read.
    pub fn fill(
        &mut self,
        line: LineAddr,
        dirty: bool,
        probed: Option<SetIndex>,
        info: &mut dyn SizeInfo,
    ) -> WriteOutcome {
        self.stats.fills += 1;
        let (scheme, set, invariant) = self.install_target(line, info);
        self.record_install(scheme, invariant);
        if let (Organization::Dice { .. }, false) = (self.cfg.organization, invariant) {
            // Score the LTT against the size-based install decision before
            // training overwrites it: this is the fill-time confusion
            // matrix, so its total is exactly the CIP-consulted fills.
            self.diag.record_fill(self.cip.predict(line), scheme);
            self.cip.train(line, scheme);
        }

        let mut probes = ProbeList::new();
        let needs_rmw = self.set_mode() == SetMode::Compressed && probed != Some(set);
        if needs_rmw {
            probes.push(Probe {
                set,
                write: false,
                bytes: self.cfg.read_bytes(),
            });
            self.diag.bloat_rmw_bytes += u64::from(self.cfg.read_bytes());
        }
        probes.push(Probe {
            set,
            write: true,
            bytes: self.cfg.write_bytes(),
        });
        self.diag.bytes_moved += probe_bytes(&probes);
        self.diag.bytes_needed += 64;

        let mode = self.set_mode();
        let memory_writebacks = self.install(set, line, dirty, scheme, mode, info);
        WriteOutcome {
            probes,
            memory_writebacks,
        }
    }

    /// Handles a dirty writeback arriving from the L3.
    ///
    /// Under DICE the write location is predicted from the line's own
    /// compressed size (the insertion rule, ~95% accurate per §5.3); a
    /// wrong guess costs an extra probe of the adjacent set.
    pub fn writeback(&mut self, line: LineAddr, info: &mut dyn SizeInfo) -> WriteOutcome {
        self.stats.writebacks += 1;
        let rb = self.cfg.read_bytes();
        let wbts = self.cfg.write_bytes();

        let is_dice = matches!(self.cfg.organization, Organization::Dice { .. });
        if !is_dice || self.ix.invariant(line) {
            // One candidate location: read-modify-write it.
            let (scheme, set, invariant) = self.install_target(line, info);
            self.record_install(scheme, invariant);
            let mut probes = one_probe(set, false, rb);
            probes.push(Probe {
                set,
                write: true,
                bytes: wbts,
            });
            self.diag.bloat_rmw_bytes += u64::from(rb);
            self.diag.bytes_moved += probe_bytes(&probes);
            self.diag.bytes_needed += 64;
            let mode = self.set_mode();
            let memory_writebacks = self.install(set, line, true, scheme, mode, info);
            return WriteOutcome {
                probes,
                memory_writebacks,
            };
        }

        // DICE, non-invariant line: predict by compressibility.
        let (pred_scheme, s_pred, _) = self.install_target(line, info);
        let s_alt = s_pred ^ 1;
        let mut probes = one_probe(s_pred, false, rb);
        self.diag.bloat_rmw_bytes += u64::from(rb);

        let resident_pred = self.sets[s_pred as usize].get(line).is_some();
        let resident_alt = self.sets[s_alt as usize].get(line).is_some();
        if resident_pred || resident_alt {
            self.stats.wpred_scored += 1;
        }

        let (set, scheme) = if resident_pred {
            self.stats.wpred_correct += 1;
            (s_pred, pred_scheme)
        } else if resident_alt {
            // Wrong guess (or the line was installed before its data
            // changed): update it where it lives. The neighbor tag (Alloy)
            // or a second probe (KNL) finds it; modifying the other set
            // needs its contents either way.
            probes.push(Probe {
                set: s_alt,
                write: false,
                bytes: rb,
            });
            self.stats.second_probes += 1;
            self.diag.second_probe_writes += 1;
            self.diag.bloat_second_probe_bytes += u64::from(rb);
            (s_alt, pred_scheme.other())
        } else {
            // Not resident anywhere: install fresh at the predicted target.
            (s_pred, pred_scheme)
        };

        self.record_install(scheme, false);
        self.cip.train(line, scheme);
        probes.push(Probe {
            set,
            write: true,
            bytes: wbts,
        });
        self.diag.bytes_moved += probe_bytes(&probes);
        self.diag.bytes_needed += 64;

        let memory_writebacks = self.install(set, line, true, scheme, SetMode::Compressed, info);
        WriteOutcome {
            probes,
            memory_writebacks,
        }
    }

    /// Where the recorded `(line, scheme)` pair says a resident entry
    /// belongs. Static organizations ignore the flag (they have one index
    /// function); DICE re-applies the entry's own BAI/TSI decision.
    fn expected_set(&self, line: LineAddr, scheme: IndexScheme) -> SetIndex {
        match self.cfg.organization {
            Organization::Dice { .. } => self.ix.index(line, scheme),
            _ => self.static_set(line).expect("static organization"),
        }
    }

    /// Audits every set against the compressed-set invariants (see
    /// [`crate::audit`]): tag uniqueness, ≤ 72 B occupancy re-derived from
    /// the honest size oracle, the 28-line format cap, BAI/TSI flag
    /// consistency, and single-line residency for uncompressed sets.
    ///
    /// Read-only: auditing never changes contents, recency or statistics,
    /// so an audited run is cycle-identical to an unaudited one.
    pub fn audit(&self, info: &mut dyn SizeInfo) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let mode = self.set_mode();
        let mut lines: Vec<LineAddr> = Vec::with_capacity(MAX_LINES_PER_SET);
        for (s, set) in self.sets.iter().enumerate() {
            let s = s as SetIndex;
            lines.clear();
            lines.extend(set.entries().iter().map(|e| e.line));
            if let Some(dup) = first_duplicate(&lines) {
                out.push(InvariantViolation {
                    set: s,
                    line: Some(dup),
                    kind: InvariantKind::DuplicateTag,
                });
            }
            match mode {
                SetMode::Uncompressed => {
                    if set.len() > 1 {
                        out.push(InvariantViolation {
                            set: s,
                            line: None,
                            kind: InvariantKind::MultiLineUncompressed { count: set.len() },
                        });
                    }
                }
                SetMode::Compressed => {
                    if set.len() > MAX_LINES_PER_SET {
                        out.push(InvariantViolation {
                            set: s,
                            line: None,
                            kind: InvariantKind::TooManyLines { count: set.len() },
                        });
                    }
                    let occupancy = set.occupancy(info);
                    if occupancy > SET_BYTES {
                        out.push(InvariantViolation {
                            set: s,
                            line: None,
                            kind: InvariantKind::OverCapacity { occupancy },
                        });
                    }
                }
            }
            for e in set.entries() {
                let expected = self.expected_set(e.line, e.scheme);
                if expected != s {
                    out.push(InvariantViolation {
                        set: s,
                        line: Some(e.line),
                        kind: InvariantKind::IndexMismatch { expected },
                    });
                }
            }
        }
        out
    }

    /// Integrity recovery: drops every line in `set` (metadata there can no
    /// longer be trusted, dirty bits included), so subsequent accesses miss
    /// and refill from memory. Returns the number of lines dropped.
    pub fn invalidate_set(&mut self, set: SetIndex) -> usize {
        self.sets[set as usize].clear()
    }

    /// Fault injector: flips bit 1 of one resident entry's stored line
    /// address, chosen pseudo-randomly from `seed`. Bit 1 lies inside the
    /// set-index field of every organization (TSI, NSI, BAI and the skews
    /// all consume it, and `sets ≥ 4`), so the corrupted tag is always
    /// detectable by [`audit`](Self::audit) as an index mismatch (or, on
    /// collision, a duplicate tag). Returns `(set, old_line, new_line)`,
    /// or `None` when the cache is empty.
    pub fn inject_tag_flip(&mut self, seed: u64) -> Option<(SetIndex, LineAddr, LineAddr)> {
        let n = self.sets.len() as u64;
        let start = seed % n;
        for off in 0..n {
            let s = ((start + off) % n) as usize;
            let len = self.sets[s].len();
            if len == 0 {
                continue;
            }
            let idx = (seed >> 32) as usize % len;
            let (old, new) = self.sets[s].corrupt_line_at(idx, 1)?;
            return Some((s as SetIndex, old, new));
        }
        None
    }

    /// Maximum lines one set can hold (re-exported format constant).
    #[must_use]
    pub fn max_lines_per_set() -> usize {
        MAX_LINES_PER_SET
    }

    /// Payload bytes per set (re-exported format constant).
    #[must_use]
    pub fn set_bytes() -> u32 {
        SET_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Size oracle: fixed single size; pairs share a 4 B base.
    struct Fixed(u32);

    impl SizeInfo for Fixed {
        fn single_size(&mut self, _: LineAddr) -> u32 {
            self.0
        }
        fn pair_size(&mut self, _: LineAddr) -> u32 {
            2 * self.0 - 4
        }
    }

    fn dice_cache() -> DramCacheController {
        DramCacheController::new(DramCacheConfig::with_capacity(
            Organization::Dice { threshold: 36 },
            1 << 16, // 1024 sets
        ))
    }

    /// A line whose TSI and BAI indices differ (non-invariant).
    fn noninvariant_line(c: &DramCacheController) -> LineAddr {
        let sets = c.num_sets();
        // bit log2(sets) set, bit 0 clear: moves under BAI.
        sets
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let mut c = dice_cache();
        let mut sizes = Fixed(30);
        assert!(!c.read(100).hit);
        c.fill(100, false, None, &mut sizes);
        assert!(c.read(100).hit);
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn compressible_line_installs_at_bai() {
        let mut c = dice_cache();
        let mut small = Fixed(30);
        let line = noninvariant_line(&c);
        c.fill(line, false, None, &mut small);
        assert_eq!(c.stats().installs_bai, 1);
        assert_eq!(c.stats().installs_tsi, 0);
    }

    #[test]
    fn incompressible_line_installs_at_tsi() {
        let mut c = dice_cache();
        let mut big = Fixed(64);
        let line = noninvariant_line(&c);
        c.fill(line, false, None, &mut big);
        assert_eq!(c.stats().installs_tsi, 1);
        assert_eq!(c.stats().installs_bai, 0);
    }

    #[test]
    fn threshold_is_inclusive() {
        let mut c = dice_cache();
        let mut exact = Fixed(36);
        let line = noninvariant_line(&c);
        c.fill(line, false, None, &mut exact);
        assert_eq!(
            c.stats().installs_bai,
            1,
            "36 B must choose BAI (≤ threshold)"
        );
    }

    #[test]
    fn invariant_lines_need_no_decision() {
        let mut c = dice_cache();
        let mut sizes = Fixed(30);
        // Line 0: bit log2(sets) is 0, bit 0 is 0 → invariant.
        c.fill(0, false, None, &mut sizes);
        assert_eq!(c.stats().installs_invariant, 1);
    }

    #[test]
    fn pair_hit_delivers_partner_free() {
        let mut c = dice_cache();
        let mut sizes = Fixed(30);
        let line = noninvariant_line(&c) & !1;
        c.fill(line, false, None, &mut sizes);
        c.fill(line + 1, false, None, &mut sizes);
        let r = c.read(line);
        assert!(r.hit);
        assert_eq!(r.free_lines, vec![line + 1]);
    }

    #[test]
    fn tsi_compressed_never_delivers_free_pairs() {
        let mut c = DramCacheController::new(DramCacheConfig::with_capacity(
            Organization::CompressedTsi,
            1 << 16,
        ));
        let mut sizes = Fixed(30);
        c.fill(200, false, None, &mut sizes);
        c.fill(201, false, None, &mut sizes);
        let r = c.read(200);
        assert!(r.hit);
        assert!(r.free_lines.is_empty(), "TSI separates pair members");
    }

    #[test]
    fn alloy_miss_costs_one_probe() {
        let mut c = dice_cache();
        let line = noninvariant_line(&c);
        let r = c.read(line);
        assert!(!r.hit);
        assert_eq!(
            r.probes.len(),
            1,
            "neighbor tag rules out the alternate set"
        );
    }

    #[test]
    fn knl_miss_probes_both_locations() {
        let mut cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 1 << 16);
        cfg.tag_variant = TagVariant::Knl;
        let mut c = DramCacheController::new(cfg);
        let line = noninvariant_line(&c);
        let r = c.read(line);
        assert!(!r.hit);
        assert_eq!(
            r.probes.len(),
            2,
            "KNL cannot rule out the alternate set for free"
        );
    }

    #[test]
    fn knl_invariant_miss_needs_one_probe() {
        let mut cfg = DramCacheConfig::with_capacity(Organization::Dice { threshold: 36 }, 1 << 16);
        cfg.tag_variant = TagVariant::Knl;
        let mut c = DramCacheController::new(cfg);
        let r = c.read(0);
        assert_eq!(r.probes.len(), 1);
    }

    #[test]
    fn cip_misprediction_costs_second_probe() {
        let mut c = dice_cache();
        let line = noninvariant_line(&c);
        let mut big = Fixed(64);
        // Fresh LTT predicts TSI; install at TSI so the first read is right.
        c.fill(line, false, None, &mut big);
        let r = c.read(line);
        assert_eq!(r.probes.len(), 1);
        // Retrain the page toward BAI with a compressible neighbor line.
        let mut small = Fixed(20);
        c.fill(line + 2, false, None, &mut small);
        // Now the (incompressible, TSI-resident) line mispredicts to BAI.
        let r = c.read(line);
        assert!(r.hit);
        assert_eq!(r.probes.len(), 2, "misprediction pays a second probe");
        assert!(c.stats().second_probes >= 1);
    }

    #[test]
    fn scc_read_costs_four_probes_on_hit() {
        let mut c =
            DramCacheController::new(DramCacheConfig::with_capacity(Organization::Scc, 1 << 16));
        let mut sizes = Fixed(30);
        c.fill(300, false, None, &mut sizes);
        let hit = c.read(300);
        assert!(hit.hit);
        assert_eq!(hit.probes.len(), 4, "3 tag probes + 1 data probe");
        let miss = c.read(301_000);
        assert!(!miss.hit);
        assert_eq!(miss.probes.len(), 3, "3 tag probes on a miss");
    }

    #[test]
    fn fill_reuses_probed_set() {
        let mut c = dice_cache();
        let mut sizes = Fixed(64);
        let line = 0; // invariant → target is the TSI set
        let miss = c.read(line);
        let probed = miss.probes[0].set;
        let out = c.fill(line, false, Some(probed), &mut sizes);
        assert_eq!(
            out.probes.len(),
            1,
            "no RMW read when the miss already read the set"
        );
        assert!(out.probes[0].write);
    }

    #[test]
    fn fill_elsewhere_needs_rmw() {
        let mut c = dice_cache();
        let mut small = Fixed(20);
        let line = noninvariant_line(&c); // compressible → BAI ≠ TSI probe
        let miss = c.read(line); // predicted TSI (cold LTT)
        let out = c.fill(line, false, Some(miss.probes[0].set), &mut small);
        assert_eq!(out.probes.len(), 2, "read-modify-write of the other set");
        assert!(!out.probes[0].write);
        assert!(out.probes[1].write);
    }

    #[test]
    fn uncompressed_baseline_fill_overwrites_without_rmw() {
        let mut c = DramCacheController::new(DramCacheConfig::with_capacity(
            Organization::UncompressedAlloy,
            1 << 16,
        ));
        let mut sizes = Fixed(64);
        let out = c.fill(77, false, None, &mut sizes);
        assert_eq!(out.probes.len(), 1);
        assert!(out.probes[0].write);
    }

    #[test]
    fn uncompressed_conflict_evicts_dirty_to_memory() {
        let mut c = DramCacheController::new(DramCacheConfig::with_capacity(
            Organization::UncompressedAlloy,
            1 << 16,
        ));
        let mut sizes = Fixed(64);
        let sets = c.num_sets();
        c.writeback(5, &mut sizes); // dirty line 5
        let out = c.fill(5 + sets, false, None, &mut sizes); // same TSI set
        assert_eq!(out.memory_writebacks, vec![5]);
    }

    #[test]
    fn writeback_updates_resident_line_in_place() {
        let mut c = dice_cache();
        let mut sizes = Fixed(30);
        let line = noninvariant_line(&c);
        c.fill(line, false, None, &mut sizes); // clean, at BAI
        let out = c.writeback(line, &mut sizes);
        assert!(out.memory_writebacks.is_empty());
        assert_eq!(c.stats().wpred_scored, 1);
        assert_eq!(
            c.stats().wpred_correct,
            1,
            "size-based write prediction finds it"
        );
        // Evicting it later must yield a memory writeback (it is dirty now).
        assert_eq!(out.probes.len(), 2); // RMW of the predicted set
    }

    #[test]
    fn writeback_mispredicts_when_compressibility_changed() {
        let mut c = dice_cache();
        let line = noninvariant_line(&c);
        let mut big = Fixed(64);
        c.fill(line, false, None, &mut big); // installed at TSI
                                             // The line's data "became" compressible: write prediction now says
                                             // BAI, but the line lives at TSI.
        let mut small = Fixed(20);
        let out = c.writeback(line, &mut small);
        assert_eq!(c.stats().wpred_scored, 1);
        assert_eq!(c.stats().wpred_correct, 0);
        assert_eq!(out.probes.len(), 3, "probe predicted, probe actual, write");
    }

    #[test]
    fn effective_capacity_exceeds_one_line_per_set_when_compressible() {
        let mut c = dice_cache();
        let mut sizes = Fixed(16);
        let sets = c.num_sets();
        // Fill twice the baseline capacity with compressible lines.
        for line in 0..(2 * sets) {
            c.fill(line, false, None, &mut sizes);
        }
        let ratio = c.valid_lines() as f64 / sets as f64;
        assert!(ratio > 1.5, "compressed capacity ratio {ratio} too low");
    }

    #[test]
    fn incompressible_fill_capacity_matches_baseline() {
        let mut c = DramCacheController::new(DramCacheConfig::with_capacity(
            Organization::CompressedTsi,
            1 << 16,
        ));
        let mut sizes = Fixed(64);
        let sets = c.num_sets();
        for line in 0..(2 * sets) {
            c.fill(line, false, None, &mut sizes);
        }
        assert_eq!(c.valid_lines(), sets, "raw lines: exactly one per set");
    }

    #[test]
    fn format_constants() {
        assert_eq!(DramCacheController::max_lines_per_set(), 28);
        assert_eq!(DramCacheController::set_bytes(), 72);
    }

    #[test]
    fn row_mapping_groups_28_sets() {
        let c = dice_cache();
        assert_eq!(c.row_of(0), 0);
        assert_eq!(c.row_of(27), 0);
        assert_eq!(c.row_of(28), 1);
    }

    #[test]
    fn audit_of_healthy_cache_is_clean() {
        for org in [
            Organization::UncompressedAlloy,
            Organization::CompressedTsi,
            Organization::CompressedNsi,
            Organization::CompressedBai,
            Organization::Dice { threshold: 36 },
            Organization::Scc,
        ] {
            let mut c = DramCacheController::new(DramCacheConfig::with_capacity(org, 1 << 16));
            let mut sizes = Fixed(30);
            for line in 0..4096u64 {
                c.fill(line * 3, false, None, &mut sizes);
                if line % 5 == 0 {
                    c.writeback(line * 3, &mut sizes);
                }
            }
            assert_eq!(c.audit(&mut sizes), vec![], "org {org:?} audit dirty");
        }
    }

    #[test]
    fn audit_is_read_only() {
        let mut c = dice_cache();
        let mut sizes = Fixed(30);
        for line in 0..512u64 {
            c.fill(line, false, None, &mut sizes);
        }
        let before = (c.valid_lines(), *c.stats());
        let _ = c.audit(&mut sizes);
        assert_eq!(before.0, c.valid_lines());
        assert_eq!(&before.1, c.stats());
    }

    #[test]
    fn injected_tag_flip_is_detected_and_recoverable() {
        let mut c = dice_cache();
        let mut sizes = Fixed(30);
        // Stride-4 fill: the flipped address `old ^ 2` is never a
        // legitimately resident line, so the final read must miss.
        for line in 0..2048u64 {
            c.fill(line * 4, false, None, &mut sizes);
        }
        let (set, old, new) = c.inject_tag_flip(0xD1CE).expect("cache is populated");
        assert_eq!(old ^ new, 2, "injector flips bit 1");
        let violations = c.audit(&mut sizes);
        assert!(
            violations.iter().any(|v| v.set == set),
            "flip in set {set} not reported: {violations:?}"
        );
        // Recovery: invalidating the poisoned set restores a clean audit.
        let dropped = c.invalidate_set(set);
        assert!(dropped > 0);
        assert_eq!(c.audit(&mut sizes), vec![]);
        // The flipped line now misses and can refill from memory.
        assert!(!c.read(new).hit);
    }

    #[test]
    fn tag_flip_detected_in_every_organization() {
        for org in [
            Organization::UncompressedAlloy,
            Organization::CompressedTsi,
            Organization::CompressedNsi,
            Organization::CompressedBai,
            Organization::Scc,
        ] {
            let mut c = DramCacheController::new(DramCacheConfig::with_capacity(org, 1 << 16));
            let mut sizes = Fixed(30);
            for line in 0..1024u64 {
                c.fill(line * 7, false, None, &mut sizes);
            }
            let (set, ..) = c.inject_tag_flip(42).expect("populated");
            assert!(
                c.audit(&mut sizes).iter().any(|v| v.set == set),
                "org {org:?} missed the flip"
            );
        }
    }

    #[test]
    fn size_lie_overpacks_and_honest_audit_catches_it() {
        let mut c = dice_cache();
        let mut honest = Fixed(30);
        // Fill through a lying oracle: ~1/4 of lines claim 1 B, so sets
        // pack more lines than 72 B truly holds.
        {
            let mut liar = crate::LyingSizes::new(&mut honest, 0xD1CE);
            for line in 0..4096u64 {
                c.fill(line, false, None, &mut liar);
            }
        }
        let violations = c.audit(&mut honest);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v.kind, InvariantKind::OverCapacity { .. })),
            "no over-capacity violation from a lying size oracle"
        );
        // Recovery: clear every violating set, then the audit is clean.
        let mut sets: Vec<_> = violations.iter().map(|v| v.set).collect();
        sets.dedup();
        for s in sets {
            c.invalidate_set(s);
        }
        assert_eq!(c.audit(&mut honest), vec![]);
    }

    #[test]
    fn inject_into_empty_cache_is_none() {
        let mut c = dice_cache();
        assert_eq!(c.inject_tag_flip(1), None);
    }

    #[test]
    fn diagnostics_cross_check_registry_counters() {
        let mut c = dice_cache();
        // A mixed-compressibility workload with rereads so the CIP both
        // scores predictions and mispredicts occasionally.
        for i in 0..4096u64 {
            let line = (i * 37) % 3000;
            let mut sizes = Fixed(if line % 3 == 0 { 64 } else { 28 });
            if !c.read(line).hit {
                c.fill(line, false, None, &mut sizes);
            }
            if i % 11 == 0 {
                c.writeback(line, &mut sizes);
            }
        }
        let d = *c.diagnostics();
        // Read confusion matrix ≡ the CIP's own scoring.
        assert_eq!(d.read_predictions(), c.cip_predictions());
        assert_eq!(d.read_correct(), c.cip_correct());
        assert!(d.read_predictions() > 0);
        assert_eq!(d.read_accuracy(), c.cip_accuracy());
        // Hit attribution partitions the demand hits.
        assert_eq!(
            d.hits_at_bai + d.hits_at_tsi + d.hits_invariant,
            c.stats().read_hits
        );
        assert_eq!(d.read_misses, c.stats().reads - c.stats().read_hits);
        // Second probes split by path, totalling the flat counter.
        assert_eq!(
            d.second_probe_reads + d.second_probe_writes,
            c.stats().second_probes
        );
        // Bloat causes never exceed the total bloat.
        assert!(d.bytes_moved >= d.bytes_needed);
        assert!(d.bloat_second_probe_bytes + d.bloat_rmw_bytes <= d.bloat_bytes());
        assert!(d.bloat_factor() > 1.0);
    }

    #[test]
    fn diagnostics_fill_matrix_counts_consulted_fills() {
        let mut c = dice_cache();
        let mut consulted = 0u64;
        for i in 0..2048u64 {
            let line = i * 3;
            let mut sizes = Fixed(if i % 2 == 0 { 20 } else { 64 });
            c.fill(line, false, None, &mut sizes);
            if !c.ix.invariant(line) {
                consulted += 1;
            }
        }
        let d = c.diagnostics();
        assert_eq!(d.consulted_fills(), consulted);
        assert!(consulted > 0);
        // Both install decisions appear in the matrix.
        assert!(d.cip_fill_bai_bai + d.cip_fill_tsi_bai > 0);
        assert!(d.cip_fill_bai_tsi + d.cip_fill_tsi_tsi > 0);
    }
}
