//! A small vector with inline storage for per-access outcome buffers.
//!
//! Every DRAM-cache operation reports its probes, free lines and memory
//! writebacks. With `Vec` those reports cost one-to-three heap allocations
//! per simulated access; [`InlineVec`] keeps the common case (a handful of
//! elements) on the stack and falls back to a heap `Vec` only past its
//! inline capacity, so steady-state access handling allocates nothing.

/// A vector storing up to `N` elements inline, spilling to the heap beyond.
///
/// Semantically interchangeable with `Vec<T>` for the operations the
/// outcome types need: push, iteration, slice access and equality (which
/// compares *contents*, never representation). `T: Copy + Default` keeps
/// the implementation free of `unsafe` (the crate forbids it): the inline
/// array is default-initialized and elements are copied in.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    repr: Repr<T, N>,
}

#[derive(Clone)]
enum Repr<T: Copy + Default, const N: usize> {
    Inline { buf: [T; N], len: usize },
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    #[must_use]
    pub fn new() -> Self {
        Self {
            repr: Repr::Inline {
                buf: [T::default(); N],
                len: 0,
            },
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True when no element is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when elements live in the inline buffer (introspection for the
    /// allocation-free tests).
    #[must_use]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Appends `value`, moving all elements to the heap only when the
    /// inline capacity `N` is exceeded.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len < N {
                    buf[*len] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..*len]);
                    v.push(value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Inserts `value` at `index`, shifting everything after it right.
    /// Spills to the heap only when the inline capacity `N` is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `index > len` (matching `Vec::insert`).
    pub fn insert(&mut self, index: usize, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                assert!(index <= *len, "insertion index out of bounds");
                if *len < N {
                    buf.copy_within(index..*len, index + 1);
                    buf[index] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..*len]);
                    v.insert(index, value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.insert(index, value),
        }
    }

    /// Removes and returns the last element, or `None` when empty. Never
    /// changes representation (a spilled vector keeps its heap storage).
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(buf[*len])
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Removes all elements, keeping the current representation's storage.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Heap(v) => v.clear(),
        }
    }

    /// The elements as a contiguous slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { buf, len } => &buf[..*len],
            Repr::Heap(v) => v,
        }
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> core::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + core::fmt::Debug, const N: usize> core::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.as_slice().fmt(f)
    }
}

// Equality is over contents: two InlineVecs compare equal regardless of
// whether either has spilled, and comparisons against Vec/slices/arrays
// keep existing call sites and tests source-compatible.

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<InlineVec<T, M>>
    for InlineVec<T, N>
{
    fn eq(&self, other: &InlineVec<T, M>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<InlineVec<T, N>> for Vec<T> {
    fn eq(&self, other: &InlineVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<&[T]> for InlineVec<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for InlineVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// By-value iterator over an [`InlineVec`] (elements are `Copy`).
pub struct IntoIter<T: Copy + Default, const N: usize> {
    vec: InlineVec<T, N>,
    next: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let v = self.vec.as_slice().get(self.next).copied()?;
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len() - self.next;
        (rem, Some(rem))
    }
}

impl<T: Copy + Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { vec: self, next: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
            assert!(v.is_inline());
        }
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i * 10);
        }
        assert!(!v.is_inline());
        assert_eq!(v, vec![0, 10, 20, 30, 40]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn equality_ignores_representation() {
        let mut a: InlineVec<u32, 2> = (0..5).collect();
        let b: InlineVec<u32, 8> = (0..5).collect();
        assert!(!a.is_inline());
        assert!(b.is_inline());
        assert_eq!(a, b);
        a.push(9);
        assert_ne!(a, b);
    }

    #[test]
    fn clear_keeps_heap_storage_reusable() {
        let mut v: InlineVec<u8, 1> = (0..4).collect();
        assert!(!v.is_inline());
        v.clear();
        assert!(v.is_empty());
        assert!(
            !v.is_inline(),
            "clear must not shrink back (capacity reuse)"
        );
        v.push(7);
        assert_eq!(v, vec![7]);
    }

    #[test]
    fn by_value_iteration_yields_all_elements() {
        let v: InlineVec<u16, 3> = (0..7).collect();
        let collected: Vec<u16> = v.into_iter().collect();
        assert_eq!(collected, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn insert_shifts_and_spills_like_vec() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        let mut reference: Vec<u32> = Vec::new();
        for (idx, value) in [(0, 10), (0, 5), (2, 20), (1, 7), (4, 30), (0, 1)] {
            v.insert(idx, value);
            reference.insert(idx, value);
            assert_eq!(v, reference);
        }
        assert!(!v.is_inline(), "six elements must have spilled");
    }

    #[test]
    fn pop_removes_last_in_both_representations() {
        let mut v: InlineVec<u32, 2> = (0..4).collect();
        assert_eq!(v.pop(), Some(3));
        assert!(!v.is_inline(), "pop never un-spills");
        let mut w: InlineVec<u32, 4> = (0..2).collect();
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(0));
        assert_eq!(w.pop(), None);
        assert!(w.is_inline());
    }

    #[test]
    fn slice_access_via_deref() {
        let v: InlineVec<u32, 4> = (0..3).collect();
        assert_eq!(v.last(), Some(&2));
        assert_eq!(&v[..2], &[0, 1]);
    }
}
