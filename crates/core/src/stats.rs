//! Statistics for the DRAM-cache controller.

use dice_obs::{impl_snapshot, ratio};

/// Counters accumulated by [`DramCacheController`](crate::DramCacheController).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L4Stats {
    /// Demand reads received from the L3.
    pub reads: u64,
    /// Demand reads that hit (in either index location).
    pub read_hits: u64,
    /// Reads that needed a second set probe (CIP misprediction with the
    /// line in the alternate set, or a KNL-style both-location miss check).
    pub second_probes: u64,
    /// Installs from main memory.
    pub fills: u64,
    /// Dirty writebacks received from the L3.
    pub writebacks: u64,
    /// Extra adjacent lines delivered free with a compressed-pair hit.
    pub free_lines: u64,
    /// Install decisions where TSI and BAI coincide (no choice needed).
    pub installs_invariant: u64,
    /// Installs placed at the TSI index (incompressible side).
    pub installs_tsi: u64,
    /// Installs placed at the BAI index (compressible side).
    pub installs_bai: u64,
    /// Dirty victims evicted to main memory.
    pub memory_writebacks: u64,
    /// Write-index predictions scored (non-invariant resident lines).
    pub wpred_scored: u64,
    /// Of those, predictions that found the line on the first probe.
    pub wpred_correct: u64,
}

impl_snapshot!(L4Stats {
    reads: Monotonic,
    read_hits: Monotonic,
    second_probes: Monotonic,
    fills: Monotonic,
    writebacks: Monotonic,
    free_lines: Monotonic,
    installs_invariant: Monotonic,
    installs_tsi: Monotonic,
    installs_bai: Monotonic,
    memory_writebacks: Monotonic,
    wpred_scored: Monotonic,
    wpred_correct: Monotonic,
});

impl L4Stats {
    /// Read hit rate in [0, 1] (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        ratio(self.read_hits, self.reads)
    }

    /// Write-predictor accuracy in [0, 1] (0 when nothing was scored, per
    /// the workspace-wide idle convention of [`dice_obs::ratio`]).
    #[must_use]
    pub fn write_prediction_accuracy(&self) -> f64 {
        ratio(self.wpred_correct, self.wpred_scored)
    }

    /// Total install decisions.
    #[must_use]
    pub fn installs(&self) -> u64 {
        self.installs_invariant + self.installs_tsi + self.installs_bai
    }

    /// Counter-wise difference `self - earlier`.
    #[must_use]
    pub fn delta_since(&self, earlier: &L4Stats) -> L4Stats {
        dice_obs::delta(self, earlier)
    }
}

#[cfg(test)]
mod tests {
    use dice_obs::Snapshot;

    use super::*;

    #[test]
    fn rates_when_idle() {
        let s = L4Stats::default();
        assert_eq!(s.hit_rate(), 0.0);
        // Idle convention is uniform across the workspace: no samples
        // means a zero rate, not an optimistic 1.0.
        assert_eq!(s.write_prediction_accuracy(), 0.0);
    }

    #[test]
    fn installs_sum() {
        let s = L4Stats {
            installs_invariant: 5,
            installs_tsi: 3,
            installs_bai: 2,
            ..L4Stats::default()
        };
        assert_eq!(s.installs(), 10);
    }

    #[test]
    fn delta_subtracts_all_fields() {
        let a = L4Stats {
            reads: 1,
            read_hits: 1,
            fills: 1,
            ..L4Stats::default()
        };
        let b = L4Stats {
            reads: 5,
            read_hits: 3,
            fills: 2,
            ..L4Stats::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.reads, 4);
        assert_eq!(d.read_hits, 2);
        assert_eq!(d.fills, 1);
    }

    #[test]
    fn snapshot_fields_cover_the_struct() {
        // 12 public counters; the Snapshot declaration must list them all
        // or delta_since silently stops subtracting the missing ones.
        assert_eq!(L4Stats::FIELDS.len(), 12);
        let mut s = L4Stats::default();
        for i in 0..L4Stats::FIELDS.len() {
            s.set_field(i, i as u64 + 1);
        }
        let zero = L4Stats::default();
        assert_eq!(s.delta_since(&zero), s);
    }
}
