//! Runtime invariant auditor for the DRAM cache.
//!
//! DICE's premise is that the memory controller may reinterpret any DRAM
//! bit as tag or data, so a single flipped tag bit or a wrong size-class
//! decision silently poisons an entire compressed set. The auditor is the
//! integrity layer's detector: an opt-in, read-only sweep over every set
//! that re-derives the invariants the controller relies on and reports
//! each violation as a structured [`InvariantViolation`] (convertible to
//! [`DiceError::Invariant`](dice_obs::DiceError)) instead of asserting.
//!
//! Checked per set:
//!
//! * **tag uniqueness** — no line address appears twice;
//! * **size accounting** — compressed occupancy ≤ 72 B
//!   ([`SET_BYTES`](crate::SET_BYTES)) and ≤ 28 lines
//!   ([`MAX_LINES_PER_SET`](crate::MAX_LINES_PER_SET), which also bounds
//!   the [`WritebackList`](crate::WritebackList) inline capacity);
//! * **BAI/TSI flag consistency** — the index scheme recorded in each
//!   entry must map the entry's line address back to the set it actually
//!   resides in;
//! * **mode coherence** — an uncompressed (baseline Alloy) set holds at
//!   most one line.
//!
//! The recovery policy lives with the caller (`dice-sim`): a violating
//! set is treated as invalid and cleared, so subsequent accesses miss and
//! refill from memory — the same degradation a real controller applies to
//! an uncorrectable-ECC TAD.

use crate::cset::SizeInfo;
use crate::indexing::SetIndex;
use crate::LineAddr;
use dice_obs::DiceError;

/// Which invariant a set violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// The same line address is tagged more than once in one set.
    DuplicateTag,
    /// Compressed contents exceed the 72 B TAD payload.
    OverCapacity {
        /// Re-derived occupancy in bytes.
        occupancy: u32,
    },
    /// More lines than the set format can reference.
    TooManyLines {
        /// Resident line count.
        count: usize,
    },
    /// An entry's recorded index scheme does not map its line address to
    /// the set it resides in (a flipped tag bit or a stale BAI/TSI flag).
    IndexMismatch {
        /// Where the recorded (line, scheme) pair says the line belongs.
        expected: SetIndex,
    },
    /// An uncompressed (baseline Alloy) set holds more than one line.
    MultiLineUncompressed {
        /// Resident line count.
        count: usize,
    },
}

/// One audit finding: which set, which line (when attributable), and what
/// was wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The set that failed the check.
    pub set: SetIndex,
    /// The offending line, for per-line checks.
    pub line: Option<LineAddr>,
    /// The violated invariant.
    pub kind: InvariantKind,
}

impl InvariantViolation {
    /// Renders the violation as the workspace's typed error.
    #[must_use]
    pub fn to_error(&self) -> DiceError {
        let detail = match (self.kind, self.line) {
            (InvariantKind::DuplicateTag, Some(l)) => {
                format!("line {l:#x} tagged more than once")
            }
            (InvariantKind::DuplicateTag, None) => "duplicate tag".to_owned(),
            (InvariantKind::OverCapacity { occupancy }, _) => {
                format!(
                    "occupancy {occupancy} B exceeds the {} B payload",
                    crate::SET_BYTES
                )
            }
            (InvariantKind::TooManyLines { count }, _) => {
                format!(
                    "{count} lines exceed the {}-line format cap",
                    crate::MAX_LINES_PER_SET
                )
            }
            (InvariantKind::IndexMismatch { expected }, Some(l)) => {
                format!("line {l:#x} belongs in set {expected} per its index flag")
            }
            (InvariantKind::IndexMismatch { expected }, None) => {
                format!("entry belongs in set {expected} per its index flag")
            }
            (InvariantKind::MultiLineUncompressed { count }, _) => {
                format!("{count} lines in an uncompressed direct-mapped set")
            }
        };
        DiceError::Invariant {
            context: format!("l4 set {}", self.set),
            detail,
        }
    }
}

/// Scratch-free duplicate scan over a small slice (sets hold ≤ 28 lines,
/// so the quadratic scan beats hashing).
pub(crate) fn first_duplicate(lines: &[LineAddr]) -> Option<LineAddr> {
    for (i, &a) in lines.iter().enumerate() {
        if lines[..i].contains(&a) {
            return Some(a);
        }
    }
    None
}

/// A [`SizeInfo`] decorator that deterministically under-reports the
/// compressed size of a subset of lines — the "size lie" fault injector.
///
/// A controller trusting a lying size oracle packs more bytes into a set
/// than the 72 B TAD can hold; auditing with the *honest* oracle then
/// re-derives the true occupancy and reports
/// [`InvariantKind::OverCapacity`]. The lie is a pure function of
/// `(line, seed)`, so runs are reproducible.
pub struct LyingSizes<'a> {
    inner: &'a mut dyn SizeInfo,
    seed: u64,
}

impl<'a> LyingSizes<'a> {
    /// Wraps `inner`, lying about roughly one line in four.
    #[must_use]
    pub fn new(inner: &'a mut dyn SizeInfo, seed: u64) -> Self {
        Self { inner, seed }
    }

    /// True when the oracle lies about this line (≈ one line in four).
    /// Public so callers can count how many faulty sizes they absorbed.
    #[must_use]
    pub fn lies_about(&self, line: LineAddr) -> bool {
        // splitmix-style hash: cheap, seeded, uniform in the low bits.
        let mut x = line ^ self.seed;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (x ^ (x >> 31)) & 3 == 0
    }
}

impl SizeInfo for LyingSizes<'_> {
    fn single_size(&mut self, line: LineAddr) -> u32 {
        if self.lies_about(line) {
            1
        } else {
            self.inner.single_size(line)
        }
    }

    fn pair_size(&mut self, even_line: LineAddr) -> u32 {
        if self.lies_about(even_line) {
            2
        } else {
            self.inner.pair_size(even_line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_renders_context() {
        let v = InvariantViolation {
            set: 12,
            line: Some(0xab),
            kind: InvariantKind::IndexMismatch { expected: 14 },
        };
        let e = v.to_error();
        let s = e.to_string();
        assert!(s.contains("l4 set 12"), "{s}");
        assert!(s.contains("set 14"), "{s}");
        assert_eq!(e.class(), dice_obs::ErrorClass::Invariant);
    }

    #[test]
    fn duplicate_scan_finds_first_repeat() {
        assert_eq!(first_duplicate(&[1, 2, 3]), None);
        assert_eq!(first_duplicate(&[1, 2, 1, 2]), Some(1));
        assert_eq!(first_duplicate(&[]), None);
    }

    #[test]
    fn lying_sizes_is_deterministic_and_partial() {
        struct Honest;
        impl SizeInfo for Honest {
            fn single_size(&mut self, _: LineAddr) -> u32 {
                64
            }
            fn pair_size(&mut self, _: LineAddr) -> u32 {
                128
            }
        }
        let mut h1 = Honest;
        let mut h2 = Honest;
        let mut a = LyingSizes::new(&mut h1, 7);
        let mut b = LyingSizes::new(&mut h2, 7);
        let lies = (0..1000u64).filter(|&l| a.single_size(l) == 1).count();
        assert!(lies > 100 && lies < 500, "lie rate {lies}/1000 off target");
        for l in 0..1000u64 {
            assert_eq!(a.single_size(l), b.single_size(l), "line {l}");
        }
    }
}
