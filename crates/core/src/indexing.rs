//! Cache set-indexing schemes: TSI, NSI and the paper's Bandwidth-Aware
//! Indexing (§4.4–4.5, Figure 6).
//!
//! * **TSI** (traditional set indexing): line `i` maps to set `i mod S`.
//!   Consecutive lines land in consecutive sets, so compressing a set only
//!   buys capacity — co-resident lines are GBs apart.
//! * **NSI** (naive spatial indexing): set `(i/2) mod S`. Adjacent lines
//!   share a set (bandwidth!), but nearly every line moves relative to TSI,
//!   so a dynamic TSI/NSI cache would have no common ground.
//! * **BAI** (bandwidth-aware indexing): adjacent lines share a set *and*
//!   half of all lines keep their TSI position, *and* a line's BAI set is
//!   always its TSI set or the adjacent one (same DRAM row, whose tag the
//!   Alloy 80 B burst delivers free).
//!
//! The BAI construction: take the pair's even-line TSI index and replace its
//! LSB with the line-address bit just above the index field,
//!
//! ```text
//! tsi(i) = i mod S
//! bai(i) = (i mod S with bit0 cleared) | bit_{log2 S}(i)
//! ```
//!
//! which reproduces Figure 6(c) exactly (verified in the tests below).

use crate::LineAddr;

/// A set index within the DRAM cache.
pub type SetIndex = u64;

/// Which indexing function located (or will locate) a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexScheme {
    /// Traditional set indexing.
    Tsi,
    /// Bandwidth-aware indexing.
    Bai,
}

impl IndexScheme {
    /// The other scheme.
    #[must_use]
    pub fn other(self) -> Self {
        match self {
            IndexScheme::Tsi => IndexScheme::Bai,
            IndexScheme::Bai => IndexScheme::Tsi,
        }
    }
}

/// Set-indexing math for a direct-mapped cache of `sets` sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Indexer {
    sets: u64,
    log2_sets: u32,
}

impl Indexer {
    /// Creates an indexer for a cache with `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two ≥ 4 (BAI needs at least one
    /// index bit above the pair bit).
    #[must_use]
    pub fn new(sets: u64) -> Self {
        assert!(
            sets.is_power_of_two() && sets >= 4,
            "sets must be a power of two >= 4"
        );
        Self {
            sets,
            log2_sets: sets.trailing_zeros(),
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Traditional set index of `line`.
    #[must_use]
    pub fn tsi(&self, line: LineAddr) -> SetIndex {
        line & (self.sets - 1)
    }

    /// Naive spatial index of `line` (pairs map to consecutive sets).
    #[must_use]
    pub fn nsi(&self, line: LineAddr) -> SetIndex {
        (line >> 1) & (self.sets - 1)
    }

    /// Bandwidth-aware index of `line`.
    #[must_use]
    pub fn bai(&self, line: LineAddr) -> SetIndex {
        let pair_even = line & (self.sets - 1) & !1;
        let injected = (line >> self.log2_sets) & 1;
        pair_even | injected
    }

    /// The set for `line` under `scheme`.
    #[must_use]
    pub fn index(&self, line: LineAddr, scheme: IndexScheme) -> SetIndex {
        match scheme {
            IndexScheme::Tsi => self.tsi(line),
            IndexScheme::Bai => self.bai(line),
        }
    }

    /// Whether `line`'s location is the same under TSI and BAI — true for
    /// exactly half of all lines, which then need no insertion decision or
    /// index prediction (§5.1).
    #[must_use]
    pub fn invariant(&self, line: LineAddr) -> bool {
        self.tsi(line) == self.bai(line)
    }

    /// The other line of `line`'s spatial pair (BAI stores both in one set).
    #[must_use]
    pub fn pair_partner(line: LineAddr) -> LineAddr {
        line ^ 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 6 uses 8 sets and lines A0–A15.
    fn fig6() -> Indexer {
        Indexer::new(8)
    }

    #[test]
    fn tsi_matches_figure_6a() {
        let ix = fig6();
        let expect = [0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7];
        for (i, &s) in expect.iter().enumerate() {
            assert_eq!(ix.tsi(i as u64), s, "TSI of A{i}");
        }
    }

    #[test]
    fn nsi_matches_figure_6b() {
        let ix = fig6();
        let expect = [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7];
        for (i, &s) in expect.iter().enumerate() {
            assert_eq!(ix.nsi(i as u64), s, "NSI of A{i}");
        }
    }

    #[test]
    fn bai_matches_figure_6c() {
        // Figure 6(c): set0={A0,A1}, set1={A8,A9}, set2={A2,A3},
        // set3={A10,A11}, set4={A4,A5}, set5={A12,A13}, set6={A6,A7},
        // set7={A14,A15}.
        let ix = fig6();
        let expect = [0, 0, 2, 2, 4, 4, 6, 6, 1, 1, 3, 3, 5, 5, 7, 7];
        for (i, &s) in expect.iter().enumerate() {
            assert_eq!(ix.bai(i as u64), s, "BAI of A{i}");
        }
    }

    #[test]
    fn bai_pairs_adjacent_lines() {
        let ix = Indexer::new(1 << 14);
        for line in (0..100_000u64).step_by(7) {
            assert_eq!(ix.bai(line & !1), ix.bai(line | 1), "pair split at {line}");
        }
    }

    #[test]
    fn bai_within_one_set_of_tsi() {
        let ix = Indexer::new(1 << 14);
        for line in 0..200_000u64 {
            let t = ix.tsi(line);
            let b = ix.bai(line);
            assert!(t.abs_diff(b) <= 1, "line {line}: tsi={t} bai={b}");
            // Stronger: they differ only in the set-index LSB.
            assert_eq!(t & !1, b & !1, "line {line}: candidates not LSB-adjacent");
        }
    }

    #[test]
    fn exactly_half_of_lines_are_invariant() {
        let ix = Indexer::new(1 << 10);
        let window = 1u64 << 16;
        let invariant = (0..window).filter(|&l| ix.invariant(l)).count() as u64;
        assert_eq!(invariant, window / 2);
    }

    #[test]
    fn exactly_one_pair_member_moves() {
        // In every pair, exactly one line keeps its TSI position (Fig 6c's
        // purple boxes) — unless the pair is wholly invariant, which never
        // happens: the two TSI positions differ, but the pair shares one
        // BAI set.
        let ix = Indexer::new(256);
        for pair in 0..50_000u64 {
            let (a, b) = (pair * 2, pair * 2 + 1);
            let kept = u32::from(ix.invariant(a)) + u32::from(ix.invariant(b));
            assert_eq!(kept, 1, "pair ({a},{b})");
        }
    }

    #[test]
    fn bai_balances_load_across_sets() {
        // Over any aligned window of 2·S consecutive lines, every set
        // receives exactly two lines (one pair) — no set is left unused
        // (the flaw a naive "even pairs keep even line's set" scheme has).
        let sets = 64u64;
        let ix = Indexer::new(sets);
        let mut count = vec![0u32; sets as usize];
        for line in 0..(2 * sets) {
            count[ix.bai(line) as usize] += 1;
        }
        assert!(count.iter().all(|&c| c == 2), "unbalanced: {count:?}");
    }

    #[test]
    fn candidate_sets_share_a_dram_row() {
        // TSI and BAI candidates are {2m, 2m+1}; with 28 sets per 2 KB row
        // (Alloy layout), both always fall in the same row.
        let ix = Indexer::new(1 << 20);
        for line in (0..1_000_000u64).step_by(997) {
            let t = ix.tsi(line) / 28;
            let b = ix.bai(line) / 28;
            assert_eq!(t, b, "line {line} candidates straddle rows");
        }
    }

    #[test]
    fn index_scheme_other_flips() {
        assert_eq!(IndexScheme::Tsi.other(), IndexScheme::Bai);
        assert_eq!(IndexScheme::Bai.other(), IndexScheme::Tsi);
    }

    #[test]
    fn pair_partner_is_involution() {
        for line in [0u64, 1, 2, 7, 100, 12345] {
            assert_eq!(Indexer::pair_partner(Indexer::pair_partner(line)), line);
        }
        assert_eq!(Indexer::pair_partner(6), 7);
        assert_eq!(Indexer::pair_partner(7), 6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Indexer::new(28);
    }
}
