//! Property-based tests for the SRAM cache model, checked against a naive
//! reference implementation of set-associative LRU.

use dice_cache::{HierarchyConfig, SetAssocCache, SramHierarchy};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A deliberately simple reference model: per-set ordered list, MRU front.
struct RefCache {
    sets: usize,
    ways: usize,
    entries: Vec<VecDeque<(u64, bool)>>,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets,
            ways,
            entries: vec![VecDeque::new(); sets],
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        (addr as usize) % self.sets
    }

    fn access(&mut self, addr: u64, write: bool) -> bool {
        let s = self.set_of(addr);
        if let Some(i) = self.entries[s].iter().position(|&(a, _)| a == addr) {
            let (a, d) = self.entries[s].remove(i).unwrap();
            self.entries[s].push_front((a, d || write));
            true
        } else {
            false
        }
    }

    fn install(&mut self, addr: u64, dirty: bool) -> Option<(u64, bool)> {
        let s = self.set_of(addr);
        if let Some(i) = self.entries[s].iter().position(|&(a, _)| a == addr) {
            let (a, d) = self.entries[s].remove(i).unwrap();
            self.entries[s].push_front((a, d || dirty));
            return None;
        }
        let victim = if self.entries[s].len() == self.ways {
            self.entries[s].pop_back()
        } else {
            None
        };
        self.entries[s].push_front((addr, dirty));
        victim
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(u8, bool),
    Install(u8, bool),
    Invalidate(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<bool>()).prop_map(|(a, w)| Op::Access(a, w)),
            (any::<u8>(), any::<bool>()).prop_map(|(a, d)| Op::Install(a, d)),
            any::<u8>().prop_map(Op::Invalidate),
        ],
        1..500,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matches_reference_lru(ops in arb_ops()) {
        // 16 sets x 4 ways of 64 B lines.
        let mut dut = SetAssocCache::new(16 * 4 * 64, 4);
        let mut reference = RefCache::new(16, 4);
        for op in ops {
            match op {
                Op::Access(a, w) => {
                    prop_assert_eq!(
                        dut.access(u64::from(a), w),
                        reference.access(u64::from(a), w)
                    );
                }
                Op::Install(a, d) => {
                    let v_dut = dut.install(u64::from(a), d);
                    let v_ref = reference.install(u64::from(a), d);
                    prop_assert_eq!(v_dut.map(|v| (v.addr, v.dirty)), v_ref);
                }
                Op::Invalidate(a) => {
                    let s = reference.set_of(u64::from(a));
                    let i = reference.entries[s].iter().position(|&(x, _)| x == u64::from(a));
                    let v_ref = i.map(|i| reference.entries[s].remove(i).unwrap());
                    let v_dut = dut.invalidate(u64::from(a));
                    prop_assert_eq!(v_dut.map(|v| (v.addr, v.dirty)), v_ref);
                }
            }
        }
    }

    #[test]
    fn occupancy_never_exceeds_geometry(ops in arb_ops()) {
        let mut dut = SetAssocCache::new(8 * 2 * 64, 2);
        for op in ops {
            match op {
                Op::Access(a, w) => {
                    dut.access(u64::from(a), w);
                }
                Op::Install(a, d) => {
                    dut.install(u64::from(a), d);
                }
                Op::Invalidate(a) => {
                    dut.invalidate(u64::from(a));
                }
            }
            prop_assert!(dut.valid_lines() <= 16);
        }
    }

    #[test]
    fn hierarchy_never_loses_dirty_lines(writes in proptest::collection::vec(0u8..64, 1..200)) {
        // Every line written must eventually be either resident somewhere
        // or surfaced as an L4 writeback — never silently dropped.
        let mut h = SramHierarchy::new(&HierarchyConfig {
            cores: 1,
            l1_bytes: 4 * 64,
            l1_ways: 2,
            l2_bytes: 8 * 64,
            l2_ways: 2,
            l3_bytes: 16 * 64,
            l3_ways: 2,
        });
        let mut written = std::collections::HashSet::new();
        let mut surfaced = std::collections::HashSet::new();
        for &w in &writes {
            let addr = u64::from(w);
            if h.access(0, addr, true).is_none() {
                h.fill(0, addr, true);
            }
            written.insert(addr);
            for wb in h.take_writebacks() {
                surfaced.insert(wb);
            }
        }
        // Flush: push conflicting clean lines through every set to evict
        // all dirty state down and out.
        for round in 1..=6u64 {
            for s in 0..16u64 {
                let addr = 1000 + round * 64 + s;
                if h.access(0, addr, false).is_none() {
                    h.fill(0, addr, false);
                }
            }
        }
        for wb in h.take_writebacks() {
            surfaced.insert(wb);
        }
        for addr in written {
            let resident = h.l3_contains(addr)
                || h.access(0, addr, false).is_some();
            prop_assert!(
                resident || surfaced.contains(&addr),
                "dirty line {addr} vanished"
            );
        }
    }
}
