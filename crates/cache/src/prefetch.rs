//! L3 fetch-policy baselines for the paper's Table 7.
//!
//! DICE delivers an adjacent line into L3 *for free* when a compressed pair
//! comes back from the L4. The paper contrasts this with two conventional
//! ways of getting that extra line, both of which pay full bandwidth:
//!
//! * **next-line prefetch** — every demand L3 miss issues an additional
//!   independent request for the next line (`+1.6%` in the paper);
//! * **128 B wide fetch** — every L3 miss fetches the 128 B-aligned pair of
//!   64 B lines as two requests (`+1.9%`).

use crate::LineAddr;

/// How the L3 turns a demand miss into L4 requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum L3FetchPolicy {
    /// Fetch only the demanded line (the baseline).
    #[default]
    Demand,
    /// Also request `addr + 1` (next-line prefetcher).
    NextLine,
    /// Fetch both halves of the 128 B-aligned super-line (`addr & !1` and
    /// `addr | 1`) as two 64 B requests.
    Wide128,
}

impl L3FetchPolicy {
    /// The extra (non-demand) line this policy requests alongside a demand
    /// miss on `addr`, if any. Every policy issues at most one extra line,
    /// so the hot demand path never needs an allocated list.
    #[must_use]
    pub fn extra_fetch(self, addr: LineAddr) -> Option<LineAddr> {
        match self {
            L3FetchPolicy::Demand => None,
            L3FetchPolicy::NextLine => Some(addr + 1),
            L3FetchPolicy::Wide128 => Some(addr ^ 1),
        }
    }

    /// The extra (non-demand) line addresses this policy requests alongside
    /// a demand miss on `addr`. The demand line itself is not included.
    #[must_use]
    pub fn extra_fetches(self, addr: LineAddr) -> Vec<LineAddr> {
        self.extra_fetch(addr).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_fetches_nothing_extra() {
        assert!(L3FetchPolicy::Demand.extra_fetches(10).is_empty());
    }

    #[test]
    fn next_line_fetches_successor() {
        assert_eq!(L3FetchPolicy::NextLine.extra_fetches(10), vec![11]);
        assert_eq!(L3FetchPolicy::NextLine.extra_fetches(11), vec![12]);
    }

    #[test]
    fn wide_fetch_returns_pair_sibling() {
        assert_eq!(L3FetchPolicy::Wide128.extra_fetches(10), vec![11]);
        assert_eq!(L3FetchPolicy::Wide128.extra_fetches(11), vec![10]);
    }

    #[test]
    fn default_is_demand() {
        assert_eq!(L3FetchPolicy::default(), L3FetchPolicy::Demand);
    }
}
