//! The on-chip three-level hierarchy: private L1/L2 per core, shared L3.
//!
//! Misses fill all levels (paper §3.1: "Cache misses fill all levels of the
//! hierarchy"). Dirty victims cascade downward — L1 → L2 → L3 — and dirty
//! L3 victims are returned to the caller, which forwards them to the DRAM
//! L4 as writebacks.

use crate::set_assoc::{Eviction, SetAssocCache};
use crate::stats::CacheStats;
use crate::LineAddr;

/// Sizing of the SRAM hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (each gets a private L1 and L2).
    pub cores: usize,
    /// Private L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Private L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Shared L3 capacity in bytes.
    pub l3_bytes: usize,
    /// L3 associativity.
    pub l3_ways: usize,
}

impl HierarchyConfig {
    /// The paper's Table 2 configuration: 8 cores, 32 KB/256 KB private
    /// L1/L2 (8-way each), 8 MB shared L3 (16-way; 1 MB per core).
    #[must_use]
    pub fn paper_8core() -> Self {
        Self {
            cores: 8,
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 256 << 10,
            l2_ways: 8,
            l3_bytes: 8 << 20,
            l3_ways: 16,
        }
    }

    /// A proportionally scaled-down hierarchy for fast experiments:
    /// capacities divided by `factor` (associativities kept).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or does not divide the capacities into
    /// power-of-two set counts.
    #[must_use]
    pub fn paper_8core_scaled(factor: usize) -> Self {
        assert!(
            factor > 0 && factor.is_power_of_two(),
            "scale factor must be a power of two"
        );
        let base = Self::paper_8core();
        Self {
            l1_bytes: base.l1_bytes / factor,
            l2_bytes: base.l2_bytes / factor,
            l3_bytes: base.l3_bytes / factor,
            ..base
        }
    }
}

/// Which level serviced a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit.
    L3,
}

/// The three SRAM levels, with per-core private L1/L2.
#[derive(Debug, Clone)]
pub struct SramHierarchy {
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    /// Dirty L3 victims awaiting pickup by the L4 controller.
    pending_writebacks: Vec<LineAddr>,
}

impl SramHierarchy {
    /// Builds the hierarchy described by `cfg`, all caches empty.
    #[must_use]
    pub fn new(cfg: &HierarchyConfig) -> Self {
        Self {
            l1: (0..cfg.cores)
                .map(|_| SetAssocCache::new(cfg.l1_bytes, cfg.l1_ways))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| SetAssocCache::new(cfg.l2_bytes, cfg.l2_ways))
                .collect(),
            l3: SetAssocCache::new(cfg.l3_bytes, cfg.l3_ways),
            pending_writebacks: Vec::new(),
        }
    }

    /// Services a demand access from `core`. Returns the hit level, or
    /// `None` on an L3 miss (the caller must fetch from L4/memory and then
    /// call [`fill`](Self::fill)).
    ///
    /// On an L2 or L3 hit the line is promoted into the upper levels,
    /// cascading victims downward.
    pub fn access(&mut self, core: usize, addr: LineAddr, is_write: bool) -> Option<HitLevel> {
        if self.l1[core].access(addr, is_write) {
            return Some(HitLevel::L1);
        }
        if self.l2[core].access(addr, false) {
            self.promote_to_l1(core, addr, is_write);
            return Some(HitLevel::L2);
        }
        if self.l3.access(addr, false) {
            self.promote_to_l2(core, addr);
            self.promote_to_l1(core, addr, is_write);
            return Some(HitLevel::L3);
        }
        None
    }

    /// Fills `addr` into all levels after an L4/memory fetch (write misses
    /// allocate dirty in L1, as write-allocate requires).
    pub fn fill(&mut self, core: usize, addr: LineAddr, is_write: bool) {
        self.install_l3(addr, false);
        self.promote_to_l2(core, addr);
        self.promote_to_l1(core, addr, is_write);
    }

    /// Installs `addr` into the shared L3 only — the path DICE uses for the
    /// *extra* line obtained free from a compressed-pair L4 hit (§6.4: both
    /// lines are installed in L3, improving its hit rate).
    pub fn fill_l3_only(&mut self, addr: LineAddr) {
        self.install_l3(addr, false);
    }

    /// Probes only the shared L3 (the entry point when the simulator drives
    /// the hierarchy with a post-L2 miss stream; see DESIGN.md §3). Returns
    /// `true` on a hit, updating recency and dirtiness.
    pub fn l3_access(&mut self, addr: LineAddr, is_write: bool) -> bool {
        self.l3.access(addr, is_write)
    }

    /// Installs `addr` into the shared L3 with explicit dirtiness; dirty
    /// victims are queued for [`take_writebacks`](Self::take_writebacks).
    pub fn l3_fill(&mut self, addr: LineAddr, dirty: bool) {
        self.install_l3(addr, dirty);
    }

    fn promote_to_l1(&mut self, core: usize, addr: LineAddr, is_write: bool) {
        if let Some(v) = self.l1[core].install(addr, is_write) {
            if v.dirty {
                // Dirty L1 victim: write through to L2 (allocating).
                self.absorb_into_l2(core, v);
            }
        }
    }

    fn promote_to_l2(&mut self, core: usize, addr: LineAddr) {
        if let Some(v) = self.l2[core].install(addr, false) {
            if v.dirty {
                self.absorb_into_l3(v);
            }
        }
    }

    fn absorb_into_l2(&mut self, core: usize, wb: Eviction) {
        if self.l2[core].contains(wb.addr) {
            self.l2[core].access(wb.addr, true);
        } else if let Some(v) = self.l2[core].install(wb.addr, true) {
            if v.dirty {
                self.absorb_into_l3(v);
            }
        }
    }

    fn absorb_into_l3(&mut self, wb: Eviction) {
        if self.l3.contains(wb.addr) {
            self.l3.access(wb.addr, true);
        } else {
            self.install_l3(wb.addr, true);
        }
    }

    fn install_l3(&mut self, addr: LineAddr, dirty: bool) {
        if let Some(v) = self.l3.install(addr, dirty) {
            if v.dirty {
                self.pending_writebacks.push(v.addr);
            }
        }
    }

    /// Drains dirty L3 victims produced since the last call; the L4
    /// controller turns each into a DRAM-cache write.
    pub fn take_writebacks(&mut self) -> Vec<LineAddr> {
        std::mem::take(&mut self.pending_writebacks)
    }

    /// [`take_writebacks`](Self::take_writebacks) into a caller-owned
    /// buffer, so a reused buffer makes the steady-state drain
    /// allocation-free (`take_writebacks` hands out a fresh `Vec` each
    /// call).
    pub fn drain_writebacks_into(&mut self, out: &mut Vec<LineAddr>) {
        out.append(&mut self.pending_writebacks);
    }

    /// Whether `addr` is resident in the shared L3 (no side effects).
    #[must_use]
    pub fn l3_contains(&self, addr: LineAddr) -> bool {
        self.l3.contains(addr)
    }

    /// Statistics of the shared L3.
    #[must_use]
    pub fn l3_stats(&self) -> &CacheStats {
        self.l3.stats()
    }

    /// Statistics of `core`'s private L1.
    #[must_use]
    pub fn l1_stats(&self, core: usize) -> &CacheStats {
        self.l1[core].stats()
    }

    /// Statistics of `core`'s private L2.
    #[must_use]
    pub fn l2_stats(&self, core: usize) -> &CacheStats {
        self.l2[core].stats()
    }

    /// Resets statistics on every level (end of warm-up).
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1 {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        self.l3.reset_stats();
    }

    /// Audits every level's structural invariants (see
    /// [`SetAssocCache::audit`]), wrapping each finding in a typed
    /// [`DiceError::Invariant`](dice_obs::DiceError) whose context names
    /// the level (`l3`, `l1[2]`, …). A clean hierarchy returns an empty
    /// vector.
    #[must_use]
    pub fn audit(&self) -> Vec<dice_obs::DiceError> {
        let mut out = Vec::new();
        let mut collect = |context: String, cache: &SetAssocCache| {
            for (set, detail) in cache.audit() {
                out.push(dice_obs::DiceError::Invariant {
                    context: context.clone(),
                    detail: format!("set {set}: {detail}"),
                });
            }
        };
        for (i, c) in self.l1.iter().enumerate() {
            collect(format!("l1[{i}]"), c);
        }
        for (i, c) in self.l2.iter().enumerate() {
            collect(format!("l2[{i}]"), c);
        }
        collect("l3".to_owned(), &self.l3);
        out
    }

    /// Fault injector: flips a set-index bit of one resident L3 tag (see
    /// [`SetAssocCache::inject_tag_flip`]); the corruption is detected by
    /// [`audit`](Self::audit) as an L3 index mismatch.
    pub fn l3_inject_tag_flip(&mut self, seed: u64) -> Option<(usize, LineAddr, LineAddr)> {
        self.l3.inject_tag_flip(seed)
    }

    /// Integrity recovery: audits the shared L3 and drops every set that
    /// failed (its metadata — addresses and dirty bits — is untrusted),
    /// so subsequent accesses miss and refetch. Returns the number of
    /// lines dropped; 0 means the L3 was clean.
    pub fn l3_scrub(&mut self) -> usize {
        let mut sets: Vec<usize> = self.l3.audit().into_iter().map(|(s, _)| s).collect();
        sets.dedup();
        sets.into_iter().map(|s| self.l3.clear_set(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SramHierarchy {
        SramHierarchy::new(&HierarchyConfig {
            cores: 2,
            l1_bytes: 4 * 64,
            l1_ways: 2,
            l2_bytes: 16 * 64,
            l2_ways: 2,
            l3_bytes: 64 * 64,
            l3_ways: 4,
        })
    }

    #[test]
    fn cold_miss_then_fill_then_l1_hit() {
        let mut h = tiny();
        assert_eq!(h.access(0, 42, false), None);
        h.fill(0, 42, false);
        assert_eq!(h.access(0, 42, false), Some(HitLevel::L1));
    }

    #[test]
    fn shared_l3_serves_other_core() {
        let mut h = tiny();
        h.fill(0, 42, false);
        // Core 1 never touched the line: private levels miss, shared L3 hits.
        assert_eq!(h.access(1, 42, false), Some(HitLevel::L3));
        // And it is promoted into core 1's private levels.
        assert_eq!(h.access(1, 42, false), Some(HitLevel::L1));
    }

    #[test]
    fn l1_eviction_falls_to_l2() {
        let mut h = tiny();
        // L1 has 2 sets × 2 ways. Fill set 0 (even addresses) thrice.
        h.fill(0, 0, false);
        h.fill(0, 2, false);
        h.fill(0, 4, false); // evicts line 0 from L1
        assert_eq!(h.access(0, 0, false), Some(HitLevel::L2));
    }

    #[test]
    fn dirty_l3_victims_surface_as_writebacks() {
        let mut h = tiny();
        // Make a line dirty, then flood L3's set with conflicting installs.
        h.fill(0, 0, true);
        // Push it out of L1 and L2 via conflicting fills, then out of L3.
        // L3 has 16 sets × 4 ways; lines congruent mod 16 collide.
        for i in 1..=40u64 {
            h.fill(0, i * 16, false);
        }
        let wbs = h.take_writebacks();
        assert!(
            wbs.contains(&0),
            "dirty line 0 should be written back, got {wbs:?}"
        );
        assert!(h.take_writebacks().is_empty(), "drain empties the queue");
    }

    #[test]
    fn fill_l3_only_leaves_private_levels_cold() {
        let mut h = tiny();
        h.fill_l3_only(7);
        assert!(h.l3_contains(7));
        assert_eq!(h.access(0, 7, false), Some(HitLevel::L3));
    }

    #[test]
    fn write_allocates_dirty() {
        let mut h = tiny();
        assert_eq!(h.access(0, 3, true), None);
        h.fill(0, 3, true);
        // Force the dirty line down the hierarchy and out of L3.
        for i in 1..=48u64 {
            h.fill(0, 3 + i * 16, false);
            // Keep L1/L2 churning so line 3 eventually falls to L3.
            h.fill(0, 3 + i * 2, false);
        }
        let wbs = h.take_writebacks();
        assert!(
            wbs.contains(&3),
            "written line must eventually write back, got {wbs:?}"
        );
    }

    #[test]
    fn paper_config_shapes() {
        let cfg = HierarchyConfig::paper_8core();
        let h = SramHierarchy::new(&cfg);
        assert_eq!(h.l1.len(), 8);
        assert_eq!(h.l2.len(), 8);
        assert_eq!(h.l3.sets() * h.l3.ways() * 64, 8 << 20);
    }

    #[test]
    fn scaled_config_divides_capacity() {
        let cfg = HierarchyConfig::paper_8core_scaled(16);
        assert_eq!(cfg.l3_bytes, (8 << 20) / 16);
        let _ = SramHierarchy::new(&cfg); // constructible
    }

    #[test]
    fn healthy_hierarchy_audits_clean() {
        let mut h = tiny();
        for i in 0..200u64 {
            h.access(0, i * 3, i % 7 == 0);
            h.fill(i as usize % 2, i * 3, false);
        }
        assert_eq!(h.audit(), vec![]);
    }

    #[test]
    fn l3_tag_flip_is_detected_and_recoverable() {
        let mut h = tiny();
        for i in 0..64u64 {
            h.fill_l3_only(i * 2);
        }
        let (_, _, new) = h.l3_inject_tag_flip(99).expect("l3 populated");
        let violations = h.audit();
        assert!(
            violations.iter().any(
                |e| matches!(e, dice_obs::DiceError::Invariant { context, .. } if context == "l3")
            ),
            "flip not attributed to l3: {violations:?}"
        );
        // Recovery: scrub the untrusted sets; the audit is clean again and
        // the corrupted address misses (refetch path).
        assert!(h.l3_scrub() > 0);
        assert_eq!(h.audit(), vec![]);
        assert!(!h.l3_contains(new));
    }
}
