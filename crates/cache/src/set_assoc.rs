//! Generic set-associative cache with true-LRU replacement.

use crate::stats::CacheStats;
use crate::LineAddr;

/// A victim produced by an install or invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line address of the evicted block.
    pub addr: LineAddr,
    /// Whether the block was dirty (needs a writeback to the next level).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    addr: LineAddr,
    dirty: bool,
    /// Monotonic recency stamp; larger = more recently used.
    stamp: u64,
}

/// A write-back, write-allocate, set-associative cache model.
///
/// Only tags are modeled (the simulator synthesizes data values separately),
/// which keeps multi-megabyte caches cheap to simulate. Ways live in one
/// contiguous array (`sets × ways`, with a per-set occupancy count) rather
/// than a `Vec` per set: set lookup is pure arithmetic, a whole set scan
/// touches one cache-resident slab, and construction performs exactly two
/// allocations regardless of set count.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    ways: usize,
    set_mask: u64,
    /// Way storage; set `s` occupies `s * ways ..` with `occ[s]` valid slots.
    ways_store: Vec<Way>,
    /// Number of valid ways per set.
    occ: Vec<u32>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways`-way associativity and
    /// 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is not a power of two or is zero.
    #[must_use]
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        let lines = capacity_bytes / 64;
        assert!(
            ways > 0 && lines >= ways,
            "cache too small for associativity"
        );
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Self {
            ways,
            set_mask: sets as u64 - 1,
            ways_store: vec![Way::default(); sets * ways],
            occ: vec![0; sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.occ.len()
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        (addr & self.set_mask) as usize
    }

    /// The valid slots of `set` as a mutable slice.
    fn slots_mut(&mut self, set: usize) -> &mut [Way] {
        let base = set * self.ways;
        &mut self.ways_store[base..base + self.occ[set] as usize]
    }

    /// The valid slots of `set`.
    fn slots(&self, set: usize) -> &[Way] {
        let base = set * self.ways;
        &self.ways_store[base..base + self.occ[set] as usize]
    }

    /// Probes for `addr`; on a hit, updates recency (and the dirty bit for
    /// writes) and returns `true`. Does **not** allocate on miss — call
    /// [`install`](Self::install) when the fill returns.
    pub fn access(&mut self, addr: LineAddr, is_write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(addr);
        let hit = self.slots_mut(set).iter_mut().find(|w| w.addr == addr);
        match hit {
            Some(w) => {
                w.stamp = clock;
                w.dirty |= is_write;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Checks residency without touching recency or statistics.
    #[must_use]
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.slots(self.set_of(addr)).iter().any(|w| w.addr == addr)
    }

    /// Installs `addr` (evicting the LRU way if the set is full). If the
    /// line is already resident, only refreshes recency/dirtiness.
    pub fn install(&mut self, addr: LineAddr, dirty: bool) -> Option<Eviction> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(addr);
        let ways = self.ways;
        if let Some(w) = self.slots_mut(set).iter_mut().find(|w| w.addr == addr) {
            w.stamp = clock;
            w.dirty |= dirty;
            return None;
        }
        let new = Way {
            addr,
            dirty,
            stamp: clock,
        };
        if (self.occ[set] as usize) < ways {
            let slot = set * ways + self.occ[set] as usize;
            self.ways_store[slot] = new;
            self.occ[set] += 1;
            return None;
        }
        // Full set: overwrite the LRU way in place. Stamps are unique (the
        // clock advances on every access and install), so the victim choice
        // matches the old remove-and-push scheme exactly.
        let (idx, victim) = self
            .slots(set)
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, w)| (i, *w))
            .expect("full set has entries");
        self.stats.evictions += 1;
        if victim.dirty {
            self.stats.dirty_evictions += 1;
        }
        self.ways_store[set * ways + idx] = new;
        Some(Eviction {
            addr: victim.addr,
            dirty: victim.dirty,
        })
    }

    /// Removes `addr` if resident, returning it (used for invalidations).
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<Eviction> {
        let set = self.set_of(addr);
        let idx = self.slots(set).iter().position(|w| w.addr == addr)?;
        let base = set * self.ways;
        let last = self.occ[set] as usize - 1;
        let v = self.ways_store[base + idx];
        // Swap the last valid slot into the hole (order is immaterial:
        // addresses are unique and recency lives in the stamps).
        self.ways_store[base + idx] = self.ways_store[base + last];
        self.occ[set] -= 1;
        Some(Eviction {
            addr: v.addr,
            dirty: v.dirty,
        })
    }

    /// Number of valid lines currently resident.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.occ.iter().map(|&o| o as usize).sum()
    }

    /// Accumulated hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. at the end of warm-up) without touching
    /// contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Audits the way slab's structural invariants, returning one
    /// human-readable detail per violation (the hierarchy wraps them in
    /// typed errors with the level name as context):
    ///
    /// * per-set occupancy within associativity (the valid/dirty partition
    ///   is sound — metadata only ever describes valid ways);
    /// * tag uniqueness within each set;
    /// * every valid way's address maps back to the set holding it;
    /// * no recency stamp from the future (stamps are issued by the
    ///   monotonic clock, so a larger one means corrupted metadata).
    ///
    /// Read-only and allocation-free until the first violation. Each
    /// finding reports the violating set (for set-granular recovery via
    /// [`clear_set`](Self::clear_set)) and a human-readable detail.
    #[must_use]
    pub fn audit(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for set in 0..self.sets() {
            if self.occ[set] as usize > self.ways {
                out.push((
                    set,
                    format!("occupancy {} exceeds {} ways", self.occ[set], self.ways),
                ));
                continue; // slots() would index out of the set's slab region
            }
            let slots = self.slots(set);
            for (i, w) in slots.iter().enumerate() {
                if slots[..i].iter().any(|o| o.addr == w.addr) {
                    out.push((set, format!("line {:#x} tagged twice", w.addr)));
                }
                if self.set_of(w.addr) != set {
                    out.push((
                        set,
                        format!("line {:#x} belongs in set {}", w.addr, self.set_of(w.addr)),
                    ));
                }
                if w.stamp > self.clock {
                    out.push((
                        set,
                        format!(
                            "line {:#x} stamped {} past clock {}",
                            w.addr, w.stamp, self.clock
                        ),
                    ));
                }
            }
        }
        out
    }

    /// Integrity recovery: drops every way of `set` without writebacks
    /// (the set's metadata is untrusted, dirty bits included), returning
    /// the number of lines dropped. Subsequent accesses miss and refetch.
    pub fn clear_set(&mut self, set: usize) -> usize {
        let n = self.occ[set] as usize;
        self.occ[set] = 0;
        n
    }

    /// Fault injector: flips the lowest set-index bit of one resident
    /// way's address, chosen pseudo-randomly from `seed`, so the tag no
    /// longer maps to the set holding it. Returns `(set, old, new)`, or
    /// `None` when the cache is empty or direct-indexed with a single set
    /// (no index bit to corrupt).
    pub fn inject_tag_flip(&mut self, seed: u64) -> Option<(usize, LineAddr, LineAddr)> {
        if self.set_mask == 0 {
            return None;
        }
        let sets = self.sets();
        let start = (seed % sets as u64) as usize;
        for off in 0..sets {
            let set = (start + off) % sets;
            let occ = self.occ[set] as usize;
            if occ == 0 {
                continue;
            }
            let idx = (seed >> 32) as usize % occ;
            let w = &mut self.ways_store[set * self.ways + idx];
            let old = w.addr;
            w.addr ^= 1;
            return Some((set, old, w.addr));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_install_then_hit() {
        let mut c = SetAssocCache::new(64 * 64, 4);
        assert!(!c.access(100, false));
        assert_eq!(c.install(100, false), None);
        assert!(c.access(100, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: addresses spaced by set count collide.
        let mut c = SetAssocCache::new(2 * 64, 2);
        assert_eq!(c.sets(), 1);
        c.install(1, false);
        c.install(2, false);
        c.access(1, false); // 1 is now MRU
        let v = c.install(3, false).expect("eviction");
        assert_eq!(v.addr, 2);
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn write_sets_dirty_and_eviction_reports_it() {
        let mut c = SetAssocCache::new(2 * 64, 2);
        c.install(1, false);
        c.access(1, true);
        c.install(2, false);
        c.access(2, false);
        c.access(2, false);
        let v = c.install(3, false).expect("eviction");
        assert_eq!(
            v,
            Eviction {
                addr: 1,
                dirty: true
            }
        );
    }

    #[test]
    fn install_dirty_flag_is_sticky() {
        let mut c = SetAssocCache::new(2 * 64, 2);
        c.install(7, true);
        c.install(7, false); // re-install must not clear dirtiness
        let v = c.invalidate(7).expect("resident");
        assert!(v.dirty);
    }

    #[test]
    fn reinstall_does_not_duplicate() {
        let mut c = SetAssocCache::new(4 * 64, 4);
        c.install(5, false);
        c.install(5, false);
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(4 * 64, 4);
        c.install(9, false);
        assert!(c.invalidate(9).is_some());
        assert!(!c.contains(9));
        assert!(c.invalidate(9).is_none());
    }

    #[test]
    fn invalidate_middle_way_keeps_the_rest() {
        let mut c = SetAssocCache::new(4 * 64, 4); // 1 set, 4 ways
        assert_eq!(c.sets(), 1);
        for a in [10, 20, 30, 40] {
            c.install(a, false);
        }
        assert!(c.invalidate(20).is_some());
        assert_eq!(c.valid_lines(), 3);
        assert!(c.contains(10) && c.contains(30) && c.contains(40));
        // The freed slot is reusable without an eviction.
        assert_eq!(c.install(50, false), None);
        assert_eq!(c.valid_lines(), 4);
    }

    #[test]
    fn sets_partition_the_address_space() {
        let mut c = SetAssocCache::new(64 * 64, 1); // 64 direct-mapped sets
        c.install(0, false);
        c.install(64, false); // same set (64 sets apart): evicts 0
        assert!(!c.contains(0));
        c.install(1, false); // different set
        assert!(c.contains(64) && c.contains(1));
    }

    #[test]
    fn valid_lines_tracks_occupancy() {
        let mut c = SetAssocCache::new(8 * 64, 2);
        for a in 0..8 {
            c.install(a, false);
        }
        assert_eq!(c.valid_lines(), 8);
        c.install(100, false); // evicts one
        assert_eq!(c.valid_lines(), 8);
    }

    #[test]
    fn eviction_in_one_set_cannot_disturb_neighbors() {
        let mut c = SetAssocCache::new(4 * 64, 2); // 2 sets, 2 ways
        c.install(0, false); // set 0
        c.install(1, true); // set 1
        c.install(2, false); // set 0 (full)
        c.install(4, false); // set 0: evicts LRU of set 0 only
        assert!(c.contains(1), "neighbor set lost a line");
        assert_eq!(c.valid_lines(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssocCache::new(3 * 64, 1);
    }
}
