//! SRAM cache-hierarchy substrate for the DICE reproduction.
//!
//! The paper's system (Table 2) has a four-level hierarchy: private 32 KB L1
//! and 256 KB L2 per core, a shared 8 MB L3, and the 1 GB DRAM L4 this
//! project is about. This crate provides the on-chip (SRAM) part:
//!
//! * [`SetAssocCache`] — a generic set-associative, write-back,
//!   write-allocate cache with true-LRU replacement,
//! * [`SramHierarchy`] — per-core L1/L2 plus a shared L3, with dirty
//!   evictions cascading downward and L3 victims surfaced to the caller
//!   (they become L4 writebacks),
//! * [`prefetch`] — the L3 fetch-policy baselines of the paper's Table 7
//!   (next-line prefetch and 128 B wide fetch).
//!
//! Addresses everywhere are *line addresses* (byte address `>> 6`).
//!
//! # Example
//!
//! ```
//! use dice_cache::{HierarchyConfig, SramHierarchy};
//!
//! let mut h = SramHierarchy::new(&HierarchyConfig::paper_8core());
//! assert!(h.access(0, 0x40, false).is_none()); // cold miss goes to L4
//! h.fill(0, 0x40, false);
//! assert!(h.access(0, 0x40, false).is_some()); // now a hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
pub mod prefetch;
mod set_assoc;
mod stats;

pub use hierarchy::{HierarchyConfig, HitLevel, SramHierarchy};
pub use prefetch::L3FetchPolicy;
pub use set_assoc::{Eviction, SetAssocCache};
pub use stats::CacheStats;

/// A line address: the physical byte address divided by the 64 B line size.
pub type LineAddr = u64;
