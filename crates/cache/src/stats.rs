//! Hit/miss statistics shared by all SRAM cache levels.

use dice_obs::{impl_snapshot, ratio};

/// Counters for one cache (cumulative; snapshot-and-subtract for warm-up).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Evicted lines that were dirty (writebacks to the next level).
    pub dirty_evictions: u64,
}

impl_snapshot!(CacheStats {
    hits: Monotonic,
    misses: Monotonic,
    evictions: Monotonic,
    dirty_evictions: Monotonic,
});

impl CacheStats {
    /// Total demand accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 0 for an idle cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.accesses())
    }

    /// Misses per kilo-instruction given an instruction count.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        ratio(self.misses * 1000, instructions)
    }

    /// Counter-wise difference `self - earlier`.
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        dice_obs::delta(self, earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_mpki() {
        let s = CacheStats {
            hits: 75,
            misses: 25,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.mpki(10_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn idle_cache_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let a = CacheStats {
            hits: 10,
            misses: 2,
            evictions: 1,
            dirty_evictions: 0,
        };
        let b = CacheStats {
            hits: 30,
            misses: 12,
            evictions: 6,
            dirty_evictions: 3,
        };
        let d = b.delta_since(&a);
        assert_eq!(
            d,
            CacheStats {
                hits: 20,
                misses: 10,
                evictions: 5,
                dirty_evictions: 3
            }
        );
    }
}
