//! End-to-end tests: a real `Server` on an ephemeral port, driven over
//! real sockets with the crate's own client.
//!
//! The single-flight and overload tests assert on deltas of the
//! process-global engine counters (`dice_runner::engine_runs`), so every
//! test that touches those counters serializes on [`SERIAL`].

use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dice_obs::Json;
use dice_runner::{engine_runs, Runner, RunnerConfig};
use dice_serve::jobs::JobQueueConfig;
use dice_serve::{
    http_get, http_post, render_runs, validate_prometheus, ServeConfig, Server, SweepSpec,
};

/// Serializes tests that read the process-global engine counters.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A tiny sweep spec; `seed` varies the single-flight identity.
fn spec_text(seed: u64) -> String {
    format!(
        r#"{{"orgs":["base","dice36"],"workloads":["gcc"],"scale":4096,"warmup":50,"measure":150,"seed":{seed}}}"#
    )
}

struct TestServer {
    addr: String,
    handle: dice_serve::Handle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    /// Boots a server on port 0 with the given queue shape.
    fn boot(capacity: usize, sweep_workers: usize, cache_dir: Option<std::path::PathBuf>) -> Self {
        let config = ServeConfig {
            port: 0,
            conn_workers: 4,
            conn_backlog: 16,
            queue: JobQueueConfig {
                capacity,
                workers: sweep_workers,
                runner: RunnerConfig {
                    jobs: 2,
                    cache_dir,
                    verbose: false,
                    ..RunnerConfig::default()
                },
            },
        };
        let server = Server::bind(config).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound addr").to_string();
        let handle = server.handle();
        let thread = std::thread::spawn(move || {
            server.run().expect("server run");
        });
        TestServer {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    /// Drains and joins; the server thread must exit.
    fn shutdown(mut self) {
        self.handle.drain();
        let thread = self.thread.take().expect("not yet joined");
        let mut waited = 0;
        while !thread.is_finished() && waited < 3_000 {
            std::thread::sleep(Duration::from_millis(10));
            waited += 10;
        }
        assert!(thread.is_finished(), "server did not drain within 30s");
        thread.join().expect("server thread");
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.handle.drain();
            self.handle.force_cancel();
            let _ = thread.join();
        }
    }
}

/// Polls a job to `done` and returns the report body.
fn wait_report(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = http_get(addr, &format!("/v1/sweeps/{id}")).expect("GET status");
        assert_eq!(status.status, 200, "status body: {}", status.text());
        let doc = Json::parse(&status.text()).expect("status JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") => panic!("sweep failed: {}", status.text()),
            _ => {
                assert!(Instant::now() < deadline, "sweep never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let report = http_get(addr, &format!("/v1/sweeps/{id}/report")).expect("GET report");
    assert_eq!(report.status, 200);
    report.text()
}

fn submit(addr: &str, spec: &str) -> (String, bool) {
    let resp = http_post(addr, "/v1/sweeps", spec).expect("POST sweep");
    assert_eq!(resp.status, 202, "submit body: {}", resp.text());
    let doc = Json::parse(&resp.text()).expect("submit JSON");
    (
        doc.get("id")
            .and_then(Json::as_str)
            .expect("id field")
            .to_owned(),
        doc.get("coalesced") == Some(&Json::Bool(true)),
    )
}

#[test]
fn plumbing_endpoints_work() {
    let server = TestServer::boot(4, 1, None);
    let addr = &server.addr;

    let health = http_get(addr, "/healthz").expect("GET /healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "ok\n");

    let version = http_get(addr, "/version").expect("GET /version");
    assert_eq!(version.status, 200);
    let doc = Json::parse(&version.text()).expect("version JSON");
    assert_eq!(doc.get("name").and_then(Json::as_str), Some("dice-serve"));
    assert_eq!(
        doc.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );

    // The experiment catalog must be byte-identical to `experiments
    // --list` (both emit catalog_json().render()).
    let experiments = http_get(addr, "/v1/experiments").expect("GET /v1/experiments");
    assert_eq!(experiments.status, 200);
    assert_eq!(experiments.text(), dice_bench::catalog_json().render());

    // /metrics is valid Prometheus exposition, including after traffic.
    let metrics = http_get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(metrics.status, 200);
    validate_prometheus(&metrics.text()).expect("valid exposition");
    assert!(
        metrics.text().contains("serve_http_requests"),
        "request counter missing:\n{}",
        metrics.text()
    );

    // Errors are well-formed too.
    let missing = http_get(addr, "/nope").expect("GET /nope");
    assert_eq!(missing.status, 404);
    let wrong_method = http_post(addr, "/healthz", "{}").expect("POST /healthz");
    assert_eq!(wrong_method.status, 405);
    let bad_spec = http_post(addr, "/v1/sweeps", "{\"orgs\":[]}").expect("bad spec");
    assert_eq!(bad_spec.status, 400);
    let bad_json = http_post(addr, "/v1/sweeps", "not json").expect("bad json");
    assert_eq!(bad_json.status, 400);
    let unknown_job = http_get(addr, "/v1/sweeps/00000000deadbeef").expect("unknown job");
    assert_eq!(unknown_job.status, 404);
    let unknown_trace = http_get(addr, "/v1/sweeps/00000000deadbeef/trace").expect("unknown trace");
    assert_eq!(unknown_trace.status, 404);
    let unknown_events =
        http_get(addr, "/v1/sweeps/00000000deadbeef/events").expect("unknown events");
    assert_eq!(unknown_events.status, 404);
    let bad_events_id = http_get(addr, "/v1/sweeps/nothex/events").expect("bad events id");
    assert_eq!(bad_events_id.status, 400);

    server.shutdown();
}

/// Extracts and parses the `data:` payloads of an SSE body (heartbeat
/// comments and blank separators are skipped).
fn sse_data_lines(body: &str) -> Vec<Json> {
    body.lines()
        .filter_map(|l| l.strip_prefix("data: "))
        .map(|t| Json::parse(t).expect("event JSON"))
        .collect()
}

#[test]
fn sse_streams_cell_events_in_order_and_trace_is_one_linked_tree() {
    let server = TestServer::boot(4, 1, None);
    let addr = server.addr.clone();
    let (id, _) = submit(&addr, &spec_text(71));

    // Read the event stream concurrently with the running sweep; the call
    // returns when the server closes the chunked stream.
    let reader = {
        let addr = addr.clone();
        let id = id.clone();
        std::thread::spawn(move || {
            http_get(&addr, &format!("/v1/sweeps/{id}/events")).expect("GET events")
        })
    };
    let resp = reader.join().expect("reader thread");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
    assert_eq!(resp.header("content-type"), Some("text/event-stream"));

    // Two cell events in completion order, then the end marker.
    let events = sse_data_lines(&resp.text());
    assert_eq!(events.len(), 3, "2 cells + end, got: {events:?}");
    for (i, ev) in events[..2].iter().enumerate() {
        assert_eq!(ev.get("event").and_then(Json::as_str), Some("cell"));
        assert_eq!(ev.get("seq").and_then(Json::as_u64), Some(i as u64 + 1));
        assert_eq!(ev.get("total").and_then(Json::as_u64), Some(2));
        assert_eq!(ev.get("status").and_then(Json::as_str), Some("simulated"));
    }
    let end = &events[2];
    assert_eq!(end.get("event").and_then(Json::as_str), Some("end"));
    assert_eq!(end.get("state").and_then(Json::as_str), Some("done"));

    // The merged Chrome trace validates and forms exactly one causal
    // tree: every parent link resolves and a single root remains.
    let trace = http_get(&addr, &format!("/v1/sweeps/{id}/trace")).expect("GET trace");
    assert_eq!(trace.status, 200);
    let doc = Json::parse(&trace.text()).expect("trace JSON");
    dice_obs::validate_chrome_trace(&doc).expect("valid Chrome trace");
    let spans: Vec<&Json> = doc
        .as_arr()
        .expect("array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    let ids: HashSet<u64> = spans
        .iter()
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("id"))
                .and_then(Json::as_u64)
                .expect("span id")
        })
        .collect();
    let mut roots = Vec::new();
    for span in &spans {
        match span
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Json::as_u64)
        {
            Some(parent) => assert!(ids.contains(&parent), "dangling parent in {span:?}"),
            None => roots.push(span.get("name").and_then(Json::as_str).expect("name")),
        }
    }
    assert_eq!(roots.len(), 1, "one root span, got {roots:?}");
    assert!(roots[0].starts_with("sweep "));
    assert!(
        spans.len() >= 1 + 2 + 4,
        "root + 2 cells + 2 phases each, got {}",
        spans.len()
    );

    server.shutdown();
}

#[test]
fn drain_closes_event_streams_cleanly() {
    let _guard = serial();
    // One sweep worker: the second submission waits in the queue, so a
    // drain (the SIGTERM path — watch_signals calls Handle::drain) can
    // catch its event stream mid-flight.
    let server = TestServer::boot(8, 1, None);
    let addr = server.addr.clone();
    let (_running, _) = submit(&addr, &spec_text(81));
    let (queued, _) = submit(&addr, &spec_text(82));

    let reader = std::thread::spawn(move || {
        http_get(&addr, &format!("/v1/sweeps/{queued}/events")).expect("GET events")
    });
    std::thread::sleep(Duration::from_millis(100));
    server.handle.drain();

    // The stream must terminate with an end marker and a clean chunked
    // close (read_response only returns once the final chunk arrives).
    let resp = reader.join().expect("reader thread");
    assert_eq!(resp.status, 200);
    let events = sse_data_lines(&resp.text());
    let end = events.last().expect("at least the end event");
    assert_eq!(end.get("event").and_then(Json::as_str), Some("end"));
    let state = end
        .get("state")
        .and_then(Json::as_str)
        .expect("end event state");
    // Usually "cancelled" (drain hit it while queued); "done" if the
    // worker already claimed it. Either way the close was clean.
    assert!(
        state == "cancelled" || state == "done",
        "unexpected terminal state {state:?}"
    );

    server.shutdown();
}

#[test]
fn served_report_is_byte_identical_to_direct_runner() {
    let _guard = serial();
    let scratch = std::env::temp_dir().join(format!("dice-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let server = TestServer::boot(4, 1, Some(scratch.clone()));
    let addr = &server.addr;

    let spec = spec_text(11);
    let (id, coalesced) = submit(addr, &spec);
    assert!(!coalesced);
    let served_cold = wait_report(addr, &id);

    // Direct invocation: same spec through the runner, no server, no
    // cache. The determinism contract makes the documents byte-equal.
    let parsed = SweepSpec::parse(&spec).expect("valid spec");
    let runner = Runner::new(RunnerConfig {
        jobs: 1,
        ..RunnerConfig::default()
    })
    .expect("runner");
    let direct = render_runs(&runner.run(parsed.to_cells())).render();
    assert_eq!(served_cold, direct, "served report drifted from direct run");

    // Warm path: resubmitting coalesces onto the finished job and reads
    // the same bytes without a new engine run.
    let runs_before = engine_runs();
    let (warm_id, warm_coalesced) = submit(addr, &spec);
    assert_eq!(warm_id, id);
    assert!(warm_coalesced);
    let served_warm = wait_report(addr, &warm_id);
    assert_eq!(served_warm, direct);
    assert_eq!(engine_runs(), runs_before, "warm read ran the engine");

    // The sweep's cells were persisted by the server's disk cache.
    let cached_entries = std::fs::read_dir(&scratch)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .count();
    assert!(
        cached_entries >= 2,
        "expected persisted cells in {scratch:?}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn concurrent_identical_posts_single_flight() {
    let _guard = serial();
    let server = TestServer::boot(8, 2, None);
    let addr = server.addr.clone();

    let runs_before = engine_runs();
    let spec = spec_text(23);
    let results: Vec<(String, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let spec = spec.clone();
                scope.spawn(move || submit(&addr, &spec))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .collect()
    });

    // All eight submissions landed on one job…
    let first_id = results[0].0.clone();
    assert!(results.iter().all(|(id, _)| *id == first_id));
    // …exactly one of which was the non-coalesced original.
    assert_eq!(results.iter().filter(|(_, c)| !c).count(), 1);

    // All eight read identical bytes.
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let id = first_id.clone();
                scope.spawn(move || wait_report(&addr, &id))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect()
    });
    assert!(bodies.iter().all(|b| *b == bodies[0]));
    assert!(bodies[0].starts_with("{\"runs\":["));

    // Single-flight proof: eight identical submissions, one engine run.
    assert_eq!(
        engine_runs() - runs_before,
        1,
        "coalescing failed: more than one sweep executed"
    );

    server.shutdown();
}

#[test]
fn overload_answers_429_with_retry_after() {
    let _guard = serial();
    // capacity 2, one worker: the queue fills almost immediately.
    let server = TestServer::boot(2, 1, None);
    let addr = &server.addr;

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for seed in 100..112 {
        let resp = http_post(addr, "/v1/sweeps", &spec_text(seed)).expect("POST sweep");
        match resp.status {
            202 => accepted += 1,
            429 => {
                assert_eq!(
                    resp.header("retry-after"),
                    Some("1"),
                    "429 must carry Retry-After"
                );
                rejected += 1;
            }
            s => panic!("unexpected status {s}: {}", resp.text()),
        }
    }
    assert!(accepted >= 1, "at least the first sweep must be admitted");
    assert!(
        rejected >= 1,
        "12 rapid distinct sweeps at capacity 2 must overflow"
    );

    server.shutdown();
}

#[test]
fn drain_finishes_inflight_and_refuses_new_work() {
    let _guard = serial();
    let server = TestServer::boot(8, 1, None);
    let addr = server.addr.clone();

    let (id, _) = submit(&addr, &spec_text(57));
    // Wait for a worker to claim the job: drain cancels queued-but-not-
    // started jobs, and this test is about the in-flight path.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = http_get(&addr, &format!("/v1/sweeps/{id}")).expect("GET status");
        let doc = Json::parse(&status.text()).expect("status JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("running" | "done") => break,
            _ => {
                assert!(Instant::now() < deadline, "job never started");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    server.handle.drain();

    // The in-flight job still runs to completion and stays readable
    // through the queue handle (the listener may already be closed).
    let deadline = Instant::now() + Duration::from_secs(30);
    let body = loop {
        match http_get(&addr, &format!("/v1/sweeps/{id}/report")) {
            Ok(resp) if resp.status == 200 => break Some(resp.text()),
            Ok(resp) if resp.status == 409 => std::thread::sleep(Duration::from_millis(10)),
            Ok(resp) => panic!("unexpected status {}", resp.status),
            // Listener already drained: connection refused ends the
            // observable window; the drain test below still proves the
            // server exited cleanly.
            Err(_) => break None,
        }
        if Instant::now() > deadline {
            panic!("report never became ready during drain");
        }
    };
    if let Some(body) = &body {
        assert!(body.starts_with("{\"runs\":["));
    }

    server.shutdown();
}
