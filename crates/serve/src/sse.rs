//! A generic server-sent-events pump over chunked transfer encoding,
//! shared by `dice-serve`'s job stream and the fabric coordinator's
//! scatter/gather progress fan-in.
//!
//! The pump owns the socket for the stream's lifetime: it polls a
//! caller-supplied cursor function, writes each new event as a
//! `data: …\n\n` chunk, emits comment heartbeats while idle (keeping the
//! connection visibly alive under the 5 s socket write timeout), and
//! closes the chunked stream with a terminal `{"event":"end"}` record
//! once the poll reports a terminal state.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dice_obs::Json;

use crate::http::{finish_chunks, write_chunk, write_stream_head, Response};

/// Hard wall-clock cap on one event stream.
const STREAM_DEADLINE: Duration = Duration::from_secs(600);
/// Idle interval between comment heartbeats.
const HEARTBEAT: Duration = Duration::from_secs(2);

/// Streams events to `out` until the poll function reports a terminal
/// state (or the client goes away). `poll(cursor)` returns the events at
/// and past `cursor` plus `Some(state)` once the stream should end with
/// that state name (events and terminal state must be read atomically by
/// the poll, so a terminal state means the returned slice completes the
/// stream); it returns `None` only if the subject is unknown, which
/// answers `404`. Returns the status code to record.
pub fn stream_sse(
    out: &mut impl Write,
    poll: impl Fn(usize) -> Option<(Vec<Arc<String>>, Option<&'static str>)>,
) -> u16 {
    if poll(0).is_none() {
        let _ = Response::error(404, "no such job").write(out);
        return 404;
    }
    if write_stream_head(out, "text/event-stream").is_err() {
        return 200;
    }
    let mut cursor = 0usize;
    let mut last_write = Instant::now();
    let deadline = Instant::now() + STREAM_DEADLINE;
    while let Some((events, terminal)) = poll(cursor) {
        cursor += events.len();
        for event in &events {
            if write_chunk(out, format!("data: {event}\n\n").as_bytes()).is_err() {
                return 200;
            }
            last_write = Instant::now();
        }
        if let Some(state) = terminal {
            let end = Json::Obj(vec![
                ("event".into(), Json::str("end")),
                ("state".into(), Json::str(state)),
            ])
            .render();
            let _ = write_chunk(out, format!("data: {end}\n\n").as_bytes());
            break;
        }
        if Instant::now() > deadline {
            break;
        }
        if events.is_empty() {
            if last_write.elapsed() >= HEARTBEAT {
                if write_chunk(out, b": heartbeat\n\n").is_err() {
                    return 200;
                }
                last_write = Instant::now();
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let _ = finish_chunks(out);
    200
}

/// Splits a raw SSE body into its `data:` payload lines (heartbeat
/// comments and blank separators dropped) — the inverse of the pump's
/// framing, shared by tests and the coordinator's progress fan-in.
#[must_use]
pub fn sse_data_lines(body: &str) -> Vec<String> {
    body.lines()
        .filter_map(|l| l.strip_prefix("data: "))
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn unknown_subject_is_404() {
        let mut out = Vec::new();
        let status = stream_sse(&mut out, |_| None);
        assert_eq!(status, 404);
        assert!(String::from_utf8_lossy(&out).contains("no such job"));
    }

    #[test]
    fn streams_events_then_end_record() {
        // Two poll rounds: first returns one event and no terminal state,
        // second returns one more event plus the terminal state.
        let round = Mutex::new(0usize);
        let mut out = Vec::new();
        let status = stream_sse(&mut out, |cursor| {
            let mut round = round.lock().expect("round");
            *round += 1;
            let all = [
                Arc::new("{\"n\":1}".to_owned()),
                Arc::new("{\"n\":2}".to_owned()),
            ];
            let visible = if *round == 1 { 1 } else { 2 };
            let events = all[cursor.min(visible)..visible].to_vec();
            Some((events, (*round >= 2).then_some("done")))
        });
        assert_eq!(status, 200);
        let text = String::from_utf8_lossy(&out);
        let data = sse_data_lines(&text);
        assert_eq!(
            data,
            vec![
                "{\"n\":1}",
                "{\"n\":2}",
                "{\"event\":\"end\",\"state\":\"done\"}"
            ]
        );
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
