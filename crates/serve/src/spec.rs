//! The sweep specification: what `POST /v1/sweeps` accepts, and the
//! canonical result document both the service and a direct
//! `dice-runner` invocation render.
//!
//! A spec is a JSON object:
//!
//! ```json
//! {
//!   "orgs": ["base", "dice36"],
//!   "workloads": ["gcc", "mcf"],
//!   "scale": 1024,
//!   "warmup": 500,
//!   "measure": 1500,
//!   "seed": 7
//! }
//! ```
//!
//! `orgs` name cache organizations (`base`/`alloy`, `tsi`, `nsi`, `bai`,
//! `scc`, `dice` or `diceN` for an N-byte threshold); `workloads` name
//! Table 3 benchmarks; `scale`/`warmup`/`measure`/`seed` are optional
//! knobs with harness defaults. The sweep is the cross product
//! `orgs × workloads`, capped at [`MAX_CELLS`] cells.

use std::fmt;

use dice_core::Organization;
use dice_obs::Json;
use dice_runner::{cell_key, fnv1a64, Cell, CellOutcome, SweepResult};
use dice_sim::{SimConfig, WorkloadSet};
use dice_workloads::spec_table;

/// Hard cap on `orgs × workloads` per submission: admission control
/// rejects larger sweeps outright rather than queueing unbounded work.
pub const MAX_CELLS: usize = 256;

/// Default footprint scale divisor (matches the experiment harness).
pub const DEFAULT_SCALE: u64 = 1024;
/// Default warm-up records per core.
pub const DEFAULT_WARMUP: u64 = 500;
/// Default measured records per core.
pub const DEFAULT_MEASURE: u64 = 1_500;
/// Default trace seed.
pub const DEFAULT_SEED: u64 = 7;

/// A validated sweep specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Organization tags exactly as submitted (`"dice36"`, `"base"`, …).
    pub orgs: Vec<String>,
    /// Workload names (Table 3 spelling).
    pub workloads: Vec<String>,
    /// Footprint scale divisor (power of two).
    pub scale: u64,
    /// Warm-up records per core.
    pub warmup: u64,
    /// Measured records per core.
    pub measure: u64,
    /// Trace seed.
    pub seed: u64,
}

/// Why a submitted spec was rejected (`400 Bad Request` material).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sweep spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Resolves an organization tag (`"base"`, `"tsi"`, `"dice36"`, …).
fn parse_org(tag: &str) -> Result<Organization, SpecError> {
    match tag {
        "base" | "alloy" => Ok(Organization::UncompressedAlloy),
        "tsi" => Ok(Organization::CompressedTsi),
        "nsi" => Ok(Organization::CompressedNsi),
        "bai" => Ok(Organization::CompressedBai),
        "scc" => Ok(Organization::Scc),
        "dice" => Ok(Organization::Dice { threshold: 36 }),
        _ => {
            let threshold = tag
                .strip_prefix("dice")
                .and_then(|t| t.parse::<u32>().ok())
                .filter(|t| (1..=64).contains(t))
                .ok_or_else(|| err(format!("unknown organization {tag:?}")))?;
            Ok(Organization::Dice { threshold })
        }
    }
}

fn str_list(j: &Json, field: &str) -> Result<Vec<String>, SpecError> {
    let arr = j
        .get(field)
        .ok_or_else(|| err(format!("missing {field:?}")))?
        .as_arr()
        .ok_or_else(|| err(format!("{field:?} must be an array of strings")))?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        out.push(
            item.as_str()
                .ok_or_else(|| err(format!("{field:?} must be an array of strings")))?
                .to_owned(),
        );
    }
    if out.is_empty() {
        return Err(err(format!("{field:?} must not be empty")));
    }
    Ok(out)
}

fn u64_field(j: &Json, field: &str, default: u64) -> Result<u64, SpecError> {
    match j.get(field) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| err(format!("{field:?} must be a non-negative integer"))),
    }
}

impl SweepSpec {
    /// Parses and fully validates a spec from JSON text: every
    /// organization tag resolves, every workload exists in the Table 3
    /// spec table, the scale is a power of two, and the cross product
    /// fits [`MAX_CELLS`]. A spec that parses cannot fail later in
    /// [`SweepSpec::to_cells`].
    pub fn parse(text: &str) -> Result<SweepSpec, SpecError> {
        let j = Json::parse(text).map_err(|e| err(e.to_string()))?;
        Self::from_json(&j)
    }

    /// Validates a parsed JSON document (see [`SweepSpec::parse`]).
    pub fn from_json(j: &Json) -> Result<SweepSpec, SpecError> {
        if !matches!(j, Json::Obj(_)) {
            return Err(err("spec must be a JSON object"));
        }
        let spec = SweepSpec {
            orgs: str_list(j, "orgs")?,
            workloads: str_list(j, "workloads")?,
            scale: u64_field(j, "scale", DEFAULT_SCALE)?,
            warmup: u64_field(j, "warmup", DEFAULT_WARMUP)?,
            measure: u64_field(j, "measure", DEFAULT_MEASURE)?,
            seed: u64_field(j, "seed", DEFAULT_SEED)?,
        };
        if spec.scale == 0 || !spec.scale.is_power_of_two() {
            return Err(err("\"scale\" must be a power of two"));
        }
        if spec.measure == 0 {
            return Err(err("\"measure\" must be positive"));
        }
        if spec.orgs.len().saturating_mul(spec.workloads.len()) > MAX_CELLS {
            return Err(err(format!("sweep exceeds {MAX_CELLS} cells")));
        }
        for tag in &spec.orgs {
            parse_org(tag)?;
        }
        let table = spec_table();
        for wl in &spec.workloads {
            if !table.iter().any(|s| s.name == *wl) {
                return Err(err(format!("unknown workload {wl:?}")));
            }
        }
        Ok(spec)
    }

    /// The spec as canonical JSON (defaults made explicit), suitable for
    /// re-submission.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "orgs".into(),
                Json::Arr(self.orgs.iter().map(Json::str).collect()),
            ),
            (
                "workloads".into(),
                Json::Arr(self.workloads.iter().map(Json::str).collect()),
            ),
            ("scale".into(), Json::u64(self.scale)),
            ("warmup".into(), Json::u64(self.warmup)),
            ("measure".into(), Json::u64(self.measure)),
            ("seed".into(), Json::u64(self.seed)),
        ])
    }

    /// Expands the spec into runner cells (`orgs × workloads`). Cannot
    /// fail for a spec produced by [`SweepSpec::parse`].
    #[must_use]
    pub fn to_cells(&self) -> Vec<Cell> {
        let table = spec_table();
        let mut cells = Vec::with_capacity(self.orgs.len() * self.workloads.len());
        for tag in &self.orgs {
            let org = parse_org(tag).expect("validated at parse time");
            for wl in &self.workloads {
                let wspec = table
                    .iter()
                    .find(|s| s.name == *wl)
                    .expect("validated at parse time")
                    .clone();
                let cfg =
                    SimConfig::scaled(org, self.scale).with_records(self.warmup, self.measure);
                cells.push(Cell::new(
                    tag.clone(),
                    cfg,
                    WorkloadSet::rate(wspec, self.seed),
                ));
            }
        }
        cells
    }
}

/// The single-flight identity of a sweep: an FNV-1a hash over every
/// cell's tag, workload name, and [`cell_key`] (which already covers
/// every config/workload field plus the crate version), order-independent.
/// Two submissions with the same key would run the same simulations and
/// render the same document, so the service runs them once.
#[must_use]
pub fn sweep_key(cells: &[Cell]) -> u64 {
    let mut parts: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "{}\u{1f}{}\u{1f}{:016x}",
                c.tag,
                c.workload.name,
                cell_key(&c.cfg, &c.workload)
            )
        })
        .collect();
    parts.sort_unstable();
    fnv1a64(parts.join("\u{1e}").as_bytes())
}

/// The canonical result document for a finished sweep:
/// `{"runs": [{"tag", "workload", "report"| "error" | "timed_out_ms"}, …]}`,
/// sorted by `(tag, workload)`.
///
/// Both the service's `/v1/sweeps/:id/report` and `dice-serve-loadgen
/// --direct` emit exactly `render_runs(&result).render()`; together with
/// the runner's determinism contract (same cells → same reports for any
/// job count, cold or warm cache), that makes the two byte-identical.
/// Scheduling incidentals (wall time, cache hits) are deliberately
/// excluded.
#[must_use]
pub fn render_runs(result: &SweepResult) -> Json {
    let runs = result
        .outcomes
        .iter()
        .map(|((tag, wl), outcome)| {
            let mut pairs = vec![
                ("tag".to_owned(), Json::str(tag)),
                ("workload".to_owned(), Json::str(wl)),
            ];
            match outcome {
                CellOutcome::Completed { report, .. } => {
                    pairs.push(("report".to_owned(), report.to_json()));
                }
                CellOutcome::Failed { error } => {
                    pairs.push(("error".to_owned(), Json::str(error)));
                }
                CellOutcome::TimedOut { budget } => {
                    pairs.push((
                        "timed_out_ms".to_owned(),
                        Json::u64(budget.as_millis() as u64),
                    ));
                }
            }
            Json::Obj(pairs)
        })
        .collect();
    Json::Obj(vec![("runs".into(), Json::Arr(runs))])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{"orgs":["base","dice36"],"workloads":["gcc"],"scale":2048,"warmup":100,"measure":300,"seed":3}"#;

    #[test]
    fn parses_and_expands() {
        let spec = SweepSpec::parse(SPEC).expect("valid spec");
        assert_eq!(spec.orgs, vec!["base", "dice36"]);
        assert_eq!(spec.scale, 2048);
        let cells = spec.to_cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].tag, "base");
        assert_eq!(cells[0].workload.name, "gcc");
        assert!(matches!(
            cells[1].cfg.l4.organization,
            Organization::Dice { threshold: 36 }
        ));
        assert_eq!(cells[0].cfg.measure_records, 300);
    }

    #[test]
    fn defaults_fill_in() {
        let spec = SweepSpec::parse(r#"{"orgs":["tsi"],"workloads":["mcf"]}"#).expect("valid");
        assert_eq!(spec.scale, DEFAULT_SCALE);
        assert_eq!(spec.warmup, DEFAULT_WARMUP);
        assert_eq!(spec.measure, DEFAULT_MEASURE);
        assert_eq!(spec.seed, DEFAULT_SEED);
    }

    #[test]
    fn org_tags_resolve() {
        for (tag, want) in [
            ("base", Organization::UncompressedAlloy),
            ("alloy", Organization::UncompressedAlloy),
            ("tsi", Organization::CompressedTsi),
            ("nsi", Organization::CompressedNsi),
            ("bai", Organization::CompressedBai),
            ("scc", Organization::Scc),
            ("dice", Organization::Dice { threshold: 36 }),
            ("dice40", Organization::Dice { threshold: 40 }),
        ] {
            assert_eq!(parse_org(tag).expect(tag), want);
        }
        assert!(parse_org("dice0").is_err());
        assert!(parse_org("dice999").is_err());
        assert!(parse_org("lru").is_err());
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"workloads":["gcc"]}"#,
            r#"{"orgs":[],"workloads":["gcc"]}"#,
            r#"{"orgs":["base"],"workloads":[1]}"#,
            r#"{"orgs":["base"],"workloads":["gcc"],"scale":3}"#,
            r#"{"orgs":["base"],"workloads":["gcc"],"measure":0}"#,
            r#"{"orgs":["base"],"workloads":["nosuch"]}"#,
            r#"{"orgs":["quantum"],"workloads":["gcc"]}"#,
        ] {
            assert!(SweepSpec::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn sweep_key_is_order_independent_and_spec_sensitive() {
        let a = SweepSpec::parse(SPEC).expect("valid").to_cells();
        let mut b = SweepSpec::parse(SPEC).expect("valid").to_cells();
        b.reverse();
        assert_eq!(sweep_key(&a), sweep_key(&b));

        let other = SweepSpec::parse(
            r#"{"orgs":["base","dice36"],"workloads":["gcc"],"scale":2048,"warmup":100,"measure":300,"seed":4}"#,
        )
        .expect("valid")
        .to_cells();
        assert_ne!(sweep_key(&a), sweep_key(&other));
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = SweepSpec::parse(SPEC).expect("valid");
        let again = SweepSpec::from_json(&spec.to_json()).expect("round-trip");
        assert_eq!(spec, again);
    }
}
