//! A minimal blocking HTTP/1.1 client over `TcpStream`.
//!
//! Shared by `dice-serve-loadgen`, the fabric coordinator and the
//! integration tests; it speaks exactly the dialect the server emits
//! (`Connection: close`, explicit `Content-Length`). Header and
//! chunked-body decoding are shared with the server codec in
//! [`crate::http`] rather than duplicated here.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::http::{read_chunked_body, read_header_lines};

/// Default socket read/write timeout for client requests.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Case-insensitive header lookup (name must be given lower-case).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path` against `addr` (`host:port`).
///
/// # Errors
///
/// Propagates connect/transport failures and malformed responses.
pub fn http_get(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None, DEFAULT_TIMEOUT)
}

/// `POST path` with a JSON body against `addr` (`host:port`).
///
/// # Errors
///
/// Propagates connect/transport failures and malformed responses.
pub fn http_post(addr: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body), DEFAULT_TIMEOUT)
}

/// `GET path` with an explicit socket timeout (connect, read and write).
///
/// # Errors
///
/// Propagates connect/transport failures and malformed responses.
pub fn http_get_timeout(addr: &str, path: &str, timeout: Duration) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with an explicit socket timeout (connect, read and write).
/// The fabric coordinator uses this to bound how long a scattered cell
/// may hold a worker connection before the node is declared dead.
///
/// # Errors
///
/// Propagates connect/transport failures and malformed responses.
pub fn http_post_timeout(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body), timeout)
}

/// Why a health probe failed — the distinction the coordinator's
/// breaker logic runs on.
///
/// A plain `io::Error` conflates two very different worlds: a
/// **connection refused** means the kernel answered for a process that
/// is gone (declare the node dead), while a **timeout** means something
/// is there but slow (keep the breaker open and try again later).
/// `http_probe` splits the connect and read phases so the two cannot be
/// confused, and names each failure for the
/// `fabric.probe.failed.{refused,connect_timeout,read_timeout,other}`
/// counters.
#[derive(Debug)]
pub enum ProbeError {
    /// The kernel refused the connection — no process is listening.
    Refused,
    /// The TCP connect did not complete within the connect timeout
    /// (unreachable host, wedged accept queue).
    ConnectTimeout,
    /// Connected, but the response did not arrive within the read
    /// timeout — the process is alive but slow.
    ReadTimeout,
    /// Any other transport or parse failure.
    Other(io::Error),
}

impl ProbeError {
    /// The metric-label spelling of this failure class.
    #[must_use]
    pub fn kind_str(&self) -> &'static str {
        match self {
            ProbeError::Refused => "refused",
            ProbeError::ConnectTimeout => "connect_timeout",
            ProbeError::ReadTimeout => "read_timeout",
            ProbeError::Other(_) => "other",
        }
    }
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::Refused => write!(f, "connection refused"),
            ProbeError::ConnectTimeout => write!(f, "connect timed out"),
            ProbeError::ReadTimeout => write!(f, "read timed out"),
            ProbeError::Other(e) => write!(f, "{e}"),
        }
    }
}

/// `GET path` with split connect and read timeouts, classifying every
/// failure as a [`ProbeError`].
///
/// # Errors
///
/// Returns [`ProbeError::Refused`] when nothing is listening,
/// [`ProbeError::ConnectTimeout`] / [`ProbeError::ReadTimeout`] for the
/// respective phase timeouts, and [`ProbeError::Other`] for everything
/// else.
pub fn http_probe(
    addr: &str,
    path: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<ClientResponse, ProbeError> {
    let sock = addr
        .to_socket_addrs()
        .map_err(ProbeError::Other)?
        .next()
        .ok_or_else(|| {
            ProbeError::Other(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        })?;
    let mut stream =
        TcpStream::connect_timeout(&sock, connect_timeout).map_err(|e| match e.kind() {
            io::ErrorKind::ConnectionRefused => ProbeError::Refused,
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ProbeError::ConnectTimeout,
            _ => ProbeError::Other(e),
        })?;
    let classify_read = |e: io::Error| match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ProbeError::ReadTimeout,
        _ => ProbeError::Other(e),
    };
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(ProbeError::Other)?;
    stream
        .set_write_timeout(Some(read_timeout))
        .map_err(ProbeError::Other)?;
    stream.set_nodelay(true).map_err(ProbeError::Other)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .map_err(classify_read)?;
    stream.flush().map_err(classify_read)?;
    read_response(&mut BufReader::new(stream)).map_err(classify_read)
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{body}",
        body.len(),
        if body.is_empty() {
            ""
        } else {
            "Content-Type: application/json\r\n"
        },
    )?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

fn malformed(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Parses one response off `reader` (status line, headers,
/// `Content-Length` body, chunked body, or read-to-EOF).
///
/// # Errors
///
/// Propagates transport failures; malformed responses become
/// `InvalidData`.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| malformed("bad status line"))?;

    let headers = read_header_lines(reader)?;
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    if chunked {
        read_chunked_body(reader, &mut body)?;
    } else {
        match content_length {
            Some(len) => {
                body.resize(len, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_chunked_bodies() {
        let raw: &[u8] = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                           5\r\nhello\r\n7\r\n, world\r\n0\r\n\r\n";
        let resp = read_response(&mut BufReader::new(raw)).expect("valid");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "hello, world");
    }

    #[test]
    fn parses_response() {
        let raw: &[u8] =
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\nContent-Length: 5\r\n\r\nhello";
        let resp = read_response(&mut BufReader::new(raw)).expect("valid");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.text(), "hello");
    }

    #[test]
    fn reads_to_eof_without_content_length() {
        let raw: &[u8] = b"HTTP/1.1 200 OK\r\n\r\nrest";
        let resp = read_response(&mut BufReader::new(raw)).expect("valid");
        assert_eq!(resp.body, b"rest");
    }

    #[test]
    fn rejects_garbage() {
        let raw: &[u8] = b"not http at all";
        assert!(read_response(&mut BufReader::new(raw)).is_err());
    }

    #[test]
    fn probe_classifies_refused() {
        // Bind then drop: the port is provably ours and provably closed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);
        match http_probe(
            &addr,
            "/healthz",
            Duration::from_secs(2),
            Duration::from_secs(2),
        ) {
            Err(ProbeError::Refused) => {}
            other => panic!("expected Refused, got {other:?}"),
        }
    }

    #[test]
    fn probe_classifies_read_timeout() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        // Accept, then go silent: alive but unresponsive.
        let holder = std::thread::spawn(move || {
            let conn = listener.accept();
            std::thread::sleep(Duration::from_millis(400));
            drop(conn);
        });
        match http_probe(
            &addr,
            "/healthz",
            Duration::from_secs(2),
            Duration::from_millis(100),
        ) {
            Err(ProbeError::ReadTimeout) => {}
            other => panic!("expected ReadTimeout, got {other:?}"),
        }
        holder.join().expect("holder thread");
    }

    #[test]
    fn probe_error_kinds_are_stable_labels() {
        assert_eq!(ProbeError::Refused.kind_str(), "refused");
        assert_eq!(ProbeError::ConnectTimeout.kind_str(), "connect_timeout");
        assert_eq!(ProbeError::ReadTimeout.kind_str(), "read_timeout");
        let other = ProbeError::Other(io::Error::new(io::ErrorKind::BrokenPipe, "x"));
        assert_eq!(other.kind_str(), "other");
    }
}
