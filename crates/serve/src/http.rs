//! A minimal HTTP/1.1 codec over std I/O, shared by `dice-serve` and the
//! fabric nodes.
//!
//! Deliberately small: one request per connection (`Connection: close`),
//! no keep-alive, hard limits on header and body size. Fixed-length
//! responses carry an explicit `Content-Length`; streaming endpoints
//! (server-sent events) use chunked transfer encoding via
//! [`write_stream_head`]/[`write_chunk`]/[`finish_chunks`]. The
//! response-side decoders ([`read_header_lines`], [`read_chunked_body`])
//! live here too so the client and any proxy layer share one
//! implementation. That is all the sweep API needs, and it keeps the
//! attack surface of a zero-dependency stack auditable.

use std::io::{self, BufRead, Write};

/// Maximum bytes for the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum request body bytes (`413 Payload Too Large` beyond this).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target (path plus optional query), as sent.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (name must be given lower-case).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// What went wrong reading a request, mapped to a response status.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed before sending a full request line.
    Closed,
    /// Malformed syntax or a violated limit; respond with this status.
    Bad {
        /// Status to answer with (`400`, `413`, `431`).
        status: u16,
        /// Human-readable reason.
        msg: &'static str,
    },
    /// Transport failure.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn bad(status: u16, msg: &'static str) -> ReadError {
    ReadError::Bad { status, msg }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// [`ReadError::Closed`] on immediate EOF, [`ReadError::Bad`] on
/// malformed or over-limit input, [`ReadError::Io`] on transport errors
/// (including read timeouts).
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let request_line = read_line(stream, &mut head_bytes)?;
    if request_line.is_empty() {
        return Err(ReadError::Closed);
    }
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(bad(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(400, "unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad(431, "too many headers"));
        }
        let (name, value) = line.split_once(':').ok_or(bad(400, "malformed header"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(bad(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| bad(400, "bad content-length"))
        })
        .transpose()?;
    if let Some(len) = content_length {
        if len > MAX_BODY_BYTES {
            return Err(bad(413, "body too large"));
        }
        body.resize(len, 0);
        stream.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                bad(400, "truncated body")
            } else {
                ReadError::Io(e)
            }
        })?;
    }

    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

/// Reads one CRLF- (or bare-LF-) terminated line, enforcing
/// [`MAX_HEAD_BYTES`] across the whole head.
fn read_line(stream: &mut impl BufRead, head_bytes: &mut usize) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let buf = stream.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(String::new());
            }
            return Err(bad(400, "truncated request head"));
        }
        let (chunk, found) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (&buf[..i], true),
            None => (buf, false),
        };
        *head_bytes += chunk.len() + usize::from(found);
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(bad(431, "request head too large"));
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(found);
        stream.consume(consumed);
        if found {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| bad(400, "non-UTF-8 request head"));
        }
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub extra: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope (`{"error": "..."}`).
    #[must_use]
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(
            status,
            dice_obs::Json::Obj(vec![("error".into(), dice_obs::Json::str(msg))]).render(),
        )
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra.push((name.to_owned(), value.into()));
        self
    }

    /// Serializes the response (`Connection: close`, explicit
    /// `Content-Length`).
    ///
    /// # Errors
    ///
    /// Propagates transport write errors.
    pub fn write(&self, out: &mut impl Write) -> io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra {
            write!(out, "{name}: {value}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Writes the head of a `200` streaming response: chunked transfer
/// encoding, `Connection: close`, `Cache-Control: no-store` (live data
/// must never be replayed from a cache).
///
/// # Errors
///
/// Propagates transport write errors.
pub fn write_stream_head(out: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n\
         Cache-Control: no-store\r\nConnection: close\r\n\r\n"
    )?;
    out.flush()
}

/// Writes one chunk (hex length, CRLF, data, CRLF) and flushes so the
/// peer sees it immediately. Empty data is skipped — a zero-length chunk
/// would terminate the stream.
///
/// # Errors
///
/// Propagates transport write errors.
pub fn write_chunk(out: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(out, "{:x}\r\n", data.len())?;
    out.write_all(data)?;
    out.write_all(b"\r\n")?;
    out.flush()
}

/// Terminates a chunked stream (the zero-length final chunk).
///
/// # Errors
///
/// Propagates transport write errors.
pub fn finish_chunks(out: &mut impl Write) -> io::Result<()> {
    out.write_all(b"0\r\n\r\n")?;
    out.flush()
}

fn malformed(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads a response-side header block (every `name: value` line up to the
/// blank separator), names lower-cased. Unlike the request path this
/// trusts the peer — it is used against our own servers — so it imposes
/// no size limits.
///
/// # Errors
///
/// Propagates transport failures; malformed headers become `InvalidData`.
pub fn read_header_lines(reader: &mut impl BufRead) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("bad header"))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok(headers)
}

/// Decodes a chunked transfer-encoded body into `out`, reading through
/// the zero-length final chunk and any trailer section.
///
/// # Errors
///
/// Propagates transport failures; malformed framing becomes
/// `InvalidData`.
pub fn read_chunked_body(reader: &mut impl BufRead, out: &mut Vec<u8>) -> io::Result<()> {
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line)?;
        let size =
            usize::from_str_radix(size_line.trim(), 16).map_err(|_| malformed("bad chunk size"))?;
        if size == 0 {
            // Trailer section: read through the terminating blank line.
            let mut line = String::new();
            while reader.read_line(&mut line)? > 0
                && !line.trim_end_matches(['\r', '\n']).is_empty()
            {
                line.clear();
            }
            return Ok(());
        }
        let start = out.len();
        out.resize(start + size, 0);
        reader.read_exact(&mut out[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(malformed("chunk not CRLF-terminated"));
        }
    }
}

/// The standard reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("valid");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").expect("valid");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn tolerates_bare_lf_lines() {
        let req = parse(b"GET / HTTP/1.1\nHost: y\n\n").expect("valid");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn rejects_malformed() {
        for raw in [
            b"GARBAGE\r\n\r\n".to_vec(),
            b"GET notapath HTTP/1.1\r\n\r\n".to_vec(),
            b"GET / SPDY/3\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nbadheader\r\n\r\n".to_vec(),
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort".to_vec(),
        ] {
            assert!(
                matches!(parse(&raw), Err(ReadError::Bad { .. })),
                "accepted: {raw:?}"
            );
        }
    }

    #[test]
    fn eof_is_closed() {
        assert!(matches!(parse(b""), Err(ReadError::Closed)));
    }

    #[test]
    fn enforces_limits() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse(huge_header.as_bytes()),
            Err(ReadError::Bad { status: 431, .. })
        ));

        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS)
                .map(|i| format!("h{i}: v\r\n"))
                .collect::<String>()
        );
        assert!(matches!(
            parse(many.as_bytes()),
            Err(ReadError::Bad { status: 431, .. })
        ));

        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(big_body.as_bytes()),
            Err(ReadError::Bad { status: 413, .. })
        ));
    }

    #[test]
    fn chunked_stream_frames_correctly() {
        let mut out = Vec::new();
        write_stream_head(&mut out, "text/event-stream").expect("head");
        write_chunk(&mut out, b"data: one\n\n").expect("chunk");
        write_chunk(&mut out, b"").expect("empty chunk is a no-op");
        write_chunk(&mut out, b"data: two\n\n").expect("chunk");
        finish_chunks(&mut out).expect("finish");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Content-Type: text/event-stream\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.contains("\r\n\r\nb\r\ndata: one\n\n\r\n"));
        assert!(text.ends_with("b\r\ndata: two\n\n\r\n0\r\n\r\n"));
    }

    #[test]
    fn response_serializes() {
        let mut out = Vec::new();
        Response::json(202, "{\"id\":\"x\"}")
            .with_header("Retry-After", "1")
            .write(&mut out)
            .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Length: 10\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"x\"}"));
    }
}
