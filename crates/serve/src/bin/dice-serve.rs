//! The `dice-serve` daemon: binds the sweep service on 127.0.0.1 and
//! runs until SIGTERM/SIGINT.
//!
//! ```text
//! dice-serve [--port P] [--conn-workers N] [--queue N] [--sweep-workers N]
//!            [--jobs N] [--cache DIR] [--verbose]
//! ```
//!
//! `--port 0` binds an ephemeral port; the bound address is always
//! reported on stdout (`dice-serve listening on 127.0.0.1:PORT`) so
//! scripts can scrape it. The first termination signal starts a graceful
//! drain (stop accepting, finish in-flight sweeps, persist their cells);
//! a second signal cooperatively cancels the remaining cells. Exits 0 on
//! a clean drain.

use std::io::Write;
use std::time::Duration;

use dice_serve::signal;
use dice_serve::{Handle, ServeConfig, Server};

struct Args {
    config: ServeConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: dice-serve [--port P] [--conn-workers N] [--queue N] \
         [--sweep-workers N] [--jobs N] [--cache DIR] [--verbose]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("dice-serve: {arg} needs {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--port" => {
                config.port = value("a port").parse().unwrap_or_else(|_| usage());
            }
            "--conn-workers" => {
                config.conn_workers = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--queue" => {
                config.queue.capacity = value("a capacity").parse().unwrap_or_else(|_| usage());
            }
            "--sweep-workers" => {
                config.queue.workers = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => {
                config.queue.runner.jobs = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--cache" => {
                config.queue.runner.cache_dir = Some(value("a directory").into());
            }
            "--verbose" => config.queue.runner.verbose = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args { config }
}

/// Polls the signal counter and steers the drain state machine.
fn watch_signals(handle: Handle) {
    let mut seen = 0;
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let count = signal::term_count();
        if count > seen {
            seen = count;
            if count == 1 {
                eprintln!(
                    "dice-serve: draining (finishing in-flight sweeps; signal again to cancel)"
                );
                handle.drain();
            } else {
                eprintln!("dice-serve: cancelling in-flight sweeps");
                handle.force_cancel();
                return;
            }
        }
    }
}

fn main() {
    let args = parse_args();
    signal::install();

    let server = match Server::bind(args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dice-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound socket has an address");

    // Explicit flush: stdout is block-buffered under pipes, and scripts
    // scrape this line to learn an ephemeral port.
    let mut out = std::io::stdout();
    let _ = writeln!(out, "dice-serve listening on {addr}");
    let _ = out.flush();

    let handle = server.handle();
    std::thread::spawn(move || watch_signals(handle));

    if let Err(e) = server.run() {
        eprintln!("dice-serve: {e}");
        std::process::exit(1);
    }
    let _ = writeln!(std::io::stdout(), "dice-serve drained cleanly");
}
