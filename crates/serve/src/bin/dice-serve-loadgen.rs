//! `dice-serve-loadgen`: a closed-loop load generator and CI probe for
//! `dice-serve`.
//!
//! Modes:
//!
//! ```text
//! # hammer the server with a mixed cold/warm sweep load, append a
//! # serving-throughput entry to BENCH_results.json:
//! dice-serve-loadgen --url 127.0.0.1:PORT [--requests N] [--concurrency C]
//!                    [--distinct D] [--out FILE] [--no-append] [--quiet]
//!
//! # submit one sweep and print the canonical report body (byte-exact):
//! dice-serve-loadgen --url 127.0.0.1:PORT --spec '<json>'
//!
//! # run the same spec directly through dice-runner and print the same
//! # canonical body (byte-exact), for equivalence checks:
//! dice-serve-loadgen --direct '<json>'
//!
//! # fetch /metrics and validate it as Prometheus 0.0.4 exposition:
//! dice-serve-loadgen --url 127.0.0.1:PORT --check-metrics
//!
//! # submit a tiny sweep and validate /v1/sweeps/:id/trace as a Chrome
//! # trace; version-gated, so a server predating the endpoint passes:
//! dice-serve-loadgen --url 127.0.0.1:PORT --check-trace
//!
//! # boot a dice-fabric worker fleet + coordinator per stage and measure
//! # closed-loop throughput at each fleet size, appending a
//! # fabric_scaling entry to BENCH_results.json:
//! dice-serve-loadgen --fabric path/to/dice-fabric [--fabric-workers 1,2,4]
//!                    [--requests N] [--concurrency C] [--out FILE]
//!                    [--no-append] [--quiet]
//! ```
//!
//! The default load is `--requests` submissions of a tiny sweep whose
//! seed cycles over `--distinct` values: the first submission of each
//! seed is cold (simulates), repeats are warm (single-flight coalescing
//! or a finished job), which is exactly the mixed regime a result
//! service sees.

use std::io::Write;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use dice_obs::{validate_chrome_trace, Json};
use dice_runner::{Runner, RunnerConfig};
use dice_serve::{http_get, http_post, render_runs, validate_prometheus, SweepSpec};

struct Args {
    url: Option<String>,
    requests: usize,
    concurrency: usize,
    distinct: usize,
    out: String,
    append: bool,
    quiet: bool,
    spec: Option<String>,
    direct: Option<String>,
    check_metrics: bool,
    check_trace: bool,
    fabric: Option<String>,
    fabric_workers: Vec<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dice-serve-loadgen --url HOST:PORT [--requests N] [--concurrency C] \
         [--distinct D] [--out FILE] [--no-append] [--quiet]\n\
         \x20      dice-serve-loadgen --url HOST:PORT --spec '<json>'\n\
         \x20      dice-serve-loadgen --direct '<json>'\n\
         \x20      dice-serve-loadgen --url HOST:PORT --check-metrics\n\
         \x20      dice-serve-loadgen --url HOST:PORT --check-trace\n\
         \x20      dice-serve-loadgen --fabric BIN [--fabric-workers 1,2,4] \
         [--requests N] [--concurrency C]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        url: None,
        requests: 40,
        concurrency: 4,
        distinct: 4,
        out: "BENCH_results.json".to_owned(),
        append: true,
        quiet: false,
        spec: None,
        direct: None,
        check_metrics: false,
        check_trace: false,
        fabric: None,
        fabric_workers: vec![1, 2, 4],
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("dice-serve-loadgen: {arg} needs {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--url" => parsed.url = Some(normalize_url(&value("a host:port"))),
            "--requests" => parsed.requests = value("a count").parse().unwrap_or_else(|_| usage()),
            "--concurrency" => {
                parsed.concurrency = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--distinct" => parsed.distinct = value("a count").parse().unwrap_or_else(|_| usage()),
            "--out" => parsed.out = value("a file"),
            "--no-append" => parsed.append = false,
            "--quiet" => parsed.quiet = true,
            "--spec" => parsed.spec = Some(value("a JSON spec")),
            "--direct" => parsed.direct = Some(value("a JSON spec")),
            "--check-metrics" => parsed.check_metrics = true,
            "--check-trace" => parsed.check_trace = true,
            "--fabric" => parsed.fabric = Some(value("a dice-fabric binary path")),
            "--fabric-workers" => {
                parsed.fabric_workers = value("a comma list of fleet sizes")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if parsed.fabric_workers.is_empty() {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

/// Accepts `http://host:port[/]` or bare `host:port`.
fn normalize_url(url: &str) -> String {
    url.trim_start_matches("http://")
        .trim_end_matches('/')
        .to_owned()
}

/// The tiny sweep used in load mode; the seed makes it cold or warm.
fn load_spec(seed: usize) -> String {
    format!(
        r#"{{"orgs":["base"],"workloads":["gcc"],"scale":4096,"warmup":50,"measure":150,"seed":{seed}}}"#
    )
}

/// Prints exactly `body` (no trailing newline) so shell `cmp` against
/// another emitter's output is meaningful.
fn emit_body(body: &str) {
    let mut out = std::io::stdout();
    out.write_all(body.as_bytes()).expect("write stdout");
    out.flush().expect("flush stdout");
}

/// `--direct`: run the spec through the runner in-process and print the
/// canonical document.
fn run_direct(spec_text: &str) -> i32 {
    let spec = match SweepSpec::parse(spec_text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("dice-serve-loadgen: {e}");
            return 2;
        }
    };
    let runner = Runner::new(RunnerConfig::default()).expect("no cache dir, cannot fail");
    let result = runner.run(spec.to_cells());
    emit_body(&render_runs(&result).render());
    0
}

/// Submits one spec and waits for the report body; returns
/// `(job id, body, coalesced)`. `Err` carries a human-readable failure.
fn submit_and_wait(addr: &str, spec_text: &str) -> Result<(String, String, bool), String> {
    let submitted = loop {
        let resp = http_post(addr, "/v1/sweeps", spec_text)
            .map_err(|e| format!("POST /v1/sweeps: {e}"))?;
        match resp.status {
            202 => break resp,
            429 => std::thread::sleep(Duration::from_millis(100)),
            s => return Err(format!("POST /v1/sweeps: HTTP {s}: {}", resp.text())),
        }
    };
    let body = Json::parse(&submitted.text()).map_err(|e| format!("submit response: {e}"))?;
    let id = body
        .get("id")
        .and_then(Json::as_str)
        .ok_or("submit response missing id")?
        .to_owned();
    let coalesced = body.get("coalesced") == Some(&Json::Bool(true));

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status =
            http_get(addr, &format!("/v1/sweeps/{id}")).map_err(|e| format!("GET status: {e}"))?;
        let doc = Json::parse(&status.text()).map_err(|e| format!("status response: {e}"))?;
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") => return Err(format!("sweep failed: {}", status.text())),
            Some("cancelled") => return Err("sweep cancelled".to_owned()),
            _ if Instant::now() > deadline => return Err("sweep timed out".to_owned()),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let report = http_get(addr, &format!("/v1/sweeps/{id}/report"))
        .map_err(|e| format!("GET report: {e}"))?;
    if report.status != 200 {
        return Err(format!("GET report: HTTP {}", report.status));
    }
    Ok((id, report.text(), coalesced))
}

/// `--check-trace`: run a tiny sweep, then validate the trace endpoint.
/// The probe is version-gated: a server built from this crate version
/// must serve a valid Chrome trace, while an older server that predates
/// the endpoint may legitimately answer 404.
fn run_check_trace(addr: &str) -> i32 {
    let server_version = match http_get(addr, "/version") {
        Ok(resp) if resp.status == 200 => Json::parse(&resp.text())
            .ok()
            .and_then(|doc| doc.get("version").and_then(Json::as_str).map(str::to_owned)),
        _ => None,
    };
    let id = match submit_and_wait(addr, &load_spec(0)) {
        Ok((id, _body, _)) => id,
        Err(e) => {
            eprintln!("dice-serve-loadgen: {e}");
            return 1;
        }
    };
    let resp = match http_get(addr, &format!("/v1/sweeps/{id}/trace")) {
        Ok(resp) => resp,
        Err(e) => {
            eprintln!("dice-serve-loadgen: GET trace: {e}");
            return 1;
        }
    };
    match resp.status {
        200 => {
            let doc = match Json::parse(&resp.text()) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("dice-serve-loadgen: trace is not JSON: {e}");
                    return 1;
                }
            };
            if let Err(e) = validate_chrome_trace(&doc) {
                eprintln!("dice-serve-loadgen: trace invalid: {e}");
                return 1;
            }
            println!(
                "/v1/sweeps/:id/trace is a valid Chrome trace ({} events)",
                doc.as_arr().map_or(0, |events| events.len())
            );
            0
        }
        404 if server_version.as_deref() != Some(env!("CARGO_PKG_VERSION")) => {
            println!(
                "server version {} predates the trace endpoint; 404 tolerated",
                server_version.as_deref().unwrap_or("unknown")
            );
            0
        }
        s => {
            eprintln!(
                "dice-serve-loadgen: GET trace: HTTP {s} from server version {}",
                server_version.as_deref().unwrap_or("unknown")
            );
            1
        }
    }
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Load mode: closed-loop clients over a mixed cold/warm spec set.
fn run_load(args: &Args, addr: &str) -> i32 {
    let say = |msg: &str| {
        if !args.quiet {
            println!("{msg}");
        }
    };
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(args.requests));
    let coalesced = AtomicUsize::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..args.concurrency.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= args.requests {
                    return;
                }
                let spec = load_spec(i % args.distinct.max(1));
                let t0 = Instant::now();
                match submit_and_wait(addr, &spec) {
                    Ok((_id, _body, was_coalesced)) => {
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        latencies.lock().expect("latencies").push(ms);
                        if was_coalesced {
                            coalesced.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(e) => failures.lock().expect("failures").push(e),
                }
            });
        }
    });

    let wall = started.elapsed().as_secs_f64();
    let failures = failures.into_inner().expect("failures");
    let mut latencies = latencies.into_inner().expect("latencies");
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if !failures.is_empty() {
        eprintln!(
            "dice-serve-loadgen: {} of {} requests failed; first: {}",
            failures.len(),
            args.requests,
            failures[0]
        );
        return 1;
    }

    let completed = latencies.len();
    let req_per_s = completed as f64 / wall.max(1e-9);
    let p50 = percentile(&latencies, 50.0);
    let p90 = percentile(&latencies, 90.0);
    let p99 = percentile(&latencies, 99.0);
    let coalesced = coalesced.load(Ordering::Relaxed);
    say(&format!(
        "{completed} requests ({} distinct sweeps, {coalesced} coalesced) on {} clients in {wall:.2}s",
        args.distinct, args.concurrency
    ));
    say(&format!(
        "throughput {req_per_s:>8.1} req/s   latency p50 {p50:.1} ms, p90 {p90:.1} ms, p99 {p99:.1} ms"
    ));

    if args.append {
        let unix_time = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let entry = Json::Obj(vec![
            ("git_rev".into(), Json::str(git_rev())),
            ("unix_time".into(), Json::u64(unix_time)),
            (
                "serve".into(),
                Json::Obj(vec![
                    ("requests".into(), Json::u64(completed as u64)),
                    ("concurrency".into(), Json::u64(args.concurrency as u64)),
                    ("distinct".into(), Json::u64(args.distinct as u64)),
                    ("coalesced".into(), Json::u64(coalesced as u64)),
                    ("req_per_s".into(), Json::num(req_per_s)),
                    ("p50_ms".into(), Json::num(p50)),
                    ("p90_ms".into(), Json::num(p90)),
                    ("p99_ms".into(), Json::num(p99)),
                ]),
            ),
        ]);
        let mut entries = match std::fs::read_to_string(&args.out) {
            Ok(text) => match Json::parse(&text) {
                Ok(Json::Arr(entries)) => entries,
                _ => Vec::new(),
            },
            Err(_) => Vec::new(),
        };
        entries.push(entry);
        if let Err(e) = std::fs::write(&args.out, Json::Arr(entries).render()) {
            eprintln!("dice-serve-loadgen: writing {}: {e}", args.out);
            return 1;
        }
        say(&format!("appended serving entry to {}", args.out));
    }
    0
}

/// A spawned fabric node process, killed (and reaped) on drop so a
/// failed stage never leaks workers.
struct FabricNode {
    child: std::process::Child,
}

impl Drop for FabricNode {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns a `dice-fabric` role and scrapes the announced address from
/// its `… listening on 127.0.0.1:PORT` stdout line.
fn spawn_fabric_node(bin: &str, node_args: &[String]) -> Result<(FabricNode, String), String> {
    use std::io::BufRead;
    let mut child = Command::new(bin)
        .args(node_args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning {bin}: {e}"))?;
    let stdout = child.stdout.take().expect("stdout piped");
    let node = FabricNode { child };
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading {bin} stdout: {e}"))?;
        if n == 0 {
            return Err(format!("{bin} exited before announcing its address"));
        }
        if let Some(at) = line.find("listening on ") {
            let addr = line[at + "listening on ".len()..].trim().to_owned();
            return Ok((node, addr));
        }
    }
}

/// The sweep driven per fabric request: one cell heavy enough
/// (~200 ms) that simulation time, not HTTP overhead, dominates — the
/// regime where worker count should show in throughput.
fn fabric_spec(seed: usize) -> String {
    format!(
        r#"{{"orgs":["base"],"workloads":["gcc"],"scale":64,"warmup":2000,"measure":20000,"seed":{seed}}}"#
    )
}

/// `--fabric`: per fleet size, boot that many workers plus a
/// coordinator, drive a cold closed-loop sweep load through the fabric,
/// and record throughput. Every request is a distinct single-cell spec
/// against a fresh per-stage cache, so each stage measures pure
/// simulation throughput — the quantity that should scale with workers.
/// Closed-loop clients scale with the fleet (4 per worker, the workers'
/// cell parallelism) so offered load never caps the larger stages.
///
/// Workers are processes on the local host, so speedup is bounded by
/// host parallelism: with `host_cpus` cores, stages beyond that size
/// measure coordination overhead at constant aggregate simulation
/// throughput rather than scaling. The entry records `host_cpus` and
/// flags each oversubscribed stage (and the run) `cpu_bound: true`, with
/// a stderr warning as the stage starts, so the numbers stay
/// interpretable.
fn run_fabric(args: &Args, bin: &str) -> i32 {
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let say = |msg: &str| {
        if !args.quiet {
            println!("{msg}");
        }
    };
    let mut stages: Vec<(usize, usize, f64, bool)> = Vec::new();
    for (stage, &fleet) in args.fabric_workers.iter().enumerate() {
        let fleet = fleet.max(1);
        let cpu_bound = host_cpus < fleet;
        if cpu_bound {
            eprintln!(
                "dice-serve-loadgen: warning: {fleet} workers on {host_cpus} host cpu{}: \
                 this stage is CPU-bound and measures coordination overhead, not scaling",
                if host_cpus == 1 { "" } else { "s" }
            );
        }
        let concurrency = args.concurrency.max(4 * fleet);
        let mut nodes: Vec<FabricNode> = Vec::new();
        let mut worker_flags: Vec<String> = Vec::new();
        for i in 0..fleet {
            let cache = std::env::temp_dir().join(format!(
                "dice-fabric-loadgen-{}-{stage}-{i}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&cache);
            let spawned = spawn_fabric_node(
                bin,
                &[
                    "worker".to_owned(),
                    "--port".to_owned(),
                    "0".to_owned(),
                    "--conn-workers".to_owned(),
                    "4".to_owned(),
                    "--cache".to_owned(),
                    cache.display().to_string(),
                ],
            );
            match spawned {
                Ok((node, addr)) => {
                    nodes.push(node);
                    worker_flags.push("--worker".to_owned());
                    worker_flags.push(addr);
                }
                Err(e) => {
                    eprintln!("dice-serve-loadgen: {e}");
                    return 1;
                }
            }
        }
        let mut coord_args = vec![
            "coordinator".to_owned(),
            "--port".to_owned(),
            "0".to_owned(),
            "--conn-workers".to_owned(),
            concurrency.max(4).to_string(),
            "--capacity".to_owned(),
            (2 * concurrency).to_string(),
            "--scatter-width".to_owned(),
            "8".to_owned(),
        ];
        coord_args.extend(worker_flags);
        let (coordinator, addr) = match spawn_fabric_node(bin, &coord_args) {
            Ok(spawned) => spawned,
            Err(e) => {
                eprintln!("dice-serve-loadgen: {e}");
                return 1;
            }
        };

        let next = AtomicUsize::new(0);
        let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..concurrency {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= args.requests {
                        return;
                    }
                    // Unique seeds: every request is a cold, distinct
                    // cell, spread over the ring by its key.
                    if let Err(e) = submit_and_wait(&addr, &fabric_spec(i)) {
                        failures.lock().expect("failures").push(e);
                    }
                });
            }
        });
        let wall = started.elapsed().as_secs_f64();
        drop(coordinator);
        drop(nodes);

        let failures = failures.into_inner().expect("failures");
        if !failures.is_empty() {
            eprintln!(
                "dice-serve-loadgen: fabric stage with {fleet} workers: {} of {} requests \
                 failed; first: {}",
                failures.len(),
                args.requests,
                failures[0]
            );
            return 1;
        }
        let req_per_s = args.requests as f64 / wall.max(1e-9);
        say(&format!(
            "fabric {fleet} worker{}: {} requests on {concurrency} clients in {wall:.2}s \
             ({req_per_s:.1} req/s, {host_cpus} host cpu{})",
            if fleet == 1 { "" } else { "s" },
            args.requests,
            if host_cpus == 1 { "" } else { "s" },
        ));
        stages.push((fleet, concurrency, req_per_s, cpu_bound));
    }

    if args.append {
        let unix_time = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let stage_docs = stages
            .iter()
            .map(|&(fleet, concurrency, req_per_s, cpu_bound)| {
                Json::Obj(vec![
                    ("workers".into(), Json::u64(fleet as u64)),
                    ("concurrency".into(), Json::u64(concurrency as u64)),
                    ("req_per_s".into(), Json::num(req_per_s)),
                    ("cpu_bound".into(), Json::Bool(cpu_bound)),
                ])
            })
            .collect();
        let any_cpu_bound = stages.iter().any(|&(.., cpu_bound)| cpu_bound);
        let entry = Json::Obj(vec![
            ("git_rev".into(), Json::str(git_rev())),
            ("unix_time".into(), Json::u64(unix_time)),
            (
                "fabric_scaling".into(),
                Json::Obj(vec![
                    ("requests".into(), Json::u64(args.requests as u64)),
                    ("host_cpus".into(), Json::u64(host_cpus as u64)),
                    ("cpu_bound".into(), Json::Bool(any_cpu_bound)),
                    ("stages".into(), Json::Arr(stage_docs)),
                ]),
            ),
        ]);
        let mut entries = match std::fs::read_to_string(&args.out) {
            Ok(text) => match Json::parse(&text) {
                Ok(Json::Arr(entries)) => entries,
                _ => Vec::new(),
            },
            Err(_) => Vec::new(),
        };
        entries.push(entry);
        if let Err(e) = std::fs::write(&args.out, Json::Arr(entries).render()) {
            eprintln!("dice-serve-loadgen: writing {}: {e}", args.out);
            return 1;
        }
        say(&format!("appended fabric_scaling entry to {}", args.out));
    }
    0
}

fn main() {
    let args = parse_args();

    if let Some(spec) = &args.direct {
        std::process::exit(run_direct(spec));
    }

    if let Some(bin) = args.fabric.clone() {
        std::process::exit(run_fabric(&args, &bin));
    }

    let Some(addr) = args.url.as_deref() else {
        usage();
    };

    if args.check_metrics {
        let resp = match http_get(addr, "/metrics") {
            Ok(resp) if resp.status == 200 => resp,
            Ok(resp) => {
                eprintln!("dice-serve-loadgen: GET /metrics: HTTP {}", resp.status);
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("dice-serve-loadgen: GET /metrics: {e}");
                std::process::exit(1);
            }
        };
        match validate_prometheus(&resp.text()) {
            Ok(()) => {
                println!("/metrics is valid Prometheus exposition");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("dice-serve-loadgen: /metrics invalid: {e}");
                std::process::exit(1);
            }
        }
    }

    if args.check_trace {
        std::process::exit(run_check_trace(addr));
    }

    if let Some(spec) = &args.spec {
        match submit_and_wait(addr, spec) {
            Ok((_id, body, _)) => {
                emit_body(&body);
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("dice-serve-loadgen: {e}");
                std::process::exit(1);
            }
        }
    }

    std::process::exit(run_load(&args, addr));
}
