//! The sweep job queue: bounded admission, single-flight dedup, and a
//! worker pool that drives [`dice_runner::Runner`].
//!
//! Invariants the HTTP layer builds on:
//!
//! * **Single-flight** — a job's id *is* its [`sweep_key`]; a submission
//!   whose key matches a live (queued/running/done) job attaches to that
//!   job instead of enqueueing a second copy, so N identical concurrent
//!   `POST`s execute exactly one sweep and all read the same bytes.
//! * **Bounded admission** — at most `capacity` jobs may be queued or
//!   running; beyond that [`JobQueue::submit`] answers
//!   [`Submission::Overloaded`] (HTTP 429) immediately. The backlog can
//!   never grow without bound.
//! * **Graceful drain** — [`JobQueue::drain`] cancels jobs that have not
//!   started, lets running sweeps finish (every completed cell is already
//!   persisted by the runner's [`DiskCache`](dice_runner::DiskCache)),
//!   and [`JobQueue::join`] waits for the workers to exit.
//!   [`JobQueue::force_cancel`] additionally flips the cooperative
//!   [`RunnerConfig::cancel`] flag so in-flight sweeps stop claiming
//!   cells.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use dice_obs::{merge_chrome, Json, MetricRegistry, TraceCtx};
use dice_runner::{Cell, CellProgress, ProgressSink, Runner, RunnerConfig};

use crate::spec::{render_runs, sweep_key, SweepSpec};

/// Where one job stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running the sweep.
    Running,
    /// Finished; the canonical report body is available.
    Done,
    /// The runner could not start (e.g. cache directory I/O failure).
    Failed,
    /// Cancelled by drain before a worker picked it up.
    Cancelled,
}

impl JobState {
    /// The wire spelling used in status documents.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One tracked sweep job.
struct Job {
    spec: SweepSpec,
    cells: usize,
    state: JobState,
    /// `render_runs` output once [`JobState::Done`].
    body: Option<Arc<String>>,
    /// Failure reason once [`JobState::Failed`].
    error: Option<String>,
    /// Runner summary line once finished.
    summary: Option<String>,
    /// Identical submissions that attached to this job after the first.
    coalesced: u64,
    /// Per-cell progress events (rendered JSON objects), appended in
    /// completion order while the sweep runs. SSE readers poll these via
    /// [`JobQueue::poll_events`].
    events: Vec<Arc<String>>,
    /// Merged Chrome `trace_event` document once [`JobState::Done`].
    trace: Option<Arc<String>>,
}

/// Outcome of [`JobQueue::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// The sweep was accepted (or attached to an identical live job).
    Accepted {
        /// Job id (the sweep key).
        id: u64,
        /// Whether this submission coalesced onto an existing job.
        coalesced: bool,
        /// Job state at submission time.
        state: JobState,
    },
    /// The queue is full; retry after the hinted number of seconds.
    Overloaded {
        /// `Retry-After` hint in seconds.
        retry_after_s: u64,
    },
    /// The service is draining and accepts no new work.
    Draining,
}

/// Queue construction knobs.
#[derive(Debug, Clone)]
pub struct JobQueueConfig {
    /// Maximum jobs queued + running before submissions get 429.
    pub capacity: usize,
    /// Sweep worker threads.
    pub workers: usize,
    /// Runner configuration applied to every sweep (`cancel` is replaced
    /// by the queue's own flag).
    pub runner: RunnerConfig,
}

impl Default for JobQueueConfig {
    fn default() -> Self {
        Self {
            capacity: 8,
            workers: 1,
            runner: RunnerConfig::default(),
        }
    }
}

struct Inner {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    /// Jobs currently being executed by a worker.
    active: usize,
}

struct Shared {
    inner: Mutex<Inner>,
    work_ready: Condvar,
    draining: AtomicBool,
    cancel: Arc<AtomicBool>,
    metrics: Arc<Mutex<MetricRegistry>>,
}

/// The job queue. Cheap to share via `Arc`; see the module docs for the
/// invariants.
pub struct JobQueue {
    shared: Arc<Shared>,
    capacity: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobQueue {
    /// Spawns `config.workers` worker threads and returns the queue.
    #[must_use]
    pub fn new(config: JobQueueConfig, metrics: Arc<Mutex<MetricRegistry>>) -> Arc<JobQueue> {
        let cancel = Arc::new(AtomicBool::new(false));
        let mut runner_cfg = config.runner;
        runner_cfg.cancel = Some(Arc::clone(&cancel));
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                active: 0,
            }),
            work_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            cancel,
            metrics,
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let runner_cfg = runner_cfg.clone();
                std::thread::spawn(move || worker_loop(&shared, &runner_cfg))
            })
            .collect();
        Arc::new(JobQueue {
            shared,
            capacity: config.capacity.max(1),
            workers: Mutex::new(workers),
        })
    }

    /// Submits a sweep. See [`Submission`] for the possible outcomes.
    pub fn submit(&self, spec: SweepSpec) -> Submission {
        if self.shared.draining.load(Ordering::SeqCst) {
            return Submission::Draining;
        }
        let cells = spec.to_cells();
        let id = sweep_key(&cells);
        let mut inner = self.shared.inner.lock().expect("job queue poisoned");
        if let Some(job) = inner.jobs.get_mut(&id) {
            // Failed/cancelled jobs may be resubmitted; anything live
            // coalesces.
            if !matches!(job.state, JobState::Failed | JobState::Cancelled) {
                job.coalesced += 1;
                let state = job.state;
                drop(inner);
                self.count("serve.sweeps_coalesced");
                return Submission::Accepted {
                    id,
                    coalesced: true,
                    state,
                };
            }
        }
        if inner.queue.len() + inner.active >= self.capacity {
            drop(inner);
            self.count("serve.sweeps_rejected");
            return Submission::Overloaded { retry_after_s: 1 };
        }
        inner.jobs.insert(
            id,
            Job {
                cells: cells.len(),
                spec,
                state: JobState::Queued,
                body: None,
                error: None,
                summary: None,
                coalesced: 0,
                events: Vec::new(),
                trace: None,
            },
        );
        inner.queue.push_back(id);
        drop(inner);
        self.count("serve.sweeps_submitted");
        self.shared.work_ready.notify_one();
        Submission::Accepted {
            id,
            coalesced: false,
            state: JobState::Queued,
        }
    }

    /// The status document for job `id`, or `None` if unknown.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<Json> {
        let inner = self.shared.inner.lock().expect("job queue poisoned");
        let job = inner.jobs.get(&id)?;
        let mut pairs = vec![
            ("id".to_owned(), Json::str(format!("{id:016x}"))),
            ("state".to_owned(), Json::str(job.state.as_str())),
            ("cells".to_owned(), Json::u64(job.cells as u64)),
            ("coalesced".to_owned(), Json::u64(job.coalesced)),
            ("spec".to_owned(), job.spec.to_json()),
        ];
        if let Some(summary) = &job.summary {
            pairs.push(("summary".to_owned(), Json::str(summary)));
        }
        if let Some(error) = &job.error {
            pairs.push(("error".to_owned(), Json::str(error)));
        }
        Some(Json::Obj(pairs))
    }

    /// The canonical report body for job `id`: `Ok(body)` once done,
    /// `Err(state)` while not, `None` if unknown.
    #[must_use]
    pub fn report(&self, id: u64) -> Option<Result<Arc<String>, JobState>> {
        let inner = self.shared.inner.lock().expect("job queue poisoned");
        let job = inner.jobs.get(&id)?;
        Some(match (&job.body, job.state) {
            (Some(body), JobState::Done) => Ok(Arc::clone(body)),
            (_, state) => Err(state),
        })
    }

    /// Progress events for job `id` from index `cursor` on, plus the
    /// job's state at the moment of the read (events and state are read
    /// atomically, so a terminal state means the returned slice completes
    /// the stream). `None` if the job is unknown.
    #[must_use]
    pub fn poll_events(&self, id: u64, cursor: usize) -> Option<(Vec<Arc<String>>, JobState)> {
        let inner = self.shared.inner.lock().expect("job queue poisoned");
        let job = inner.jobs.get(&id)?;
        let events = match job.events.get(cursor..) {
            Some(rest) => rest.to_vec(),
            None => Vec::new(),
        };
        Some((events, job.state))
    }

    /// The merged Chrome trace for job `id`: `Ok(body)` once done,
    /// `Err(state)` while not, `None` if unknown.
    #[must_use]
    pub fn trace(&self, id: u64) -> Option<Result<Arc<String>, JobState>> {
        let inner = self.shared.inner.lock().expect("job queue poisoned");
        let job = inner.jobs.get(&id)?;
        Some(match (&job.trace, job.state) {
            (Some(trace), JobState::Done) => Ok(Arc::clone(trace)),
            (_, state) => Err(state),
        })
    }

    /// Stops accepting work and cancels jobs no worker has started.
    /// Running sweeps finish normally; call [`JobQueue::join`] to wait.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let mut inner = self.shared.inner.lock().expect("job queue poisoned");
        while let Some(id) = inner.queue.pop_front() {
            if let Some(job) = inner.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
            }
        }
        drop(inner);
        self.shared.work_ready.notify_all();
    }

    /// Flips the cooperative cancel flag shared with every running
    /// sweep: workers finish the cells they already claimed and skip the
    /// rest. Implies nothing about accepting new work — call
    /// [`JobQueue::drain`] first.
    pub fn force_cancel(&self) {
        self.shared.cancel.store(true, Ordering::SeqCst);
    }

    /// Waits for every worker to exit. Only meaningful after
    /// [`JobQueue::drain`].
    pub fn join(&self) {
        let handles = std::mem::take(&mut *self.workers.lock().expect("job queue poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn count(&self, name: &str) {
        let mut reg = self.shared.metrics.lock().expect("metrics poisoned");
        let id = reg.counter(name);
        reg.inc(id);
    }
}

fn worker_loop(shared: &Arc<Shared>, runner_cfg: &RunnerConfig) {
    loop {
        let (id, cells) = {
            let mut inner = shared.inner.lock().expect("job queue poisoned");
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    let Some(job) = inner.jobs.get_mut(&id) else {
                        continue;
                    };
                    job.state = JobState::Running;
                    let cells = job.spec.to_cells();
                    inner.active += 1;
                    break (id, cells);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                inner = shared.work_ready.wait(inner).expect("job queue poisoned");
            }
        };

        let finished = run_sweep(shared, runner_cfg, id, cells);

        let mut inner = shared.inner.lock().expect("job queue poisoned");
        inner.active -= 1;
        if let Some(job) = inner.jobs.get_mut(&id) {
            match finished {
                Ok((body, summary, trace)) => {
                    job.state = JobState::Done;
                    job.body = Some(Arc::new(body));
                    job.summary = Some(summary);
                    job.trace = Some(Arc::new(trace));
                }
                Err(error) => {
                    job.state = JobState::Failed;
                    job.error = Some(error);
                }
            }
        }
    }
}

/// Renders one [`CellProgress`] as the JSON object pushed to the job's
/// event log (and streamed over SSE).
fn render_event(p: &CellProgress) -> String {
    Json::Obj(vec![
        ("event".into(), Json::str("cell")),
        ("seq".into(), Json::u64(p.seq as u64)),
        ("total".into(), Json::u64(p.total as u64)),
        ("tag".into(), Json::str(&p.tag)),
        ("workload".into(), Json::str(&p.workload)),
        ("status".into(), Json::str(p.status)),
        ("wall_ms".into(), Json::u64(p.wall_ms)),
    ])
    .render()
}

/// Runs one sweep and renders the canonical body, summary and Chrome
/// trace. Every sweep runs under its own [`TraceCtx`]: the runner opens
/// per-cell spans under the sweep root and the simulator nests its phase
/// spans beneath them, so the exported trace is one causally-linked tree.
/// The canonical report body stays untouched by tracing — spans live only
/// in the separate trace document. The only error path is runner
/// construction (cache directory I/O) — per-cell failures are part of the
/// rendered document, not a job failure.
fn run_sweep(
    shared: &Arc<Shared>,
    runner_cfg: &RunnerConfig,
    job_id: u64,
    cells: Vec<Cell>,
) -> Result<(String, String, String), String> {
    let ctx = TraceCtx::enabled();
    let sweep_name = format!("sweep {job_id:016x}");
    let root = ctx.span(&sweep_name, None).expect("enabled context");
    let mut cfg = runner_cfg.clone();
    cfg.trace = Some(ctx.clone());
    cfg.trace_parent = Some(root.id());
    let sink_shared = Arc::clone(shared);
    cfg.progress = Some(ProgressSink::new(move |p: CellProgress| {
        let event = render_event(&p);
        let mut inner = sink_shared.inner.lock().expect("job queue poisoned");
        if let Some(job) = inner.jobs.get_mut(&job_id) {
            job.events.push(Arc::new(event));
        }
    }));
    let runner = Runner::new(cfg).map_err(|e| format!("runner setup: {e}"))?;
    let started = std::time::Instant::now();
    let result = runner.run(cells);
    let body = render_runs(&result).render();
    let summary = result.summary();
    drop(root);
    let trace = merge_chrome(vec![ctx.export_chrome(&sweep_name, 0)]).render();
    let mut reg = shared.metrics.lock().expect("metrics poisoned");
    let id = reg.counter("serve.sweeps_completed");
    reg.inc(id);
    let hist = reg.histogram("serve.sweep_wall_ms");
    reg.observe(hist, started.elapsed().as_millis() as u64);
    result.register(&mut reg);
    Ok((body, summary, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(seed: u64) -> SweepSpec {
        SweepSpec::parse(&format!(
            r#"{{"orgs":["base"],"workloads":["gcc"],"scale":4096,"warmup":50,"measure":150,"seed":{seed}}}"#
        ))
        .expect("valid spec")
    }

    fn queue(capacity: usize) -> Arc<JobQueue> {
        JobQueue::new(
            JobQueueConfig {
                capacity,
                workers: 1,
                runner: RunnerConfig {
                    jobs: 1,
                    ..RunnerConfig::default()
                },
            },
            Arc::new(Mutex::new(MetricRegistry::new())),
        )
    }

    fn wait_done(q: &JobQueue, id: u64) -> Arc<String> {
        for _ in 0..2_000 {
            match q.report(id) {
                Some(Ok(body)) => return body,
                Some(Err(JobState::Failed)) => panic!("job failed"),
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        }
        panic!("job {id:016x} never finished");
    }

    #[test]
    fn runs_a_job_to_done() {
        let q = queue(4);
        let Submission::Accepted { id, coalesced, .. } = q.submit(tiny_spec(1)) else {
            panic!("rejected");
        };
        assert!(!coalesced);
        let body = wait_done(&q, id);
        assert!(body.starts_with("{\"runs\":["));
        let status = q.status(id).expect("known job");
        assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
        q.drain();
        q.join();
    }

    #[test]
    fn finished_job_exposes_events_and_a_valid_trace() {
        let q = queue(4);
        let Submission::Accepted { id, .. } = q.submit(SweepSpec::parse(
            r#"{"orgs":["base","dice36"],"workloads":["gcc"],"scale":4096,"warmup":50,"measure":150,"seed":5}"#,
        )
        .expect("valid spec"))
        else {
            panic!("rejected");
        };
        wait_done(&q, id);

        // One event per cell, seq 1..=total, each a valid JSON object.
        let (events, state) = q.poll_events(id, 0).expect("known job");
        assert_eq!(state, JobState::Done);
        assert_eq!(events.len(), 2);
        for (i, ev) in events.iter().enumerate() {
            let doc = Json::parse(ev).expect("event JSON");
            assert_eq!(doc.get("event").and_then(Json::as_str), Some("cell"));
            assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(i as u64 + 1));
            assert_eq!(doc.get("total").and_then(Json::as_u64), Some(2));
            assert_eq!(doc.get("status").and_then(Json::as_str), Some("simulated"));
        }
        // Cursor past the end yields nothing more.
        let (rest, _) = q.poll_events(id, events.len()).expect("known job");
        assert!(rest.is_empty());
        assert!(q.poll_events(0xdead, 0).is_none());

        // The trace is a valid Chrome document forming one tree: a sweep
        // root, a cell span per cell, and phase spans under each cell.
        let trace = q.trace(id).expect("known job").expect("done");
        let doc = Json::parse(&trace).expect("trace JSON");
        dice_obs::validate_chrome_trace(&doc).expect("valid chrome trace");
        let names: Vec<&str> = doc
            .as_arr()
            .expect("array")
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.iter().any(|n| n.starts_with("sweep ")));
        assert_eq!(names.iter().filter(|n| n.starts_with("cell:")).count(), 2);
        assert_eq!(names.iter().filter(|&&n| n == "sim.measure").count(), 2);

        q.drain();
        q.join();
    }

    #[test]
    fn identical_specs_coalesce() {
        let q = queue(4);
        let Submission::Accepted { id: a, .. } = q.submit(tiny_spec(2)) else {
            panic!("rejected");
        };
        let Submission::Accepted {
            id: b, coalesced, ..
        } = q.submit(tiny_spec(2))
        else {
            panic!("rejected");
        };
        assert_eq!(a, b);
        assert!(coalesced);
        wait_done(&q, a);
        let status = q.status(a).expect("known job");
        assert_eq!(status.get("coalesced").and_then(Json::as_u64), Some(1));
        q.drain();
        q.join();
    }

    #[test]
    fn distinct_specs_beyond_capacity_are_rejected() {
        let q = queue(2);
        let mut accepted = 0;
        let mut rejected = 0;
        for seed in 10..20 {
            match q.submit(tiny_spec(seed)) {
                Submission::Accepted { .. } => accepted += 1,
                Submission::Overloaded { retry_after_s } => {
                    assert!(retry_after_s >= 1);
                    rejected += 1;
                }
                Submission::Draining => panic!("not draining"),
            }
        }
        // The worker may have finished some jobs while we submitted, but
        // admission can never exceed capacity + completions; with 10
        // rapid submissions at capacity 2 at least some must bounce.
        assert!(rejected > 0, "queue accepted all {accepted} submissions");
        q.drain();
        q.join();
    }

    #[test]
    fn drain_cancels_queued_jobs_and_rejects_new_ones() {
        let q = queue(8);
        let ids: Vec<u64> = (30..34)
            .map(|seed| match q.submit(tiny_spec(seed)) {
                Submission::Accepted { id, .. } => id,
                other => panic!("rejected: {other:?}"),
            })
            .collect();
        q.drain();
        q.join();
        assert_eq!(q.submit(tiny_spec(99)), Submission::Draining);
        let states: Vec<&str> = ids
            .iter()
            .map(|&id| {
                let s = q.status(id).expect("known job");
                s.get("state")
                    .and_then(Json::as_str)
                    .expect("state")
                    .to_owned()
            })
            .map(|s| if s == "done" { "done" } else { "cancelled" })
            .collect();
        assert!(states.contains(&"cancelled") || states.iter().all(|&s| s == "done"));
        for (&id, state) in ids.iter().zip(&states) {
            if *state == "done" {
                assert!(q.report(id).expect("known").is_ok());
            }
        }
    }
}
