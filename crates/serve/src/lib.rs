//! `dice-serve`: the DICE harness as a long-running service.
//!
//! A zero-dependency HTTP/1.1 server (std `TcpListener` only) that exposes
//! the [`dice_runner`] sweep engine over a small JSON API:
//!
//! * `POST /v1/sweeps` — submit a sweep spec ([`SweepSpec`]); returns a
//!   job id. Submissions are **single-flight**: identical specs coalesce
//!   onto one job (one simulation, N responses), and admission is bounded
//!   (`429 Too Many Requests` + `Retry-After` when the queue is full,
//!   never an unbounded backlog).
//! * `GET /v1/sweeps/:id` — job status; `GET /v1/sweeps/:id/report` — the
//!   canonical result document, byte-identical to what a direct
//!   `dice-runner` invocation of the same spec renders.
//! * `GET /v1/experiments` — the shared experiment catalog
//!   ([`dice_bench::catalog_json`]), byte-identical to `experiments
//!   --list`.
//! * `GET /metrics` — Prometheus text exposition of the server's
//!   [`dice_obs::MetricRegistry`].
//! * `GET /healthz`, `GET /version` — liveness and build identity.
//!
//! Shutdown is a graceful drain: the first SIGTERM stops accepting
//! connections and lets in-flight sweeps finish (their cells land in the
//! persistent cache); a second SIGTERM cooperatively cancels remaining
//! cells through [`dice_runner::RunnerConfig::cancel`].
//!
//! The crate also ships `dice-serve-loadgen`, a closed-loop load
//! generator that appends serving-throughput entries to
//! `BENCH_results.json`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod jobs;
pub mod net;
pub mod promcheck;
pub mod server;
pub mod signal;
pub mod spec;
pub mod sse;

pub use client::{
    http_get, http_get_timeout, http_post, http_post_timeout, http_probe, ClientResponse,
    ProbeError,
};
pub use jobs::{JobQueue, JobQueueConfig, JobState, Submission};
pub use net::{Handled, NetConfig, NetServer};
pub use promcheck::validate_prometheus;
pub use server::{Handle, ServeConfig, Server};
pub use spec::{render_runs, sweep_key, SpecError, SweepSpec};
pub use sse::{sse_data_lines, stream_sse};
