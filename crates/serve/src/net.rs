//! A reusable HTTP/1.1 accept-pool server shell.
//!
//! `dice-serve` and the `dice-fabric` nodes share one threading model: a
//! nonblocking accept loop hands sockets to a fixed pool of connection
//! workers over a bounded channel, a full channel answers `503` inline
//! (connections never pile up unbounded), and a drain flag stops the
//! accept loop while parked connections finish. [`NetServer`] owns that
//! machinery; services supply a [`NetHandler`] for routing, plus optional
//! observers for per-request metrics and accept-loop events.

use std::io::{self, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{read_request, ReadError, Request, Response};

/// Accept-pool construction knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Port to bind on 127.0.0.1 (`0` = ephemeral).
    pub port: u16,
    /// Connection-handler threads.
    pub conn_workers: usize,
    /// Accepted connections parked for a handler before `503`s.
    pub conn_backlog: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            port: 0,
            conn_workers: 4,
            conn_backlog: 64,
        }
    }
}

/// What a handler did with a request.
pub enum Handled {
    /// A fixed-length response for the shell to serialize.
    Respond(Response),
    /// The handler already wrote the whole response to the stream (e.g. a
    /// chunked SSE pump); the status is recorded for metrics only.
    Streamed(u16),
}

/// Routes one parsed request. The stream is available for handlers that
/// stream their own response ([`Handled::Streamed`]).
pub type NetHandler = Arc<dyn Fn(&Request, &TcpStream) -> Handled + Send + Sync>;

/// Observes one finished request: status code and handling duration.
pub type NetObserver = Arc<dyn Fn(u16, Duration) + Send + Sync>;

/// Observes accept-loop events (`"conns_rejected"`, `"accept_errors"`).
pub type NetCounter = Arc<dyn Fn(&'static str) + Send + Sync>;

/// The accept-pool shell: listener + drain flag + worker pool.
pub struct NetServer {
    listener: TcpListener,
    drain: Arc<AtomicBool>,
    conn_workers: usize,
    conn_backlog: usize,
}

impl NetServer {
    /// Binds `127.0.0.1:port`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: &NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        Ok(NetServer {
            listener,
            drain: Arc::new(AtomicBool::new(false)),
            conn_workers: config.conn_workers.max(1),
            conn_backlog: config.conn_backlog.max(1),
        })
    }

    /// The bound address (useful with `port: 0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The drain flag: flipping it to `true` stops the accept loop;
    /// [`NetServer::run`] then finishes parked connections and returns.
    #[must_use]
    pub fn drain_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// Serves until the drain flag flips, then drains: stops accepting,
    /// finishes parked connections, joins the pool, and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures (accept-time errors on
    /// individual connections are counted via `count`, not fatal).
    pub fn run(
        &self,
        handler: NetHandler,
        observe: Option<NetObserver>,
        count: Option<NetCounter>,
    ) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(self.conn_backlog);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.conn_workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let observe = observe.clone();
                std::thread::spawn(move || connection_worker(&rx, &handler, observe.as_ref()))
            })
            .collect();

        let tally = |event| {
            if let Some(count) = &count {
                count(event);
            }
        };
        while !self.drain.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Inline, bounded rejection: never park more than
                        // `conn_backlog` connections.
                        reject_busy(stream);
                        tally("conns_rejected");
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => tally("accept_errors"),
            }
        }

        // Drain: close the channel so workers finish parked connections
        // and exit.
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Best-effort `503` for connections beyond the backlog bound.
pub fn reject_busy(stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let _ = Response::error(503, "server busy")
        .with_header("Retry-After", "1")
        .write(&mut stream);
    let _ = stream.shutdown(Shutdown::Both);
}

fn connection_worker(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    handler: &NetHandler,
    observe: Option<&NetObserver>,
) {
    loop {
        // Hold the lock only for the recv; handlers must not serialize on
        // each other while talking to clients.
        let stream = {
            let rx = rx.lock().expect("conn channel poisoned");
            rx.recv()
        };
        let Ok(stream) = stream else {
            return;
        };
        handle_connection(stream, handler, observe);
    }
}

fn handle_connection(stream: TcpStream, handler: &NetHandler, observe: Option<&NetObserver>) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let record = |status: u16| {
        if let Some(observe) = observe {
            observe(status, started.elapsed());
        }
    };
    let response = match read_request(&mut reader) {
        Ok(request) => match handler(&request, &stream) {
            Handled::Respond(response) => response,
            Handled::Streamed(status) => {
                record(status);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        },
        Err(ReadError::Closed) => return,
        Err(ReadError::Bad { status, msg }) => Response::error(status, msg),
        Err(ReadError::Io(_)) => return,
    };
    record(response.status);
    let mut stream = stream;
    let _ = response.write(&mut stream);
    let _ = stream.shutdown(Shutdown::Both);
}
