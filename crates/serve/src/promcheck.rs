//! A strict validator for the Prometheus text exposition format
//! (version 0.0.4), used by `dice-serve-loadgen --check-metrics` and the
//! CI smoke job to prove `/metrics` stays machine-parseable.
//!
//! Checks, per line:
//!
//! * comments are well-formed `# HELP <name> …` / `# TYPE <name> <kind>`
//!   with a known kind;
//! * samples are `name[{labels}] value` with a legal metric name, a
//!   parseable value (float, `+Inf`, `-Inf`, `NaN`), and balanced,
//!   quoted labels;
//! * every sample's family has a preceding `# TYPE` declaration;
//! * histogram families expose `_bucket` series with an `le` label and a
//!   terminal `le="+Inf"` bucket.

/// Validates `text` as Prometheus 0.0.4 exposition.
///
/// # Errors
///
/// Returns `line number: problem` for the first violation.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    // Histogram families that have emitted an `le="+Inf"` bucket.
    let mut histograms: Vec<(String, bool)> = Vec::new();

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let fail = |msg: String| Err(format!("line {lineno}: {msg}"));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("HELP"), Some(name), Some(_)) if is_metric_name(name) => {}
                (Some("TYPE"), Some(name), Some(kind)) if is_metric_name(name) => {
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return fail(format!("unknown TYPE kind {kind:?}"));
                    }
                    typed.push(name.to_owned());
                    if kind == "histogram" {
                        histograms.push((name.to_owned(), false));
                    }
                }
                _ => return fail("malformed comment (want # HELP/# TYPE)".to_owned()),
            }
            continue;
        }
        if line.starts_with('#') {
            return fail("comment must start with \"# \"".to_owned());
        }

        // Sample: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
        if !is_sample_value(value) {
            return fail(format!("unparseable value {value:?}"));
        }
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unbalanced label braces"))?;
                (name, Some(labels))
            }
            None => (name_labels, None),
        };
        if !is_metric_name(name) {
            return fail(format!("illegal metric name {name:?}"));
        }
        let family = family_of(name, &typed);
        if !typed.iter().any(|t| t == family) {
            return fail(format!("sample {name:?} has no preceding # TYPE {family}"));
        }
        if let Some(labels) = labels {
            validate_labels(labels).map_err(|e| format!("line {lineno}: {e}"))?;
            if name.ends_with("_bucket") && labels.contains("le=\"+Inf\"") {
                if let Some(entry) = histograms.iter_mut().find(|(h, _)| h == family) {
                    entry.1 = true;
                }
            }
        }
    }

    for (name, saw_inf) in &histograms {
        if !saw_inf {
            return Err(format!("histogram {name:?} never emitted le=\"+Inf\""));
        }
    }
    Ok(())
}

/// The declared family a sample belongs to: the name itself when it has
/// its own `# TYPE`, otherwise the histogram stem of an
/// `_bucket`/`_sum`/`_count` suffix (so a counter that merely *ends* in
/// `_count` is not misattributed).
fn family_of<'a>(name: &'a str, typed: &[String]) -> &'a str {
    if typed.iter().any(|t| t == name) {
        return name;
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if typed.iter().any(|t| t == stem) {
                return stem;
            }
        }
    }
    name
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_sample_value(value: &str) -> bool {
    matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok()
}

/// `key="value"` pairs, comma-separated, escapes limited to `\\`, `\"`,
/// `\n`.
fn validate_labels(labels: &str) -> Result<(), String> {
    let mut rest = labels;
    loop {
        let eq = rest
            .find("=\"")
            .ok_or_else(|| format!("label without =\" in {rest:?}"))?;
        let key = &rest[..eq];
        if !is_metric_name(key) {
            return Err(format!("illegal label name {key:?}"));
        }
        rest = &rest[eq + 2..];
        // Find the closing quote, honoring backslash escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            match (escaped, c) {
                (true, '\\' | '"' | 'n') => escaped = false,
                (true, _) => return Err(format!("bad escape in label value near {rest:?}")),
                (false, '\\') => escaped = true,
                (false, '"') => {
                    end = Some(i);
                    break;
                }
                (false, _) => {}
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {rest:?}"))?;
        rest = &rest[end + 1..];
        match rest.strip_prefix(',') {
            Some(more) => rest = more,
            None if rest.is_empty() => return Ok(()),
            None => return Err(format!("junk after label value: {rest:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_obs::{render_prometheus, MetricRegistry};

    #[test]
    fn accepts_renderer_output() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("serve.http_requests");
        reg.add(c, 3);
        let g = reg.gauge("queue.depth");
        reg.set_gauge(g, 2.5);
        let h = reg.histogram("serve.request_micros");
        for v in [0, 5, 5, 1000] {
            reg.observe(h, v);
        }
        let text = render_prometheus(&reg);
        validate_prometheus(&text).expect("renderer output must validate");
    }

    #[test]
    fn accepts_empty() {
        validate_prometheus("").expect("empty exposition is valid");
    }

    #[test]
    fn rejects_violations() {
        for (bad, why) in [
            ("orphan 1", "sample without TYPE"),
            ("# TYPE x counter\nx nope", "bad value"),
            ("# TYPE x counter\n9x 1", "bad name"),
            ("# TYPE x wat\nx 1", "unknown kind"),
            ("#TYPE x counter", "comment without space"),
            ("# TYPE x counter\nx{le=\"1 1", "unterminated label"),
            (
                "# TYPE x histogram\nx_bucket{le=\"1\"} 1\nx_sum 1\nx_count 1",
                "histogram without +Inf",
            ),
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted ({why}): {bad}");
        }
    }

    #[test]
    fn histogram_with_inf_passes() {
        let text = "# TYPE x histogram\nx_bucket{le=\"1\"} 1\nx_bucket{le=\"+Inf\"} 1\nx_sum 1\nx_count 1\n";
        validate_prometheus(text).expect("complete histogram validates");
    }
}
