//! The HTTP front end: the shared [`NetServer`] accept pool routing onto
//! the [`JobQueue`].
//!
//! Threading model (see [`crate::net`]): the accept loop runs nonblocking
//! and hands accepted sockets to a fixed pool of connection workers over
//! a bounded channel (a full channel answers `503` inline — connections
//! never pile up unbounded). Sweep execution happens on the job queue's
//! own workers, so connection handling stays fast even while simulations
//! run.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dice_obs::{render_prometheus, Json, MetricRegistry};

use crate::http::{Request, Response};
use crate::jobs::{JobQueue, JobQueueConfig, JobState, Submission};
use crate::net::{Handled, NetConfig, NetServer};
use crate::spec::SweepSpec;
use crate::sse::stream_sse;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` = ephemeral; read the bound port
    /// from [`Server::local_addr`]).
    pub port: u16,
    /// Connection-handler threads.
    pub conn_workers: usize,
    /// Accepted connections parked for a handler before `503`s.
    pub conn_backlog: usize,
    /// Job queue configuration (admission bound, sweep workers, runner).
    pub queue: JobQueueConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            port: 7341,
            conn_workers: 4,
            conn_backlog: 64,
            queue: JobQueueConfig::default(),
        }
    }
}

/// A handle for steering a running server from another thread.
#[derive(Clone)]
pub struct Handle {
    drain: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
}

impl Handle {
    /// Begins a graceful drain: stop accepting connections, cancel jobs
    /// no worker started, let running sweeps finish. [`Server::run`]
    /// returns once the drain completes.
    pub fn drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.queue.drain();
    }

    /// Escalates a drain: cooperatively cancel in-flight sweeps (cells
    /// already claimed still finish; the rest are skipped).
    pub fn force_cancel(&self) {
        self.queue.force_cancel();
    }
}

/// The service: accept pool + job queue + metrics registry.
pub struct Server {
    net: NetServer,
    queue: Arc<JobQueue>,
    metrics: Arc<Mutex<MetricRegistry>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and spawns the sweep workers.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let net = NetServer::bind(&NetConfig {
            port: config.port,
            conn_workers: config.conn_workers,
            conn_backlog: config.conn_backlog,
        })?;
        let metrics = Arc::new(Mutex::new(MetricRegistry::new()));
        let queue = JobQueue::new(config.queue, Arc::clone(&metrics));
        Ok(Server {
            net,
            queue,
            metrics,
        })
    }

    /// The bound address (useful with `port: 0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.net.local_addr()
    }

    /// A steering handle, safe to move to signal watchers or tests.
    #[must_use]
    pub fn handle(&self) -> Handle {
        Handle {
            drain: self.net.drain_flag(),
            queue: Arc::clone(&self.queue),
        }
    }

    /// Serves until [`Handle::drain`] is called, then drains: stops
    /// accepting, finishes parked and in-flight work, joins every
    /// worker, and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures (accept-time errors on
    /// individual connections are counted, not fatal).
    pub fn run(&self) -> io::Result<()> {
        let ctx = Arc::new(RouteCtx {
            queue: Arc::clone(&self.queue),
            metrics: Arc::clone(&self.metrics),
        });
        let handler = {
            let ctx = Arc::clone(&ctx);
            Arc::new(move |request: &Request, stream: &TcpStream| handle(request, stream, &ctx))
        };
        let observe = {
            let ctx = Arc::clone(&ctx);
            Arc::new(move |status: u16, elapsed: Duration| record_request(&ctx, status, elapsed))
        };
        let count = {
            let metrics = Arc::clone(&self.metrics);
            Arc::new(move |event: &'static str| {
                let mut reg = metrics.lock().expect("metrics poisoned");
                let id = reg.counter(match event {
                    "conns_rejected" => "serve.conns_rejected",
                    _ => "serve.accept_errors",
                });
                reg.inc(id);
            })
        };
        self.net.run(handler, Some(observe), Some(count))?;
        // Accept loop has stopped; finish in-flight sweeps.
        self.queue.drain();
        self.queue.join();
        Ok(())
    }
}

/// Everything a connection handler needs to answer requests.
struct RouteCtx {
    queue: Arc<JobQueue>,
    metrics: Arc<Mutex<MetricRegistry>>,
}

/// Routes one request: the events endpoint streams incrementally and owns
/// the socket for the job's lifetime; everything else is a single
/// fixed-length response.
fn handle(request: &Request, stream: &TcpStream, ctx: &RouteCtx) -> Handled {
    match events_job_id(request) {
        Some(Ok(id)) => {
            let mut out = stream;
            Handled::Streamed(stream_sse(&mut out, |cursor| {
                ctx.queue.poll_events(id, cursor).map(|(events, state)| {
                    let terminal = matches!(
                        state,
                        JobState::Done | JobState::Failed | JobState::Cancelled
                    )
                    .then(|| state.as_str());
                    (events, terminal)
                })
            }))
        }
        Some(Err(response)) => Handled::Respond(response),
        None => Handled::Respond(route(request, ctx)),
    }
}

/// Recognizes `GET /v1/sweeps/:id/events`. `None` when the request is for
/// another endpoint; `Some(Err(response))` for a malformed events request.
fn events_job_id(request: &Request) -> Option<Result<u64, Response>> {
    let path = request.path.split('?').next().unwrap_or("");
    let id_text = path.strip_prefix("/v1/sweeps/")?.strip_suffix("/events")?;
    if request.method != "GET" {
        return Some(Err(Response::error(405, "method not allowed")));
    }
    Some(match u64::from_str_radix(id_text, 16) {
        Ok(id) => Ok(id),
        Err(_) => Err(Response::error(400, "job id must be hex")),
    })
}

fn record_request(ctx: &RouteCtx, status: u16, elapsed: Duration) {
    let mut reg = ctx.metrics.lock().expect("metrics poisoned");
    let id = reg.counter("serve.http_requests");
    reg.inc(id);
    let id = reg.counter(match status {
        200..=299 => "serve.http_2xx",
        400..=499 => "serve.http_4xx",
        _ => "serve.http_5xx",
    });
    reg.inc(id);
    let hist = reg.histogram("serve.request_micros");
    reg.observe(hist, elapsed.as_micros() as u64);
}

/// Dispatches one request to its endpoint.
fn route(request: &Request, ctx: &RouteCtx) -> Response {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/version") => Response::json(
            200,
            Json::Obj(vec![
                ("name".into(), Json::str("dice-serve")),
                ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
            ])
            .render(),
        ),
        ("GET", "/metrics") => {
            let reg = ctx.metrics.lock().expect("metrics poisoned");
            let body = render_prometheus(&reg);
            drop(reg);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                extra: Vec::new(),
                body: body.into_bytes(),
            }
        }
        ("GET", "/v1/experiments") => Response::json(200, dice_bench::catalog_json().render()),
        ("POST", "/v1/sweeps") => submit_sweep(request, ctx),
        ("GET", p) if p.starts_with("/v1/sweeps/") => sweep_get(p, ctx),
        (_, "/healthz" | "/version" | "/metrics" | "/v1/experiments" | "/v1/sweeps") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `POST /v1/sweeps`: parse, validate, admit.
fn submit_sweep(request: &Request, ctx: &RouteCtx) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let spec = match SweepSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    match ctx.queue.submit(spec) {
        Submission::Accepted {
            id,
            coalesced,
            state,
        } => Response::json(
            202,
            Json::Obj(vec![
                ("id".into(), Json::str(format!("{id:016x}"))),
                ("state".into(), Json::str(state.as_str())),
                ("coalesced".into(), Json::Bool(coalesced)),
            ])
            .render(),
        ),
        Submission::Overloaded { retry_after_s } => Response::error(429, "sweep queue full")
            .with_header("Retry-After", retry_after_s.to_string()),
        Submission::Draining => Response::error(503, "draining"),
    }
}

/// `GET /v1/sweeps/:id`, `GET /v1/sweeps/:id/report` and
/// `GET /v1/sweeps/:id/trace` (`/v1/sweeps/:id/events` streams and is
/// routed before dispatch reaches here).
fn sweep_get(path: &str, ctx: &RouteCtx) -> Response {
    let rest = path.trim_start_matches("/v1/sweeps/");
    let (id_text, want) = if let Some(id) = rest.strip_suffix("/report") {
        (id, Some("report"))
    } else if let Some(id) = rest.strip_suffix("/trace") {
        (id, Some("trace"))
    } else {
        (rest, None)
    };
    let Ok(id) = u64::from_str_radix(id_text, 16) else {
        return Response::error(400, "job id must be hex");
    };
    match want {
        Some(doc) => {
            let fetched = if doc == "report" {
                ctx.queue.report(id)
            } else {
                ctx.queue.trace(id)
            };
            match fetched {
                None => Response::error(404, "no such job"),
                Some(Ok(body)) => Response::json(200, body.as_str()),
                Some(Err(JobState::Failed)) => Response::error(500, "sweep failed"),
                Some(Err(JobState::Cancelled)) => Response::error(409, "sweep cancelled"),
                Some(Err(_)) => Response::error(409, "sweep not finished"),
            }
        }
        None => match ctx.queue.status(id) {
            Some(status) => Response::json(200, status.render()),
            None => Response::error(404, "no such job"),
        },
    }
}
