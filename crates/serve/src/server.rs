//! The HTTP front end: a bounded accept/worker pool routing onto the
//! [`JobQueue`].
//!
//! Threading model: the accept loop runs nonblocking and hands accepted
//! sockets to a fixed pool of connection workers over a bounded channel
//! (a full channel answers `503` inline — connections never pile up
//! unbounded). Sweep execution happens on the job queue's own workers,
//! so connection handling stays fast even while simulations run.

use std::io::{self, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dice_obs::{render_prometheus, Json, MetricRegistry};

use crate::http::{
    finish_chunks, read_request, write_chunk, write_stream_head, ReadError, Request, Response,
};
use crate::jobs::{JobQueue, JobQueueConfig, JobState, Submission};
use crate::spec::SweepSpec;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` = ephemeral; read the bound port
    /// from [`Server::local_addr`]).
    pub port: u16,
    /// Connection-handler threads.
    pub conn_workers: usize,
    /// Accepted connections parked for a handler before `503`s.
    pub conn_backlog: usize,
    /// Job queue configuration (admission bound, sweep workers, runner).
    pub queue: JobQueueConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            port: 7341,
            conn_workers: 4,
            conn_backlog: 64,
            queue: JobQueueConfig::default(),
        }
    }
}

/// A handle for steering a running server from another thread.
#[derive(Clone)]
pub struct Handle {
    drain: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
}

impl Handle {
    /// Begins a graceful drain: stop accepting connections, cancel jobs
    /// no worker started, let running sweeps finish. [`Server::run`]
    /// returns once the drain completes.
    pub fn drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.queue.drain();
    }

    /// Escalates a drain: cooperatively cancel in-flight sweeps (cells
    /// already claimed still finish; the rest are skipped).
    pub fn force_cancel(&self) {
        self.queue.force_cancel();
    }
}

/// The service: listener + job queue + metrics registry.
pub struct Server {
    listener: TcpListener,
    queue: Arc<JobQueue>,
    metrics: Arc<Mutex<MetricRegistry>>,
    drain: Arc<AtomicBool>,
    conn_workers: usize,
    conn_backlog: usize,
}

impl Server {
    /// Binds `127.0.0.1:port` and spawns the sweep workers.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let metrics = Arc::new(Mutex::new(MetricRegistry::new()));
        let queue = JobQueue::new(config.queue, Arc::clone(&metrics));
        Ok(Server {
            listener,
            queue,
            metrics,
            drain: Arc::new(AtomicBool::new(false)),
            conn_workers: config.conn_workers.max(1),
            conn_backlog: config.conn_backlog.max(1),
        })
    }

    /// The bound address (useful with `port: 0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A steering handle, safe to move to signal watchers or tests.
    #[must_use]
    pub fn handle(&self) -> Handle {
        Handle {
            drain: Arc::clone(&self.drain),
            queue: Arc::clone(&self.queue),
        }
    }

    /// Serves until [`Handle::drain`] is called, then drains: stops
    /// accepting, finishes parked and in-flight work, joins every
    /// worker, and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures (accept-time errors on
    /// individual connections are counted, not fatal).
    pub fn run(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(self.conn_backlog);
        let rx = Arc::new(Mutex::new(rx));
        let handlers: Vec<_> = (0..self.conn_workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let ctx = RouteCtx {
                    queue: Arc::clone(&self.queue),
                    metrics: Arc::clone(&self.metrics),
                };
                std::thread::spawn(move || connection_worker(&rx, &ctx))
            })
            .collect();

        while !self.drain.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Inline, bounded rejection: never park more than
                        // `conn_backlog` connections.
                        reject_busy(stream);
                        self.count("serve.conns_rejected");
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => self.count("serve.accept_errors"),
            }
        }

        // Drain: close the channel (handlers finish parked connections
        // and exit), then let the job queue finish in-flight sweeps.
        drop(tx);
        for handler in handlers {
            let _ = handler.join();
        }
        self.queue.drain();
        self.queue.join();
        Ok(())
    }

    fn count(&self, name: &str) {
        let mut reg = self.metrics.lock().expect("metrics poisoned");
        let id = reg.counter(name);
        reg.inc(id);
    }
}

/// Best-effort `503` for connections beyond the backlog bound.
fn reject_busy(stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let _ = Response::error(503, "server busy")
        .with_header("Retry-After", "1")
        .write(&mut stream);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Everything a connection handler needs to answer requests.
struct RouteCtx {
    queue: Arc<JobQueue>,
    metrics: Arc<Mutex<MetricRegistry>>,
}

fn connection_worker(rx: &Arc<Mutex<Receiver<TcpStream>>>, ctx: &RouteCtx) {
    loop {
        // Hold the lock only for the recv; handlers must not serialize on
        // each other while talking to clients.
        let stream = {
            let rx = rx.lock().expect("conn channel poisoned");
            rx.recv()
        };
        let Ok(stream) = stream else {
            return;
        };
        handle_connection(stream, ctx);
    }
}

fn handle_connection(stream: TcpStream, ctx: &RouteCtx) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match read_request(&mut reader) {
        Ok(request) => match events_job_id(&request) {
            // The events endpoint streams incrementally and owns the
            // socket for the job's lifetime; everything else is a single
            // fixed-length response.
            Some(Ok(id)) => {
                let status = stream_events(&stream, id, ctx);
                record_request(ctx, status, started);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Some(Err(response)) => response,
            None => route(&request, ctx),
        },
        Err(ReadError::Closed) => return,
        Err(ReadError::Bad { status, msg }) => Response::error(status, msg),
        Err(ReadError::Io(_)) => return,
    };
    record_request(ctx, response.status, started);
    let mut stream = stream;
    let _ = response.write(&mut stream);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Recognizes `GET /v1/sweeps/:id/events`. `None` when the request is for
/// another endpoint; `Some(Err(response))` for a malformed events request.
fn events_job_id(request: &Request) -> Option<Result<u64, Response>> {
    let path = request.path.split('?').next().unwrap_or("");
    let id_text = path.strip_prefix("/v1/sweeps/")?.strip_suffix("/events")?;
    if request.method != "GET" {
        return Some(Err(Response::error(405, "method not allowed")));
    }
    Some(match u64::from_str_radix(id_text, 16) {
        Ok(id) => Ok(id),
        Err(_) => Err(Response::error(400, "job id must be hex")),
    })
}

/// Streams `text/event-stream` progress for job `id` until the job
/// reaches a terminal state (or the client goes away), then closes the
/// chunked stream cleanly. Returns the status code to record.
fn stream_events(stream: &TcpStream, id: u64, ctx: &RouteCtx) -> u16 {
    let mut out = stream;
    if ctx.queue.poll_events(id, 0).is_none() {
        let _ = Response::error(404, "no such job").write(&mut out);
        return 404;
    }
    if write_stream_head(&mut out, "text/event-stream").is_err() {
        return 200;
    }
    let mut cursor = 0usize;
    let mut last_write = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(600);
    // Events and state are read atomically: a terminal state means the
    // events returned alongside it complete the stream.
    while let Some((events, state)) = ctx.queue.poll_events(id, cursor) {
        cursor += events.len();
        for event in &events {
            if write_chunk(&mut out, format!("data: {event}\n\n").as_bytes()).is_err() {
                return 200;
            }
            last_write = Instant::now();
        }
        if matches!(
            state,
            JobState::Done | JobState::Failed | JobState::Cancelled
        ) {
            let end = Json::Obj(vec![
                ("event".into(), Json::str("end")),
                ("state".into(), Json::str(state.as_str())),
            ])
            .render();
            let _ = write_chunk(&mut out, format!("data: {end}\n\n").as_bytes());
            break;
        }
        if Instant::now() > deadline {
            break;
        }
        if events.is_empty() {
            // Comment heartbeat: keeps the connection visibly alive under
            // the 5 s socket write timeout while a long cell simulates.
            if last_write.elapsed() >= Duration::from_secs(2) {
                if write_chunk(&mut out, b": heartbeat\n\n").is_err() {
                    return 200;
                }
                last_write = Instant::now();
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let _ = finish_chunks(&mut out);
    200
}

fn record_request(ctx: &RouteCtx, status: u16, started: Instant) {
    let mut reg = ctx.metrics.lock().expect("metrics poisoned");
    let id = reg.counter("serve.http_requests");
    reg.inc(id);
    let id = reg.counter(match status {
        200..=299 => "serve.http_2xx",
        400..=499 => "serve.http_4xx",
        _ => "serve.http_5xx",
    });
    reg.inc(id);
    let hist = reg.histogram("serve.request_micros");
    reg.observe(hist, started.elapsed().as_micros() as u64);
}

/// Dispatches one request to its endpoint.
fn route(request: &Request, ctx: &RouteCtx) -> Response {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/version") => Response::json(
            200,
            Json::Obj(vec![
                ("name".into(), Json::str("dice-serve")),
                ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
            ])
            .render(),
        ),
        ("GET", "/metrics") => {
            let reg = ctx.metrics.lock().expect("metrics poisoned");
            let body = render_prometheus(&reg);
            drop(reg);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                extra: Vec::new(),
                body: body.into_bytes(),
            }
        }
        ("GET", "/v1/experiments") => Response::json(200, dice_bench::catalog_json().render()),
        ("POST", "/v1/sweeps") => submit_sweep(request, ctx),
        ("GET", p) if p.starts_with("/v1/sweeps/") => sweep_get(p, ctx),
        (_, "/healthz" | "/version" | "/metrics" | "/v1/experiments" | "/v1/sweeps") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `POST /v1/sweeps`: parse, validate, admit.
fn submit_sweep(request: &Request, ctx: &RouteCtx) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let spec = match SweepSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    match ctx.queue.submit(spec) {
        Submission::Accepted {
            id,
            coalesced,
            state,
        } => Response::json(
            202,
            Json::Obj(vec![
                ("id".into(), Json::str(format!("{id:016x}"))),
                ("state".into(), Json::str(state.as_str())),
                ("coalesced".into(), Json::Bool(coalesced)),
            ])
            .render(),
        ),
        Submission::Overloaded { retry_after_s } => Response::error(429, "sweep queue full")
            .with_header("Retry-After", retry_after_s.to_string()),
        Submission::Draining => Response::error(503, "draining"),
    }
}

/// `GET /v1/sweeps/:id`, `GET /v1/sweeps/:id/report` and
/// `GET /v1/sweeps/:id/trace` (`/v1/sweeps/:id/events` streams and is
/// routed before dispatch reaches here).
fn sweep_get(path: &str, ctx: &RouteCtx) -> Response {
    let rest = path.trim_start_matches("/v1/sweeps/");
    let (id_text, want) = if let Some(id) = rest.strip_suffix("/report") {
        (id, Some("report"))
    } else if let Some(id) = rest.strip_suffix("/trace") {
        (id, Some("trace"))
    } else {
        (rest, None)
    };
    let Ok(id) = u64::from_str_radix(id_text, 16) else {
        return Response::error(400, "job id must be hex");
    };
    match want {
        Some(doc) => {
            let fetched = if doc == "report" {
                ctx.queue.report(id)
            } else {
                ctx.queue.trace(id)
            };
            match fetched {
                None => Response::error(404, "no such job"),
                Some(Ok(body)) => Response::json(200, body.as_str()),
                Some(Err(JobState::Failed)) => Response::error(500, "sweep failed"),
                Some(Err(JobState::Cancelled)) => Response::error(409, "sweep cancelled"),
                Some(Err(_)) => Response::error(409, "sweep not finished"),
            }
        }
        None => match ctx.queue.status(id) {
            Some(status) => Response::json(200, status.render()),
            None => Response::error(404, "no such job"),
        },
    }
}
