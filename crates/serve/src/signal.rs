//! SIGTERM/SIGINT accounting without a libc dependency.
//!
//! The handler only bumps an atomic counter — the async-signal-safe
//! minimum — and the serve binary polls [`term_count`] to drive the
//! drain state machine (first signal: graceful drain; second: cancel
//! in-flight cells).

use std::sync::atomic::{AtomicU32, Ordering};

static TERMS: AtomicU32 = AtomicU32::new(0);

/// Signal numbers per POSIX (and the MSVC CRT, which happens to agree).
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_term(_sig: i32) {
    TERMS.fetch_add(1, Ordering::SeqCst);
}

/// Termination signals received since [`install`].
#[must_use]
pub fn term_count() -> u32 {
    TERMS.load(Ordering::SeqCst)
}

/// Registers the counter for SIGTERM and SIGINT. No-op off Unix.
pub fn install() {
    #[cfg(unix)]
    {
        // `signal(2)` is in every libc the platform links anyway; binding
        // it directly keeps the crate dependency-free. The handler does
        // nothing but an atomic add, so the historical `signal` semantics
        // (no SA_RESTART guarantees, handler persistence per platform)
        // are irrelevant here.
        #[allow(unsafe_code)]
        mod sys {
            extern "C" {
                pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
            }
        }
        #[allow(unsafe_code)]
        // SAFETY: `on_term` is async-signal-safe (a single atomic add) and
        // has the exact `extern "C" fn(i32)` ABI `signal` expects.
        unsafe {
            sys::signal(SIGTERM, on_term);
            sys::signal(SIGINT, on_term);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_counts() {
        let before = term_count();
        on_term(SIGTERM);
        on_term(SIGINT);
        assert_eq!(term_count(), before + 2);
    }
}
