//! Bounded transaction trace with Chrome `trace_event` export.
//!
//! A [`TraceBuffer`] is a fixed-capacity ring of [`TraceEvent`]s. With
//! capacity 0 (the default) [`push`] is a branch-and-return — tracing
//! disabled costs one predictable branch per transaction. When enabled, the
//! newest events win: the ring overwrites the oldest once full, and
//! `dropped` counts how many were evicted so exports are honest about
//! truncation.
//!
//! [`export_chrome`] renders the buffer in the Chrome Tracing /
//! [Perfetto](https://ui.perfetto.dev) `trace_event` JSON array format:
//! one complete (`"ph": "X"`) duration event per transaction, with the
//! request class as the track (`tid`) so classes stack into separate rows.
//!
//! [`push`]: TraceBuffer::push

use crate::json::Json;
use crate::panel::RequestClass;

/// One completed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start cycle of the transaction.
    pub start: u64,
    /// Completion cycle (≥ `start`).
    pub end: u64,
    /// What kind of transaction this was.
    pub class: RequestClass,
    /// Line address involved.
    pub addr: u64,
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s (capacity 0 = disabled).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write position once the ring is full.
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events; 0 disables tracing.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::new(),
            cap: capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Whether tracing is enabled (capacity > 0).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Records one event; oldest events are overwritten once full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted by the ring since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Serializes the buffer state: `capacity`, `dropped`, and the retained
    /// events oldest-first as `[start, end, class, addr]` rows.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("capacity".into(), Json::u64(self.cap as u64)),
            ("dropped".into(), Json::u64(self.dropped)),
            (
                "events".into(),
                Json::Arr(
                    self.events()
                        .map(|ev| {
                            Json::Arr(vec![
                                Json::u64(ev.start),
                                Json::u64(ev.end),
                                Json::str(ev.class.name()),
                                Json::u64(ev.addr),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a buffer from [`to_json`] output. The ring is normalized
    /// (oldest event first, write position at the start), which leaves the
    /// observable state — [`events`], [`len`], [`dropped`] — identical.
    /// Returns `None` for malformed documents or more events than
    /// `capacity`.
    ///
    /// [`to_json`]: TraceBuffer::to_json
    /// [`events`]: TraceBuffer::events
    /// [`len`]: TraceBuffer::len
    /// [`dropped`]: TraceBuffer::dropped
    #[must_use]
    pub fn from_json(j: &Json) -> Option<TraceBuffer> {
        let cap = usize::try_from(j.get("capacity")?.as_u64()?).ok()?;
        let dropped = j.get("dropped")?.as_u64()?;
        let mut buf = Vec::new();
        for row in j.get("events")?.as_arr()? {
            let start = row.idx(0)?.as_u64()?;
            let end = row.idx(1)?.as_u64()?;
            if end < start {
                return None;
            }
            buf.push(TraceEvent {
                start,
                end,
                class: RequestClass::from_name(row.idx(2)?.as_str()?)?,
                addr: row.idx(3)?.as_u64()?,
            });
        }
        if buf.len() > cap {
            return None;
        }
        Some(TraceBuffer {
            buf,
            cap,
            head: 0,
            dropped,
        })
    }
}

/// Renders `buf` as a Chrome `trace_event` JSON array.
///
/// `freq_ghz` converts cycles to the format's microsecond timebase; `pid`
/// labels the process row (`name` becomes its `process_name`), letting
/// multiple runs coexist in one Perfetto view.
#[must_use]
pub fn export_chrome(buf: &TraceBuffer, name: &str, pid: u32, freq_ghz: f64) -> Json {
    let to_us = |cycles: u64| cycles as f64 / (freq_ghz * 1000.0);
    let mut events = vec![Json::Obj(vec![
        ("ph".into(), Json::str("M")),
        ("name".into(), Json::str("process_name")),
        ("pid".into(), Json::u64(u64::from(pid))),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::str(name))]),
        ),
    ])];
    for ev in buf.events() {
        events.push(Json::Obj(vec![
            ("ph".into(), Json::str("X")),
            ("name".into(), Json::str(ev.class.name())),
            ("cat".into(), Json::str("dram-cache")),
            ("pid".into(), Json::u64(u64::from(pid))),
            ("tid".into(), Json::u64(ev.class as u64)),
            ("ts".into(), Json::num(to_us(ev.start))),
            ("dur".into(), Json::num(to_us(ev.end - ev.start))),
            (
                "args".into(),
                Json::Obj(vec![("addr".into(), Json::str(format!("{:#x}", ev.addr)))]),
            ),
        ]));
    }
    Json::Arr(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            start,
            end,
            class: RequestClass::ReadHit,
            addr: 0x1000,
        }
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let mut buf = TraceBuffer::new(0);
        assert!(!buf.enabled());
        buf.push(ev(0, 10));
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5 {
            buf.push(ev(i * 10, i * 10 + 5));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let starts: Vec<u64> = buf.events().map(|e| e.start).collect();
        assert_eq!(starts, vec![20, 30, 40]);
    }

    #[test]
    fn json_round_trip_preserves_observable_state() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5 {
            buf.push(ev(i * 10, i * 10 + 5)); // ring wraps: head != 0
        }
        let back = TraceBuffer::from_json(&buf.to_json()).unwrap();
        assert_eq!(back.len(), buf.len());
        assert_eq!(back.dropped(), buf.dropped());
        let a: Vec<TraceEvent> = buf.events().copied().collect();
        let b: Vec<TraceEvent> = back.events().copied().collect();
        assert_eq!(a, b);
        assert_eq!(back.to_json().render(), buf.to_json().render());
        // Corruption is rejected, not panicked on.
        assert_eq!(TraceBuffer::from_json(&Json::Null), None);
        assert_eq!(
            TraceBuffer::from_json(&Json::parse(r#"{"capacity":1,"dropped":0}"#).unwrap()),
            None
        );
    }

    #[test]
    fn chrome_export_is_valid_json_with_metadata() {
        let mut buf = TraceBuffer::new(8);
        buf.push(ev(3200, 6400));
        let text = export_chrome(&buf, "gcc", 1, 3.2).render();
        let parsed = Json::parse(&text).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("ph").unwrap().as_str(), Some("M"));
        let x = &arr[1];
        assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
        // 3200 cycles at 3.2 GHz is exactly 1 µs.
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(1.0));
    }
}
