//! `dice-obs`: the unified observability layer for the DICE reproduction.
//!
//! Everything the simulator reports flows through this crate:
//!
//! - [`MetricRegistry`] — named counters, gauges and histograms with
//!   interned handles so hot paths never hash a string;
//! - [`Histogram`] — O(1) log₂-bucketed latency histograms with
//!   `min ≤ p50 ≤ p95 ≤ p99 ≤ max` quantile guarantees;
//! - [`LatencyPanel`] / [`RequestClass`] — one histogram per request class
//!   (L4 read hit, miss, second probe, writeback, memory fill);
//! - [`Snapshot`] / [`delta`] / [`impl_snapshot!`] — declarative
//!   snapshot-and-subtract for cumulative stats structs, replacing
//!   hand-written `delta_since` implementations;
//! - [`TraceBuffer`] / [`export_chrome`] — a bounded transaction trace
//!   (off by default, one branch per transaction when disabled) exported
//!   in Chrome `trace_event` format for Perfetto;
//! - [`TraceCtx`] / [`SpanId`] / [`TraceLevel`] — hierarchical spans with
//!   explicit cross-thread context propagation, exported in the same
//!   Chrome `trace_event` shape (and mergeable with transaction traces
//!   via [`merge_chrome`]);
//! - [`Json`] — a zero-dependency JSON value, writer and parser used for
//!   every machine-readable artifact above;
//! - [`render_prometheus`] — Prometheus text exposition of a whole
//!   registry (served by `dice-serve`'s `/metrics`);
//! - [`DiceError`] / [`ErrorClass`] — the workspace-wide typed error
//!   hierarchy, with one obs counter per class via [`record_error`].
//!
//! # Conventions
//!
//! Rate helpers across the workspace divide through [`ratio`], which
//! returns **0.0 when the denominator is zero** — "no traffic" uniformly
//! reads as a zero rate, never `NaN` and never an optimistic 1.0.
//! Non-finite floats serialize as JSON `null` (see [`Json::num`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod hist;
mod json;
mod panel;
mod prom;
mod registry;
mod snapshot;
mod span;
mod trace;

pub use error::{record_error, register_error_counters, DiceError, DiceResult, ErrorClass};
pub use hist::Histogram;
pub use json::{Json, JsonError};
pub use panel::{LatencyPanel, RequestClass};
pub use prom::{labeled, prom_escape_label, prom_name, render_prometheus};
pub use registry::{CounterId, GaugeId, HistId, MetricRegistry};
pub use snapshot::{
    delta, register_counters, snapshot_from_json, snapshot_json, FieldKind, Snapshot,
};
pub use span::{
    merge_chrome, validate_chrome_trace, SpanGuard, SpanId, SpanRecord, TraceCtx, TraceLevel,
};
pub use trace::{export_chrome, TraceBuffer, TraceEvent};

/// Observability knobs, embedded in the simulator config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Emit one interval time-series sample every this many cycles during
    /// the measured window (0 disables interval sampling).
    pub interval_cycles: u64,
    /// Transaction-trace ring capacity in events (0 disables tracing).
    pub trace_capacity: usize,
    /// Decision-diagnostics and span-tracing level (off by default; see
    /// [`TraceLevel`]).
    pub trace_level: TraceLevel,
}

impl Default for ObsConfig {
    fn default() -> Self {
        // ~100k cycles is a few dozen samples on smoke-size runs without
        // bloating reports on long ones; tracing stays opt-in.
        Self {
            interval_cycles: 100_000,
            trace_capacity: 0,
            trace_level: TraceLevel::Off,
        }
    }
}

/// `num / den`, with the workspace-wide idle convention: 0.0 when `den`
/// is zero.
#[inline]
#[must_use]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_zero_when_idle() {
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(1, 4), 0.25);
    }

    #[test]
    fn default_config_disables_tracing() {
        let cfg = ObsConfig::default();
        assert_eq!(cfg.trace_capacity, 0);
        assert_eq!(cfg.trace_level, TraceLevel::Off);
        assert!(cfg.interval_cycles > 0);
    }
}
