//! The workspace-wide typed error hierarchy.
//!
//! Every fallible path in the DICE reproduction — trace parsing, config
//! validation, on-disk cache decoding, runtime invariant audits, runner
//! cells — reports a [`DiceError`] instead of panicking. Errors carry
//! enough structured context (path, line, set index, cell tag) to be
//! actionable without a backtrace, and each maps to an [`ErrorClass`]
//! with a stable per-class counter name so sweeps can aggregate failure
//! modes in the [`MetricRegistry`](crate::MetricRegistry).
//!
//! Hand-rolled like the rest of `dice-obs`: no `thiserror`, no
//! dependencies.

use std::fmt;

use crate::registry::MetricRegistry;

/// Result alias used across the workspace.
pub type DiceResult<T> = Result<T, DiceError>;

/// Coarse error classification, one obs counter per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorClass {
    /// Malformed or truncated trace/spec input.
    TraceParse,
    /// Invalid configuration (empty workload set, bad flag value, …).
    Config,
    /// Unreadable or corrupt on-disk result-cache entry.
    CacheEntry,
    /// A runtime invariant audit found corrupted simulator state.
    Invariant,
    /// An underlying I/O operation failed.
    Io,
    /// A runner cell panicked mid-simulation.
    CellPanic,
    /// A runner cell exceeded its wall-clock budget.
    CellTimeout,
}

impl ErrorClass {
    /// Every class, in counter-registration order.
    pub const ALL: [ErrorClass; 7] = [
        ErrorClass::TraceParse,
        ErrorClass::Config,
        ErrorClass::CacheEntry,
        ErrorClass::Invariant,
        ErrorClass::Io,
        ErrorClass::CellPanic,
        ErrorClass::CellTimeout,
    ];

    /// Stable short name (`trace_parse`, `invariant`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::TraceParse => "trace_parse",
            ErrorClass::Config => "config",
            ErrorClass::CacheEntry => "cache_entry",
            ErrorClass::Invariant => "invariant",
            ErrorClass::Io => "io",
            ErrorClass::CellPanic => "cell_panic",
            ErrorClass::CellTimeout => "cell_timeout",
        }
    }

    /// The obs-registry counter name for this class
    /// (`errors.trace_parse`, …).
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            ErrorClass::TraceParse => "errors.trace_parse",
            ErrorClass::Config => "errors.config",
            ErrorClass::CacheEntry => "errors.cache_entry",
            ErrorClass::Invariant => "errors.invariant",
            ErrorClass::Io => "errors.io",
            ErrorClass::CellPanic => "errors.cell_panic",
            ErrorClass::CellTimeout => "errors.cell_timeout",
        }
    }
}

/// A structured, classified error. All context is owned `String`s so the
/// error is `Clone + Send + 'static` and survives thread boundaries and
/// `catch_unwind` payload extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiceError {
    /// A trace or spec file failed to parse.
    TraceParse {
        /// Source path (or `"<memory>"` for in-memory input).
        path: String,
        /// 1-based line number of the offending record.
        line: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// A configuration value is invalid.
    Config {
        /// The field or flag at fault.
        field: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An on-disk result-cache entry could not be used.
    CacheEntry {
        /// Path of the rejected entry.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A runtime invariant audit detected corrupted state.
    Invariant {
        /// Where the audit ran (`"l4 set 12"`, `"l3"`, …).
        context: String,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An I/O operation failed.
    Io {
        /// What was being done (`"read trace /path"`, …).
        context: String,
        /// Stringified `std::io::Error`.
        reason: String,
    },
    /// A runner cell panicked.
    CellPanic {
        /// `"tag/workload"` identifier of the cell.
        cell: String,
        /// Extracted panic message.
        message: String,
    },
    /// A runner cell exceeded its wall-clock budget.
    CellTimeout {
        /// `"tag/workload"` identifier of the cell.
        cell: String,
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
}

impl DiceError {
    /// Build an [`DiceError::Io`] from a `std::io::Error` with context.
    #[must_use]
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        DiceError::Io {
            context: context.into(),
            reason: err.to_string(),
        }
    }

    /// The class this error belongs to (selects its obs counter).
    #[must_use]
    pub fn class(&self) -> ErrorClass {
        match self {
            DiceError::TraceParse { .. } => ErrorClass::TraceParse,
            DiceError::Config { .. } => ErrorClass::Config,
            DiceError::CacheEntry { .. } => ErrorClass::CacheEntry,
            DiceError::Invariant { .. } => ErrorClass::Invariant,
            DiceError::Io { .. } => ErrorClass::Io,
            DiceError::CellPanic { .. } => ErrorClass::CellPanic,
            DiceError::CellTimeout { .. } => ErrorClass::CellTimeout,
        }
    }
}

impl fmt::Display for DiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiceError::TraceParse { path, line, reason } => {
                write!(f, "trace parse error at {path}:{line}: {reason}")
            }
            DiceError::Config { field, reason } => {
                write!(f, "invalid config `{field}`: {reason}")
            }
            DiceError::CacheEntry { path, reason } => {
                write!(f, "unusable cache entry {path}: {reason}")
            }
            DiceError::Invariant { context, detail } => {
                write!(f, "invariant violated in {context}: {detail}")
            }
            DiceError::Io { context, reason } => {
                write!(f, "io error while {context}: {reason}")
            }
            DiceError::CellPanic { cell, message } => {
                write!(f, "cell {cell} panicked: {message}")
            }
            DiceError::CellTimeout { cell, budget_ms } => {
                write!(f, "cell {cell} exceeded its {budget_ms} ms budget")
            }
        }
    }
}

impl std::error::Error for DiceError {}

/// Pre-register one counter per [`ErrorClass`] so sweeps report zeroes
/// for classes that never fired (absent counters read as "not measured").
pub fn register_error_counters(reg: &mut MetricRegistry) {
    for class in ErrorClass::ALL {
        reg.counter(class.metric_name());
    }
}

/// Bump the per-class counter for `err`.
pub fn record_error(reg: &mut MetricRegistry, err: &DiceError) {
    let id = reg.counter(err.class().metric_name());
    reg.inc(id);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_distinct_names() {
        let mut names: Vec<_> = ErrorClass::ALL.iter().map(|c| c.metric_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ErrorClass::ALL.len());
        for c in ErrorClass::ALL {
            assert_eq!(c.metric_name(), format!("errors.{}", c.name()));
        }
    }

    #[test]
    fn display_includes_context() {
        let e = DiceError::TraceParse {
            path: "/tmp/t.trace".into(),
            line: 12,
            reason: "expected 3 fields, got 2".into(),
        };
        assert_eq!(
            e.to_string(),
            "trace parse error at /tmp/t.trace:12: expected 3 fields, got 2"
        );
        assert_eq!(e.class(), ErrorClass::TraceParse);

        let e = DiceError::CellTimeout {
            cell: "dice36/gcc".into(),
            budget_ms: 1500,
        };
        assert!(e.to_string().contains("1500 ms"));
        assert_eq!(e.class(), ErrorClass::CellTimeout);
    }

    #[test]
    fn io_helper_keeps_context_and_reason() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = DiceError::io("read trace /x", &io);
        assert_eq!(e.class(), ErrorClass::Io);
        assert!(e.to_string().contains("read trace /x"));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_feed_per_class_counters() {
        let mut reg = MetricRegistry::new();
        register_error_counters(&mut reg);
        let e = DiceError::Config {
            field: "jobs".into(),
            reason: "must be nonzero".into(),
        };
        record_error(&mut reg, &e);
        record_error(&mut reg, &e);
        assert_eq!(reg.counter_value("errors.config"), Some(2));
        assert_eq!(reg.counter_value("errors.io"), Some(0));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = DiceError::Invariant {
            context: "l4 set 3".into(),
            detail: "duplicate tag".into(),
        };
        assert_eq!(e.clone(), e);
    }
}
