//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricRegistry`].
//!
//! The encoder maps the registry's three metric kinds onto the matching
//! Prometheus families:
//!
//! * counters → `# TYPE name counter` + one sample;
//! * gauges → `# TYPE name gauge` + one sample (non-finite readings are
//!   emitted as `NaN` / `+Inf` / `-Inf`, which the exposition format
//!   allows);
//! * histograms → `# TYPE name histogram` with one cumulative
//!   `name_bucket{le="…"}` sample per **occupied** log₂ bucket (the `le`
//!   value is the bucket's upper edge), the mandatory
//!   `name_bucket{le="+Inf"}` sample, and `name_sum` / `name_count`.
//!
//! Registry names use `.` as a separator (`serve.requests`); Prometheus
//! metric names cannot contain dots, so [`prom_name`] rewrites every
//! character outside `[a-zA-Z0-9_:]` to `_` (and prefixes `_` when the
//! name would start with a digit). Two registry names that sanitize to
//! the same Prometheus name would produce a duplicate family; the
//! workspace's dotted-lowercase naming convention never does.
//!
//! Counters and gauges may carry labels: a registry name built with
//! [`labeled`] (`fabric.cells{node="w0"}`) renders as one sample of the
//! base family, and all samples sharing a base emit under a single
//! `# TYPE` declaration. Only the base is sanitized — the label block is
//! emitted verbatim, with values escaped at construction time.

use std::fmt::Write;

use crate::hist::Histogram;
use crate::registry::MetricRegistry;

/// Sanitizes a registry metric name into a valid Prometheus metric name.
#[must_use]
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Builds a labeled registry metric name: `base{k="v",…}` with every
/// value escaped via [`prom_escape_label`]. Metrics registered under such
/// names render as individual samples of the shared `base` family (one
/// `# TYPE` line for all of them). Label *names* must already be legal
/// Prometheus label identifiers (`[a-zA-Z_][a-zA-Z0-9_]*`).
#[must_use]
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(base.len() + labels.len() * 16);
    out.push_str(base);
    out.push('{');
    for (i, (name, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&prom_escape_label(value));
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a registry name into its sanitized family and the verbatim
/// label block (`{…}`), if any.
fn family_split(name: &str) -> (String, Option<String>) {
    match name.split_once('{') {
        Some((base, rest)) => (prom_name(base), Some(format!("{{{rest}"))),
        None => (prom_name(name), None),
    }
}

/// Escapes a label *value* per the 0.0.4 text format: backslash, double
/// quote and newline become `\\`, `\"` and `\n`. Every label value the
/// encoder emits must pass through here — an unescaped `"` or newline in
/// a value corrupts the whole exposition.
#[must_use]
pub fn prom_escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders one `f64` sample value the way Prometheus expects it.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Appends one histogram family: cumulative buckets, `+Inf`, sum, count.
fn write_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (edge, count) in h.buckets() {
        cumulative += count;
        // Edges are decimal integers today, but route them through the
        // label-value escaper anyway so the invariant ("every emitted
        // label value is escaped") survives future edge formats.
        let le = prom_escape_label(&edge.to_string());
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    // The exact sample sum is a u128; Prometheus values are decimal text,
    // so the integer renders losslessly.
    let _ = writeln!(out, "{name}_sum {}", h.sum_exact());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Renders the whole registry in Prometheus text exposition format.
///
/// Families appear in registration order: all counters, then all gauges,
/// then all histograms. The output always ends with a newline (required
/// by the format) and is safe to serve as
/// `text/plain; version=0.0.4; charset=utf-8`.
#[must_use]
pub fn render_prometheus(reg: &MetricRegistry) -> String {
    let mut out = String::new();
    write_families(
        &mut out,
        "counter",
        reg.counters().map(|(n, v)| (n, v.to_string())),
    );
    write_families(
        &mut out,
        "gauge",
        reg.gauges().map(|(n, v)| (n, prom_f64(v))),
    );
    for (name, h) in reg.histograms() {
        write_histogram(&mut out, &prom_name(name), h);
    }
    out
}

/// Groups `(name, rendered value)` samples by family (first-seen order,
/// registration order within a family) and emits one `# TYPE` per family.
/// Unlabeled names are singleton families, so output for label-free
/// registries is unchanged.
fn write_families<'a>(
    out: &mut String,
    kind: &str,
    samples: impl Iterator<Item = (&'a str, String)>,
) {
    let mut families: Vec<(String, Vec<String>)> = Vec::new();
    for (name, value) in samples {
        let (family, labels) = family_split(name);
        let line = match labels {
            Some(block) => format!("{family}{block} {value}"),
            None => format!("{family} {value}"),
        };
        match families.iter_mut().find(|(f, _)| *f == family) {
            Some((_, lines)) => lines.push(line),
            None => families.push((family, vec![line])),
        }
    }
    for (family, lines) in families {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_label_values() {
        assert_eq!(prom_escape_label("plain"), "plain");
        assert_eq!(prom_escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(prom_escape_label("line1\nline2"), "line1\\nline2");
        assert_eq!(prom_escape_label("back\\slash"), "back\\\\slash");
        // All three at once, in one value.
        assert_eq!(prom_escape_label("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(prom_name("serve.requests"), "serve_requests");
        assert_eq!(prom_name("l4.read-latency µs"), "l4_read_latency__s");
        assert_eq!(prom_name("2xcap"), "_2xcap");
        assert_eq!(prom_name("already_fine:ok"), "already_fine:ok");
    }

    #[test]
    fn renders_expected_exposition() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("serve.requests");
        reg.add(c, 3);
        let g = reg.gauge("queue.depth");
        reg.set_gauge(g, 2.5);
        let h = reg.histogram("req.micros");
        for v in [0, 5, 5, 1000] {
            reg.observe(h, v);
        }
        // Hand-written expected output: 0 lands in the le="0" bucket, the
        // fives in le="7" (bit length 3), 1000 in le="1023"; buckets are
        // cumulative; sum and count are exact.
        let expected = "\
# TYPE serve_requests counter
serve_requests 3
# TYPE queue_depth gauge
queue_depth 2.5
# TYPE req_micros histogram
req_micros_bucket{le=\"0\"} 1
req_micros_bucket{le=\"7\"} 3
req_micros_bucket{le=\"1023\"} 4
req_micros_bucket{le=\"+Inf\"} 4
req_micros_sum 1010
req_micros_count 4
";
        assert_eq!(render_prometheus(&reg), expected);
    }

    #[test]
    fn empty_histogram_still_emits_inf_sum_count() {
        let mut reg = MetricRegistry::new();
        reg.histogram("empty.lat");
        let expected = "\
# TYPE empty_lat histogram
empty_lat_bucket{le=\"+Inf\"} 0
empty_lat_sum 0
empty_lat_count 0
";
        assert_eq!(render_prometheus(&reg), expected);
    }

    #[test]
    fn non_finite_gauges_render_as_prometheus_keywords() {
        let mut reg = MetricRegistry::new();
        let g = reg.gauge("weird");
        reg.set_gauge(g, f64::NAN);
        assert!(render_prometheus(&reg).contains("weird NaN\n"));
        reg.set_gauge(g, f64::INFINITY);
        assert!(render_prometheus(&reg).contains("weird +Inf\n"));
        reg.set_gauge(g, f64::NEG_INFINITY);
        assert!(render_prometheus(&reg).contains("weird -Inf\n"));
    }

    #[test]
    fn empty_registry_renders_empty_string() {
        assert_eq!(render_prometheus(&MetricRegistry::new()), "");
    }

    #[test]
    fn labeled_builds_escaped_names() {
        assert_eq!(
            labeled("fabric.cells", &[("node", "w0")]),
            "fabric.cells{node=\"w0\"}"
        );
        assert_eq!(
            labeled("x", &[("a", "1"), ("b", "say \"hi\"")]),
            "x{a=\"1\",b=\"say \\\"hi\\\"\"}"
        );
    }

    #[test]
    fn labeled_samples_group_under_one_family() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter(&labeled("fabric.cells", &[("node", "w0")]));
        reg.add(a, 2);
        let other = reg.counter("fabric.sweeps");
        reg.inc(other);
        let b = reg.counter(&labeled("fabric.cells", &[("node", "w1")]));
        reg.add(b, 5);
        let g = reg.gauge(&labeled("fabric.live", &[("node", "w0")]));
        reg.set_gauge(g, 1.0);
        let expected = "\
# TYPE fabric_cells counter
fabric_cells{node=\"w0\"} 2
fabric_cells{node=\"w1\"} 5
# TYPE fabric_sweeps counter
fabric_sweeps 1
# TYPE fabric_live gauge
fabric_live{node=\"w0\"} 1
";
        assert_eq!(render_prometheus(&reg), expected);
    }
}
