//! A zero-dependency JSON writer (and parser, for round-trips and tooling).
//!
//! Policy decisions, chosen for machine-checkable experiment artifacts:
//!
//! * **Non-finite floats serialize as `null`** (JSON has no NaN/Inf); the
//!   conversion happens in [`Json::num`], so a `Json::Num` always holds a
//!   finite value.
//! * Integers that fit `i64` stay exact ([`Json::Int`]); [`Json::u64`]
//!   falls back to `f64` only above `i64::MAX`.
//! * Strings are escaped per RFC 8259 (`"`, `\`, and control characters;
//!   non-ASCII passes through as UTF-8).
//! * Rendering uses Rust's shortest-round-trip float formatting, so
//!   `parse(render(x)) == x` for every writer-produced document.

use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact integer.
    Int(i64),
    /// A finite float (non-finite inputs become [`Json::Null`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A `u64` value, exact while it fits `i64`.
    #[must_use]
    pub fn u64(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Num(v as f64),
        }
    }

    /// A float value; NaN and ±Inf become `null` (see module policy).
    #[must_use]
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    #[must_use]
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// Numeric view of `Int`/`Num`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned-integer view of `Int`/`Num`: exact non-negative integers
    /// only (the writer degrades `u64`s above `i64::MAX` to floats, which
    /// this view converts back while the value is exactly representable).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, i));
            }
            Json::Num(n) => {
                // Finite by construction; `{}` is shortest-round-trip. Emit
                // a trailing `.0` for integral floats so the value parses
                // back as a float, keeping render→parse→render stable.
                let mut buf = itoa_buffer();
                let s = write_display(&mut buf, n);
                out.push_str(s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict: one value, trailing whitespace only).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed construct.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A small reusable formatting buffer (avoids a `format!` allocation for
/// every number in large documents).
fn itoa_buffer() -> String {
    String::with_capacity(24)
}

fn write_display<'a>(buf: &'a mut String, v: &impl fmt::Display) -> &'a str {
    use fmt::Write;
    buf.clear();
    let _ = write!(buf, "{v}");
    buf.as_str()
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    // `Some(_)` above guarantees at least one byte, hence one char.
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let x = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + x;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::num(1.5).render(), "1.5");
        assert_eq!(Json::num(2.0).render(), "2.0");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn nan_and_inf_become_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NEG_INFINITY), Json::Null);
    }

    #[test]
    fn big_u64_degrades_to_float() {
        assert_eq!(Json::u64(7), Json::Int(7));
        assert!(matches!(Json::u64(u64::MAX), Json::Num(_)));
    }

    #[test]
    fn parses_what_it_renders() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("μ-bench \"x\"\t")),
            (
                "vals".into(),
                Json::Arr(vec![Json::Int(1), Json::num(2.5), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("ok".into(), Json::Bool(false))]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u0041\\n\" , true ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().idx(1).unwrap().as_str(), Some("A\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}
