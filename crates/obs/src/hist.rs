//! Log₂-bucketed latency histograms.

use crate::json::Json;

/// Number of buckets: bucket `b` holds values whose bit length is `b`
/// (bucket 0 holds only the value 0, bucket 64 holds values ≥ 2^63).
const BUCKETS: usize = 65;

/// A fixed-size log₂-bucketed histogram of `u64` samples.
///
/// Recording is O(1) (one `leading_zeros` and two adds); quantiles are
/// approximate — a quantile resolves to its bucket's upper edge, clamped to
/// the recorded `[min, max]` range — which is plenty for latency
/// distributions spanning orders of magnitude. The exact `min`, `max`,
/// `count` and `sum` are tracked alongside the buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `v`: its bit length.
    #[inline]
    fn bucket(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Upper edge of bucket `b` (largest value the bucket can hold).
    fn bucket_upper(b: usize) -> u64 {
        if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of recorded samples (a `u128`: 2⁶⁴ max-valued samples
    /// cannot overflow it).
    #[must_use]
    pub fn sum_exact(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`): the upper edge of the
    /// bucket containing the sample of rank `ceil(q·count)`, clamped to the
    /// recorded `[min, max]`. Guarantees `min() ≤ quantile(a) ≤ quantile(b)
    /// ≤ max()` for `a ≤ b`. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Per-bucket counts (`(upper_edge, count)`) for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_upper(b), c))
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summary + bucket JSON (`count`, `mean`, `min`, `p50`, `p95`, `p99`,
    /// `max`, `sum`, `buckets` as `[upper_edge, count]` pairs).
    ///
    /// `sum` is the exact sample sum as a decimal string (it is a `u128`,
    /// which JSON numbers cannot hold exactly); together with the buckets
    /// and `min`/`max` it makes the export lossless — [`from_json`]
    /// reconstructs a histogram whose every accessor (and therefore its
    /// re-rendered JSON) matches the original bit for bit.
    ///
    /// [`from_json`]: Histogram::from_json
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::u64(self.count())),
            ("mean".into(), Json::num(self.mean())),
            ("min".into(), Json::u64(self.min())),
            ("p50".into(), Json::u64(self.quantile(0.50))),
            ("p95".into(), Json::u64(self.quantile(0.95))),
            ("p99".into(), Json::u64(self.quantile(0.99))),
            ("max".into(), Json::u64(self.max())),
            ("sum".into(), Json::str(self.sum.to_string())),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets()
                        .map(|(edge, n)| Json::Arr(vec![Json::u64(edge), Json::u64(n)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a histogram from [`to_json`] output. Returns `None` for
    /// malformed or internally inconsistent documents (wrong types, bucket
    /// counts that do not add up to `count`, `min > max`).
    ///
    /// [`to_json`]: Histogram::to_json
    #[must_use]
    pub fn from_json(j: &Json) -> Option<Histogram> {
        let count = j.get("count")?.as_u64()?;
        let mut h = Histogram::new();
        if count == 0 {
            return Some(h);
        }
        for pair in j.get("buckets")?.as_arr()? {
            let edge = pair.idx(0)?.as_u64()?;
            let n = pair.idx(1)?.as_u64()?;
            // The upper edge of bucket `b` has bit length `b` (edge 0 is
            // bucket 0), so the edge maps straight back to its index.
            let b = Self::bucket(edge).min(BUCKETS - 1);
            h.counts[b] = h.counts[b].checked_add(n)?;
            h.count = h.count.checked_add(n)?;
        }
        if h.count != count {
            return None;
        }
        h.sum = j.get("sum")?.as_str()?.parse::<u128>().ok()?;
        h.min = j.get("min")?.as_u64()?;
        h.max = j.get("max")?.as_u64()?;
        if h.min > h.max {
            return None;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_quantiles_collapse() {
        let mut h = Histogram::new();
        h.record(37);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 37, "q={q}");
        }
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
    }

    #[test]
    fn quantiles_bracket_bimodal_distribution() {
        let mut h = Histogram::new();
        // 90 fast samples around 100, 10 slow around 100_000.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        assert!(h.quantile(0.5) < 256, "p50 {}", h.quantile(0.5));
        assert!(h.quantile(0.95) >= 65_536, "p95 {}", h.quantile(0.95));
        assert_eq!(h.max(), 100_000);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut h = Histogram::new();
        for v in [0, 1, 37, 37, 1_000, 65_535, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json().render(), h.to_json().render());
        // Empty histograms round-trip too.
        let empty = Histogram::new();
        assert_eq!(Histogram::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn from_json_rejects_inconsistent_documents() {
        let mut h = Histogram::new();
        h.record(5);
        let mut j = h.to_json();
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "count" {
                    *v = Json::Int(99); // no longer matches the buckets
                }
            }
        }
        assert_eq!(Histogram::from_json(&j), None);
        assert_eq!(Histogram::from_json(&Json::Null), None);
        assert_eq!(Histogram::from_json(&Json::Obj(vec![])), None);
    }

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.count(), 1);
    }
}
