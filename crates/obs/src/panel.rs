//! Per-request-class latency panel.

use crate::hist::Histogram;
use crate::json::Json;

/// The request classes the simulator distinguishes when recording
/// end-to-end latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum RequestClass {
    /// Demand read served from the L4 DRAM cache on the first probe.
    ReadHit = 0,
    /// Demand read that missed L4 and was filled from main memory.
    ReadMiss = 1,
    /// Demand read that hit only after a second L4 probe (DICE index
    /// mismatch or uncompressed neighbor).
    SecondProbe = 2,
    /// Dirty-line writeback from L4 to main memory.
    Writeback = 3,
    /// Miss-fill installation into L4 after the memory response.
    MemFill = 4,
}

impl RequestClass {
    /// Every class, in `usize` order.
    pub const ALL: [RequestClass; 5] = [
        RequestClass::ReadHit,
        RequestClass::ReadMiss,
        RequestClass::SecondProbe,
        RequestClass::Writeback,
        RequestClass::MemFill,
    ];

    /// Stable snake_case name used in JSON reports and trace tracks.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::ReadHit => "read_hit",
            RequestClass::ReadMiss => "read_miss",
            RequestClass::SecondProbe => "second_probe",
            RequestClass::Writeback => "writeback",
            RequestClass::MemFill => "mem_fill",
        }
    }

    /// Inverse of [`name`](RequestClass::name), for JSON round-trips.
    #[must_use]
    pub fn from_name(name: &str) -> Option<RequestClass> {
        RequestClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// One latency [`Histogram`] per [`RequestClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyPanel {
    hists: [Histogram; 5],
}

impl LatencyPanel {
    /// An empty panel.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (in cycles) for `class`.
    #[inline]
    pub fn record(&mut self, class: RequestClass, latency: u64) {
        self.hists[class as usize].record(latency);
    }

    /// The histogram for `class`.
    #[must_use]
    pub fn class(&self, class: RequestClass) -> &Histogram {
        &self.hists[class as usize]
    }

    /// Total samples across all classes.
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(Histogram::count).sum()
    }

    /// Merges `other` into `self`, class by class.
    pub fn merge(&mut self, other: &LatencyPanel) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// JSON object keyed by class name, skipping empty classes.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(
            RequestClass::ALL
                .iter()
                .filter(|c| self.class(**c).count() > 0)
                .map(|c| (c.name().to_owned(), self.class(*c).to_json()))
                .collect(),
        )
    }

    /// Rebuilds a panel from [`to_json`] output (absent classes stay
    /// empty). Returns `None` for unknown class names or malformed
    /// histograms.
    ///
    /// [`to_json`]: LatencyPanel::to_json
    #[must_use]
    pub fn from_json(j: &Json) -> Option<LatencyPanel> {
        let Json::Obj(pairs) = j else { return None };
        let mut panel = LatencyPanel::new();
        for (name, hist) in pairs {
            let class = RequestClass::from_name(name)?;
            panel.hists[class as usize] = Histogram::from_json(hist)?;
        }
        Some(panel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_record_independently() {
        let mut panel = LatencyPanel::new();
        panel.record(RequestClass::ReadHit, 40);
        panel.record(RequestClass::ReadHit, 44);
        panel.record(RequestClass::ReadMiss, 300);
        assert_eq!(panel.class(RequestClass::ReadHit).count(), 2);
        assert_eq!(panel.class(RequestClass::ReadMiss).count(), 1);
        assert_eq!(panel.class(RequestClass::Writeback).count(), 0);
        assert_eq!(panel.total_count(), 3);
    }

    #[test]
    fn json_skips_empty_classes() {
        let mut panel = LatencyPanel::new();
        panel.record(RequestClass::MemFill, 250);
        let j = panel.to_json();
        assert!(j.get("mem_fill").is_some());
        assert!(j.get("read_hit").is_none());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut panel = LatencyPanel::new();
        panel.record(RequestClass::ReadHit, 40);
        panel.record(RequestClass::Writeback, 900);
        let back = LatencyPanel::from_json(&panel.to_json()).unwrap();
        assert_eq!(back, panel);
        assert_eq!(back.to_json().render(), panel.to_json().render());
        assert_eq!(
            LatencyPanel::from_json(&LatencyPanel::new().to_json()).unwrap(),
            LatencyPanel::new()
        );
        // Unknown class names are rejected, not ignored.
        let bogus = Json::Obj(vec![("warp_drive".into(), Histogram::new().to_json())]);
        assert_eq!(LatencyPanel::from_json(&bogus), None);
    }

    #[test]
    fn merge_is_classwise() {
        let mut a = LatencyPanel::new();
        let mut b = LatencyPanel::new();
        a.record(RequestClass::Writeback, 100);
        b.record(RequestClass::Writeback, 200);
        b.record(RequestClass::ReadHit, 50);
        a.merge(&b);
        assert_eq!(a.class(RequestClass::Writeback).count(), 2);
        assert_eq!(a.class(RequestClass::ReadHit).count(), 1);
    }
}
