//! Snapshot/delta for counter structs.
//!
//! Every stats struct in the simulator (`CacheStats`, `L4Stats`,
//! `DramStats`) is a bag of cumulative `u64` counters that gets snapshotted
//! at the warm-up boundary and subtracted at measurement end. Instead of a
//! hand-written field-by-field `delta_since` per struct, each struct
//! declares its fields once via [`impl_snapshot!`] and the generic
//! [`delta`] does the subtraction — including the subtle part: *watermark*
//! fields (e.g. `last_done`, a completion timestamp) must **not** be
//! subtracted, only carried forward.
//!
//! The same declaration powers name-driven export: [`snapshot_json`] and
//! [`register_counters`] iterate `FIELDS` so a new counter added to a stats
//! struct automatically shows up in JSON reports and the metric registry.

use crate::json::Json;
use crate::registry::MetricRegistry;

/// How a counter field behaves under interval subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// A cumulative count; `delta` subtracts the earlier value.
    Monotonic,
    /// A high-water mark or timestamp; `delta` keeps the current value.
    Watermark,
}

/// A struct of named `u64` counters supporting snapshot arithmetic.
///
/// Implement with [`impl_snapshot!`]; the field order of `FIELDS`, `field`
/// and `set_field` must agree (the macro guarantees it).
pub trait Snapshot: Clone {
    /// Field names and kinds, in `field`-index order.
    const FIELDS: &'static [(&'static str, FieldKind)];

    /// Value of field `idx`.
    fn field(&self, idx: usize) -> u64;

    /// Overwrites field `idx`.
    fn set_field(&mut self, idx: usize, v: u64);
}

/// Counter-wise difference `now - earlier`: monotonic fields subtract,
/// watermark fields keep `now`'s value.
///
/// # Panics
///
/// Panics (in debug builds) if a monotonic counter went backwards — that is
/// a bug in the caller's snapshot discipline, not a recoverable state.
#[must_use]
pub fn delta<S: Snapshot>(now: &S, earlier: &S) -> S {
    let mut out = now.clone();
    for (i, (_, kind)) in S::FIELDS.iter().enumerate() {
        if *kind == FieldKind::Monotonic {
            out.set_field(i, now.field(i) - earlier.field(i));
        }
    }
    out
}

/// Serializes every field as a JSON object in declaration order.
#[must_use]
pub fn snapshot_json<S: Snapshot>(s: &S) -> Json {
    Json::Obj(
        S::FIELDS
            .iter()
            .enumerate()
            .map(|(i, (name, _))| ((*name).to_owned(), Json::u64(s.field(i))))
            .collect(),
    )
}

/// Rebuilds a stats struct from [`snapshot_json`] output by field name.
/// Returns `None` if any declared field is missing or non-integer —
/// a snapshot written by an older field set does not silently load as
/// zeros.
#[must_use]
pub fn snapshot_from_json<S: Snapshot + Default>(j: &Json) -> Option<S> {
    let mut s = S::default();
    for (i, (name, _)) in S::FIELDS.iter().enumerate() {
        s.set_field(i, j.get(name)?.as_u64()?);
    }
    Some(s)
}

/// Registers every field as `"<prefix><name>"` counters in `reg`.
pub fn register_counters<S: Snapshot>(reg: &mut MetricRegistry, prefix: &str, s: &S) {
    for (i, (name, _)) in S::FIELDS.iter().enumerate() {
        let id = reg.counter(&format!("{prefix}{name}"));
        reg.set(id, s.field(i));
    }
}

/// Implements [`Snapshot`] for a struct of `u64` counters.
///
/// ```ignore
/// impl_snapshot!(MyStats {
///     reads: Monotonic,
///     last_done: Watermark,
/// });
/// ```
#[macro_export]
macro_rules! impl_snapshot {
    ($ty:ty { $($field:ident: $kind:ident),+ $(,)? }) => {
        impl $crate::Snapshot for $ty {
            const FIELDS: &'static [(&'static str, $crate::FieldKind)] =
                &[$((stringify!($field), $crate::FieldKind::$kind)),+];

            fn field(&self, idx: usize) -> u64 {
                [$(self.$field),+][idx]
            }

            fn set_field(&mut self, idx: usize, v: u64) {
                let mut i = 0usize;
                $(
                    if i == idx {
                        self.$field = v;
                        return;
                    }
                    i += 1;
                )+
                let _ = i;
                panic!("field index {idx} out of range for {}", stringify!($ty));
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    struct Demo {
        a: u64,
        b: u64,
        hw: u64,
    }

    impl_snapshot!(Demo {
        a: Monotonic,
        b: Monotonic,
        hw: Watermark,
    });

    #[test]
    fn delta_subtracts_monotonic_and_keeps_watermark() {
        let early = Demo {
            a: 1,
            b: 10,
            hw: 500,
        };
        let late = Demo {
            a: 5,
            b: 10,
            hw: 900,
        };
        assert_eq!(
            delta(&late, &early),
            Demo {
                a: 4,
                b: 0,
                hw: 900
            }
        );
    }

    #[test]
    fn field_access_matches_declaration_order() {
        let d = Demo { a: 7, b: 8, hw: 9 };
        assert_eq!(Demo::FIELDS.len(), 3);
        assert_eq!(d.field(0), 7);
        assert_eq!(d.field(2), 9);
        let mut d2 = d;
        d2.set_field(1, 80);
        assert_eq!(d2.b, 80);
    }

    #[test]
    fn json_export_names_every_field() {
        let d = Demo { a: 1, b: 2, hw: 3 };
        let j = snapshot_json(&d);
        assert_eq!(j.get("a"), Some(&Json::Int(1)));
        assert_eq!(j.get("hw"), Some(&Json::Int(3)));
    }

    #[test]
    fn json_round_trips_by_field_name() {
        let d = Demo { a: 1, b: 2, hw: 3 };
        let back: Demo = snapshot_from_json(&snapshot_json(&d)).unwrap();
        assert_eq!(back, d);
        // A document missing a declared field is rejected.
        let partial = Json::Obj(vec![("a".into(), Json::Int(1))]);
        assert_eq!(snapshot_from_json::<Demo>(&partial), None);
    }

    #[test]
    fn registry_export_prefixes_names() {
        let d = Demo { a: 4, b: 5, hw: 6 };
        let mut reg = MetricRegistry::new();
        register_counters(&mut reg, "demo.", &d);
        assert_eq!(reg.counter_value("demo.b"), Some(5));
    }
}
