//! Named metric registry: counters, gauges and latency histograms.
//!
//! Hot paths resolve a metric name **once** into an interned handle
//! ([`CounterId`] / [`GaugeId`] / [`HistId`]) and then update through the
//! handle — an array index, no hashing, no string comparison. Cold paths
//! (report generation) walk the registry by name.

use std::collections::HashMap;

use crate::hist::Histogram;
use crate::json::Json;

/// Interned handle to a counter; obtained from [`MetricRegistry::counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// Interned handle to a gauge; obtained from [`MetricRegistry::gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(usize);

/// Interned handle to a histogram; obtained from
/// [`MetricRegistry::histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistId(usize);

/// A registry of named metrics.
///
/// Counters are monotonically increasing `u64`s (though [`set`] exists for
/// mirroring externally-maintained stats structs); gauges are
/// instantaneous `f64` readings; histograms are [`Histogram`]s.
///
/// [`set`]: MetricRegistry::set
#[derive(Debug, Default, Clone)]
pub struct MetricRegistry {
    names: HashMap<String, MetricSlot>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, Histogram)>,
}

#[derive(Debug, Clone, Copy)]
enum MetricSlot {
    Counter(usize),
    Gauge(usize),
    Hist(usize),
}

impl MetricRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or finds) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(slot) = self.names.get(name) {
            match slot {
                MetricSlot::Counter(i) => return CounterId(*i),
                _ => panic!("metric {name:?} already registered with a different type"),
            }
        }
        let i = self.counters.len();
        self.counters.push((name.to_owned(), 0));
        self.names.insert(name.to_owned(), MetricSlot::Counter(i));
        CounterId(i)
    }

    /// Interns (or finds) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(slot) = self.names.get(name) {
            match slot {
                MetricSlot::Gauge(i) => return GaugeId(*i),
                _ => panic!("metric {name:?} already registered with a different type"),
            }
        }
        let i = self.gauges.len();
        self.gauges.push((name.to_owned(), 0.0));
        self.names.insert(name.to_owned(), MetricSlot::Gauge(i));
        GaugeId(i)
    }

    /// Interns (or finds) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(slot) = self.names.get(name) {
            match slot {
                MetricSlot::Hist(i) => return HistId(*i),
                _ => panic!("metric {name:?} already registered with a different type"),
            }
        }
        let i = self.hists.len();
        self.hists.push((name.to_owned(), Histogram::new()));
        self.names.insert(name.to_owned(), MetricSlot::Hist(i));
        HistId(i)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Overwrites a counter (for mirroring an external stats struct).
    #[inline]
    pub fn set(&mut self, id: CounterId, v: u64) {
        self.counters[id.0].1 = v;
    }

    /// Sets a gauge reading.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Records a sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].1.record(v);
    }

    /// Merges an externally-built histogram into a registered one (for
    /// mirroring distributions accumulated outside the registry).
    pub fn merge_histogram(&mut self, id: HistId, h: &Histogram) {
        self.hists[id.0].1.merge(h);
    }

    /// Current value of a counter handle.
    #[must_use]
    pub fn counter_value_of(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of the counter `name`, if registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.names.get(name)? {
            MetricSlot::Counter(i) => Some(self.counters[*i].1),
            _ => None,
        }
    }

    /// Current reading of the gauge `name`, if registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.names.get(name)? {
            MetricSlot::Gauge(i) => Some(self.gauges[*i].1),
            _ => None,
        }
    }

    /// The histogram registered under `name`, if any.
    #[must_use]
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        match self.names.get(name)? {
            MetricSlot::Hist(i) => Some(&self.hists[*i].1),
            _ => None,
        }
    }

    /// All counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All gauges in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All histograms in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Serializes the whole registry: `{"counters": {..}, "gauges": {..},
    /// "histograms": {..}}`, each section in registration order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters()
                        .map(|(n, v)| (n.to_owned(), Json::u64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges()
                        .map(|(n, v)| (n.to_owned(), Json::num(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms()
                        .map(|(n, h)| (n.to_owned(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_to_the_same_handle() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("l4.reads");
        let b = reg.counter("l4.reads");
        assert_eq!(a, b);
        reg.inc(a);
        reg.add(b, 4);
        assert_eq!(reg.counter_value("l4.reads"), Some(5));
    }

    #[test]
    fn gauges_and_histograms_coexist() {
        let mut reg = MetricRegistry::new();
        let g = reg.gauge("l4.occupancy");
        let h = reg.histogram("l4.read_latency");
        reg.set_gauge(g, 0.75);
        reg.observe(h, 40);
        reg.observe(h, 160);
        assert_eq!(reg.gauge_value("l4.occupancy"), Some(0.75));
        assert_eq!(reg.histogram_ref("l4.read_latency").unwrap().count(), 2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn cross_type_reuse_panics() {
        let mut reg = MetricRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn to_json_round_trips() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("hits");
        reg.add(c, 9);
        let h = reg.histogram("lat");
        reg.observe(h, 100);
        let text = reg.to_json().render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("counters").unwrap().get("hits"),
            Some(&Json::Int(9))
        );
        assert_eq!(
            parsed
                .get("histograms")
                .unwrap()
                .get("lat")
                .unwrap()
                .get("count"),
            Some(&Json::Int(1))
        );
    }
}
