//! Hierarchical span tracing with explicit context propagation.
//!
//! A [`TraceCtx`] is a cheap clonable handle shared across threads: the
//! serving layer creates one per sweep, the runner passes it to every
//! worker, and the simulator opens phase spans inside it, so one request
//! yields one causally-linked tree no matter how many threads touched it.
//!
//! Design points:
//!
//! * **Disabled is free.** A disabled context (the default) holds no
//!   allocation at all; [`TraceCtx::span`] returns `None` after one branch.
//! * **Lock-cheap collection.** An open span lives entirely in its
//!   [`SpanGuard`] on the opening thread; the shared collector is locked
//!   exactly once per span, when the guard drops and appends the finished
//!   record. Nothing is held locked while a span is running.
//! * **Two timebases.** Every span carries wall-clock microseconds
//!   (monotonic, relative to the context's epoch so records from different
//!   threads order consistently) and, when the owner knows them, simulated
//!   cycle bounds via [`SpanGuard::set_cycles`].
//! * **Composable export.** [`TraceCtx::export_chrome`] emits the same
//!   Chrome `trace_event` array shape as [`crate::export_chrome`], so span
//!   arrays and transaction-trace arrays concatenate (see
//!   [`merge_chrome`]) into one document Perfetto renders directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// How much diagnostic instrumentation a run records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No spans, no decision diagnostics in reports (the default; hot
    /// paths stay allocation-free and outputs stay byte-identical to a
    /// build without tracing).
    #[default]
    Off,
    /// Record DICE decision diagnostics (CIP confusion, probe
    /// attribution, bandwidth bloat) into the run report.
    Decisions,
    /// Decision diagnostics plus hierarchical spans.
    Full,
}

impl TraceLevel {
    /// Whether any diagnostics are recorded at this level.
    #[must_use]
    pub fn diagnostics_on(self) -> bool {
        self != TraceLevel::Off
    }
}

/// Identifier of one span within a [`TraceCtx`] (dense, starting at 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw numeric id.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// The parent span, `None` for a root.
    pub parent: Option<SpanId>,
    /// Human-readable name (`"sweep 1a2b"`, `"cell dice36/gcc"`, …).
    pub name: String,
    /// Label of the thread that ran the span.
    pub thread: String,
    /// Start, in microseconds since the context epoch.
    pub start_us: u64,
    /// End, in microseconds since the context epoch (`>= start_us`).
    pub end_us: u64,
    /// Simulated-cycle bounds, when the span's owner recorded them.
    pub cycles: Option<(u64, u64)>,
}

#[derive(Debug)]
struct CtxInner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A shared handle to one trace: an id allocator plus a collector of
/// completed spans. Clone it freely; all clones feed the same tree. The
/// default (disabled) context records nothing.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<CtxInner>>,
}

impl TraceCtx {
    /// An enabled context with an empty span tree.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(CtxInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A disabled context (same as `TraceCtx::default()`): every `span`
    /// call returns `None` and nothing is recorded.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether spans opened on this context are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. Returns `None` on a disabled context. The span ends
    /// (and is appended to the collector) when the guard drops.
    #[must_use]
    pub fn span(&self, name: &str, parent: Option<SpanId>) -> Option<SpanGuard> {
        let inner = self.inner.as_ref()?;
        let id = SpanId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        Some(SpanGuard {
            inner: Arc::clone(inner),
            id,
            parent,
            name: name.to_owned(),
            start_us: elapsed_us(inner.epoch),
            cycles: None,
        })
    }

    /// Snapshot of every completed span so far, in completion order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.spans.lock().map(|s| s.clone()).unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Serializes the completed spans as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "spans".into(),
            Json::Arr(self.spans().iter().map(span_json).collect()),
        )])
    }

    /// Renders the completed spans as a Chrome `trace_event` array — the
    /// same shape as [`crate::export_chrome`], so both concatenate with
    /// [`merge_chrome`]. Span ids and parent links ride in each event's
    /// `args`, which is what lets a consumer rebuild the causal tree from
    /// the exported document alone.
    #[must_use]
    pub fn export_chrome(&self, name: &str, pid: u32) -> Json {
        let spans = self.spans();
        let mut tids: Vec<&str> = Vec::new();
        let mut events = vec![Json::Obj(vec![
            ("ph".into(), Json::str("M")),
            ("name".into(), Json::str("process_name")),
            ("pid".into(), Json::u64(u64::from(pid))),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::str(name))]),
            ),
        ])];
        for s in &spans {
            let tid = match tids.iter().position(|t| *t == s.thread) {
                Some(i) => i,
                None => {
                    tids.push(&s.thread);
                    tids.len() - 1
                }
            };
            let mut args = vec![("id".into(), Json::u64(s.id.raw()))];
            if let Some(p) = s.parent {
                args.push(("parent".into(), Json::u64(p.raw())));
            }
            if let Some((cs, ce)) = s.cycles {
                args.push(("cycle_start".into(), Json::u64(cs)));
                args.push(("cycle_end".into(), Json::u64(ce)));
            }
            events.push(Json::Obj(vec![
                ("ph".into(), Json::str("X")),
                ("name".into(), Json::str(&s.name)),
                ("cat".into(), Json::str("span")),
                ("pid".into(), Json::u64(u64::from(pid))),
                ("tid".into(), Json::u64(tid as u64)),
                ("ts".into(), Json::num(s.start_us as f64)),
                ("dur".into(), Json::num((s.end_us - s.start_us) as f64)),
                ("args".into(), Json::Obj(args)),
            ]));
        }
        Json::Arr(events)
    }
}

/// Concatenates Chrome `trace_event` arrays (from [`TraceCtx::export_chrome`]
/// and/or [`crate::export_chrome`]) into one array. Non-array parts are
/// skipped.
#[must_use]
pub fn merge_chrome(parts: Vec<Json>) -> Json {
    let mut events = Vec::new();
    for p in parts {
        if let Json::Arr(mut evs) = p {
            events.append(&mut evs);
        }
    }
    Json::Arr(events)
}

/// Validates a document as a Chrome `trace_event` array (the shape
/// [`TraceCtx::export_chrome`] and [`merge_chrome`] emit): a JSON array
/// whose entries are objects with `ph`, `name` and `pid`, where every
/// duration (`"X"`) event also carries numeric `ts`/`dur` and a span id
/// in `args`. Useful as a CI gate on exported traces.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .as_arr()
        .ok_or_else(|| "trace must be a JSON array".to_owned())?;
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("event {i}: {msg}"));
        let Some(ph) = ev.get("ph").and_then(Json::as_str) else {
            return fail("missing \"ph\"");
        };
        if ev.get("name").and_then(Json::as_str).is_none() {
            return fail("missing \"name\"");
        }
        if ev.get("pid").and_then(Json::as_u64).is_none() {
            return fail("missing numeric \"pid\"");
        }
        match ph {
            "M" => {}
            "X" => {
                if ev.get("ts").and_then(Json::as_f64).is_none()
                    || ev.get("dur").and_then(Json::as_f64).is_none()
                {
                    return fail("duration event missing numeric \"ts\"/\"dur\"");
                }
                if ev.get("tid").and_then(Json::as_u64).is_none() {
                    return fail("duration event missing numeric \"tid\"");
                }
            }
            other => return fail(&format!("unsupported phase {other:?}")),
        }
    }
    Ok(())
}

fn span_json(s: &SpanRecord) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::u64(s.id.raw())),
        (
            "parent".into(),
            s.parent.map_or(Json::Null, |p| Json::u64(p.raw())),
        ),
        ("name".into(), Json::str(&s.name)),
        ("thread".into(), Json::str(&s.thread)),
        ("start_us".into(), Json::u64(s.start_us)),
        ("end_us".into(), Json::u64(s.end_us)),
        (
            "cycles".into(),
            s.cycles.map_or(Json::Null, |(a, b)| {
                Json::Arr(vec![Json::u64(a), Json::u64(b)])
            }),
        ),
    ])
}

fn elapsed_us(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn thread_label() -> String {
    match std::thread::current().name() {
        Some(n) => n.to_owned(),
        None => format!("{:?}", std::thread::current().id()),
    }
}

/// An open span. Lives on the opening thread; dropping it ends the span
/// and appends the finished record to the context's collector (the only
/// lock acquisition in a span's lifetime).
#[derive(Debug)]
pub struct SpanGuard {
    inner: Arc<CtxInner>,
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    start_us: u64,
    cycles: Option<(u64, u64)>,
}

impl SpanGuard {
    /// This span's id — pass it as `parent` to create children.
    #[must_use]
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches simulated-cycle bounds to the span.
    pub fn set_cycles(&mut self, start: u64, end: u64) {
        self.cycles = Some((start, end.max(start)));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_us = elapsed_us(self.inner.epoch).max(self.start_us);
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            thread: thread_label(),
            start_us: self.start_us,
            end_us,
            cycles: self.cycles,
        };
        if let Ok(mut spans) = self.inner.spans.lock() {
            spans.push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_records_nothing() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert!(ctx.span("nope", None).is_none());
        assert!(ctx.spans().is_empty());
        assert!(!TraceCtx::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let ctx = TraceCtx::enabled();
        let root = ctx.span("root", None).unwrap();
        let child = ctx.span("child", Some(root.id())).unwrap();
        let child_id = child.id();
        drop(child);
        let root_id = root.id();
        drop(root);

        let spans = ctx.spans();
        assert_eq!(spans.len(), 2);
        // Completion order: child first.
        assert_eq!(spans[0].id, child_id);
        assert_eq!(spans[0].parent, Some(root_id));
        assert_eq!(spans[1].parent, None);
        assert!(spans[0].end_us >= spans[0].start_us);
    }

    #[test]
    fn spans_collected_across_threads_share_one_tree() {
        let ctx = TraceCtx::enabled();
        let root = ctx.span("root", None).unwrap();
        let root_id = root.id();
        std::thread::scope(|s| {
            for i in 0..4 {
                let ctx = ctx.clone();
                s.spawn(move || {
                    let _g = ctx.span(&format!("worker {i}"), Some(root_id));
                });
            }
        });
        drop(root);
        let spans = ctx.spans();
        assert_eq!(spans.len(), 5);
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "ids must be unique across threads");
        assert_eq!(
            spans.iter().filter(|s| s.parent == Some(root_id)).count(),
            4
        );
    }

    #[test]
    fn chrome_export_matches_trace_event_shape() {
        let ctx = TraceCtx::enabled();
        let mut root = ctx.span("sweep", None).unwrap();
        root.set_cycles(0, 3200);
        let root_id = root.id();
        drop(ctx.span("cell", Some(root_id)));
        drop(root);

        let j = ctx.export_chrome("sweep 1", 7);
        let text = j.render();
        let parsed = Json::parse(&text).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            arr[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("sweep 1")
        );
        for ev in &arr[1..] {
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            assert!(ev.get("ts").unwrap().as_f64().is_some());
            assert!(ev.get("dur").unwrap().as_f64().is_some());
            assert!(ev
                .get("args")
                .unwrap()
                .get("id")
                .unwrap()
                .as_u64()
                .is_some());
        }
        // The cell event links back to the sweep root.
        let cell = arr
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("cell"))
            .unwrap();
        assert_eq!(
            cell.get("args").unwrap().get("parent").unwrap().as_u64(),
            Some(root_id.raw())
        );
    }

    #[test]
    fn merge_chrome_concatenates_arrays() {
        let a = Json::Arr(vec![Json::u64(1)]);
        let b = Json::Arr(vec![Json::u64(2), Json::u64(3)]);
        let merged = merge_chrome(vec![a, Json::Null, b]);
        assert_eq!(merged.as_arr().unwrap().len(), 3);
    }

    #[test]
    fn json_export_lists_all_spans() {
        let ctx = TraceCtx::enabled();
        drop(ctx.span("only", None));
        let j = ctx.to_json();
        let spans = j.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("only"));
        assert_eq!(spans[0].get("parent"), Some(&Json::Null));
    }

    #[test]
    fn validator_accepts_exports_and_rejects_malformed() {
        let ctx = TraceCtx::enabled();
        let root = ctx.span("root", None).unwrap();
        drop(ctx.span("leaf", Some(root.id())));
        drop(root);
        let doc = ctx.export_chrome("t", 0);
        validate_chrome_trace(&doc).expect("export validates");
        validate_chrome_trace(&merge_chrome(vec![doc])).expect("merge validates");

        assert!(validate_chrome_trace(&Json::Obj(vec![])).is_err());
        let missing_ts = Json::Arr(vec![Json::Obj(vec![
            ("ph".into(), Json::str("X")),
            ("name".into(), Json::str("x")),
            ("pid".into(), Json::u64(0)),
        ])]);
        assert!(validate_chrome_trace(&missing_ts).is_err());
    }

    #[test]
    fn trace_level_default_is_off() {
        assert_eq!(TraceLevel::default(), TraceLevel::Off);
        assert!(!TraceLevel::Off.diagnostics_on());
        assert!(TraceLevel::Decisions.diagnostics_on());
        assert!(TraceLevel::Full.diagnostics_on());
    }
}
