//! Property tests for the observability primitives: histogram quantile
//! invariants and JSON writer/parser round trips.

use dice_obs::{Histogram, Json};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Quantiles are monotone in q and bracketed by the true min/max.
    #[test]
    fn quantiles_are_monotone_and_bounded(samples in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let true_min = *samples.iter().min().unwrap();
        let true_max = *samples.iter().max().unwrap();
        prop_assert_eq!(h.min(), true_min);
        prop_assert_eq!(h.max(), true_max);
        prop_assert_eq!(h.count(), samples.len() as u64);

        let qs = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];
        let mut prev = h.min();
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= true_min, "q{q}: {v} < min {true_min}");
            prop_assert!(v <= true_max, "q{q}: {v} > max {true_max}");
            prop_assert!(v >= prev, "quantile not monotone at q{q}: {v} < {prev}");
            prev = v;
        }
    }

    /// Each bucket's reported upper edge really bounds its members: a
    /// single recorded value is never above its bucket edge.
    #[test]
    fn bucket_edges_bound_members(v in any::<u64>()) {
        let mut h = Histogram::new();
        h.record(v);
        let (edge, count) = h.buckets().next().unwrap();
        prop_assert_eq!(count, 1);
        prop_assert!(v <= edge, "{v} > bucket edge {edge}");
        // ...and the edge is tight: halving it (next bucket down) excludes v.
        if edge > 0 {
            prop_assert!(v > edge / 2 || v == 0, "{v} not in ({}, {edge}]", edge / 2);
        }
    }

    /// Merging two histograms equals recording the union of their samples.
    #[test]
    fn merge_equals_union(
        a in prop::collection::vec(any::<u64>(), 0..50),
        b in prop::collection::vec(any::<u64>(), 0..50),
    ) {
        let mut ha = Histogram::new();
        for &s in &a {
            ha.record(s);
        }
        let mut hb = Histogram::new();
        for &s in &b {
            hb.record(s);
        }
        let mut hu = Histogram::new();
        for &s in a.iter().chain(&b) {
            hu.record(s);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, hu);
    }

    /// render → parse is the identity on integers.
    #[test]
    fn json_int_round_trip(v in any::<i64>()) {
        let j = Json::Int(v);
        prop_assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    /// render → parse is the identity on finite floats; NaN/Inf become null.
    #[test]
    fn json_float_round_trip(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let j = Json::num(v);
        let back = Json::parse(&j.render()).unwrap();
        if v.is_finite() {
            prop_assert_eq!(back, Json::Num(v));
        } else {
            prop_assert_eq!(back, Json::Null);
        }
    }

    /// render → parse is the identity on arbitrary (unicode) strings,
    /// covering escapes, control characters and surrogate-pair encoding.
    #[test]
    fn json_string_round_trip(s in prop::collection::vec(any::<char>(), 0..40)) {
        let s: String = s.into_iter().collect();
        let j = Json::str(&s);
        prop_assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    /// render → parse is the identity on nested arrays/objects.
    #[test]
    fn json_nested_round_trip(
        ints in prop::collection::vec(any::<i64>(), 0..10),
        flag in any::<bool>(),
        key in prop::collection::vec(any::<char>(), 0..12),
    ) {
        let key: String = key.into_iter().collect();
        let j = Json::Obj(vec![
            (key, Json::Arr(ints.into_iter().map(Json::Int).collect())),
            ("flag".into(), Json::Bool(flag)),
            ("nested".into(), Json::Obj(vec![("x".into(), Json::Null)])),
        ]);
        prop_assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }
}
