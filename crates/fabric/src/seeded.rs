//! A tiny deterministic RNG for fabric-side randomness.
//!
//! Everything in the fabric that needs randomness — the chaos proxy's
//! fault schedule, the coordinator's decorrelated-jitter backoff, the
//! breaker's reopen jitter — must be **reproducible from a seed**, so a
//! failing chaos drill can be replayed exactly. [`SeededRng`] is the one
//! generator they share: SplitMix64, the same finalizer the placement
//! ring uses for vnode points, with no global state and no dependence on
//! wall-clock entropy.

/// A SplitMix64 stream seeded explicitly.
#[derive(Debug, Clone)]
pub struct SeededRng(u64);

impl SeededRng {
    /// A stream whose output is fully determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SeededRng {
        SeededRng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Returns 0 for an empty range rather
    /// than panicking — callers in retry paths must never abort a sweep
    /// over a degenerate bound.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Modulo bias is irrelevant at fabric scales.
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi]` (inclusive); degenerate ranges clamp
    /// to `lo`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// A coin that lands true `percent` times out of 100.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < u64::from(percent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SeededRng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SeededRng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SeededRng::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_hold() {
        let mut r = SeededRng::new(7);
        for _ in 0..1000 {
            let v = r.between(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.between(5, 5), 5);
        assert_eq!(r.between(9, 3), 9);
    }
}
