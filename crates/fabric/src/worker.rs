//! The fabric worker: a thin dice-serve-style node that executes single
//! cells via the runner engine and its local
//! [`DiskCache`](dice_runner::DiskCache).
//!
//! Workers are deliberately dumb: no job table, no queue — one
//! `POST /v1/cells` request carries one single-cell [`SweepSpec`], the
//! cell runs synchronously on the connection worker that picked it up
//! (the accept pool's `conn_workers` knob *is* the node's cell
//! parallelism), and the response is the cell's run object
//! ([`crate::wire`]). All cross-cell orchestration — placement, retries,
//! progress, report assembly — lives in the coordinator.
//!
//! Draining reuses the accept pool's drain flag: the first SIGTERM stops
//! the accept loop, in-flight cells finish and respond (their results are
//! already persisted in the local cache), parked connections get their
//! answers, and [`Worker::run`] returns.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dice_core::{FaultKind, FaultPlan};
use dice_obs::{render_prometheus, Json, MetricRegistry};
use dice_runner::{CellOutcome, Runner, RunnerConfig};
use dice_serve::http::{Request, Response};
use dice_serve::net::{Handled, NetConfig, NetServer};
use dice_serve::SweepSpec;

use crate::wire::{render_run_object, seal_run_object};

/// Worker construction knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Accept pool (port, cell parallelism, backlog).
    pub net: NetConfig,
    /// Runner configuration for cell execution (cache dir, per-cell
    /// watchdog budget, panic retries). `jobs` is irrelevant — each
    /// request runs exactly one cell.
    pub runner: RunnerConfig,
    /// Fault drill: arm this injector on every received cell. The
    /// injection feeds the cell's cache key, so drilled results never
    /// collide with clean ones.
    pub inject: Option<FaultKind>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::default(),
            runner: RunnerConfig {
                jobs: 1,
                ..RunnerConfig::default()
            },
            inject: None,
        }
    }
}

/// A handle for draining a running worker from another thread.
#[derive(Clone)]
pub struct WorkerHandle {
    drain: Arc<AtomicBool>,
}

impl WorkerHandle {
    /// Begins a graceful drain; [`Worker::run`] returns once in-flight
    /// cells have answered.
    pub fn drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }
}

struct WorkerShared {
    runner_cfg: RunnerConfig,
    inject: Option<FaultKind>,
    metrics: Mutex<MetricRegistry>,
    draining: Arc<AtomicBool>,
}

/// The worker node.
pub struct Worker {
    net: NetServer,
    shared: Arc<WorkerShared>,
}

impl Worker {
    /// Binds the worker on `127.0.0.1:port`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: WorkerConfig) -> io::Result<Worker> {
        let net = NetServer::bind(&config.net)?;
        let draining = net.drain_flag();
        Ok(Worker {
            net,
            shared: Arc::new(WorkerShared {
                runner_cfg: config.runner,
                inject: config.inject,
                metrics: Mutex::new(MetricRegistry::new()),
                draining,
            }),
        })
    }

    /// The bound address (useful with `port: 0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.net.local_addr()
    }

    /// A drain handle, safe to move to signal watchers or tests.
    #[must_use]
    pub fn handle(&self) -> WorkerHandle {
        WorkerHandle {
            drain: self.net.drain_flag(),
        }
    }

    /// Serves cells until [`WorkerHandle::drain`], then finishes in-flight
    /// cells and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn run(&self) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let handler = Arc::new(move |request: &Request, _stream: &TcpStream| {
            Handled::Respond(route(request, &shared))
        });
        let shared = Arc::clone(&self.shared);
        let observe = Arc::new(move |status: u16, _elapsed: Duration| {
            let mut reg = shared.metrics.lock().expect("metrics poisoned");
            let id = reg.counter("worker.http_requests");
            reg.inc(id);
            let id = reg.counter(match status {
                200..=299 => "worker.http_2xx",
                400..=499 => "worker.http_4xx",
                _ => "worker.http_5xx",
            });
            reg.inc(id);
        });
        self.net.run(handler, Some(observe), None)
    }
}

fn route(request: &Request, shared: &Arc<WorkerShared>) -> Response {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            if shared.draining.load(Ordering::SeqCst) {
                Response::error(503, "draining").with_header("Retry-After", "1")
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/version") => Response::json(
            200,
            Json::Obj(vec![
                ("name".into(), Json::str("dice-fabric-worker")),
                ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
            ])
            .render(),
        ),
        ("GET", "/metrics") => {
            let reg = shared.metrics.lock().expect("metrics poisoned");
            let body = render_prometheus(&reg);
            drop(reg);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                extra: Vec::new(),
                body: body.into_bytes(),
            }
        }
        ("POST", "/v1/cells") => run_cell(request, shared),
        (_, "/healthz" | "/version" | "/metrics" | "/v1/cells") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `POST /v1/cells`: parse a single-cell spec, execute it, answer with
/// the run object.
fn run_cell(request: &Request, shared: &Arc<WorkerShared>) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "draining").with_header("Retry-After", "1");
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let spec = match SweepSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let mut cells = spec.to_cells();
    let Some(mut cell) = (cells.len() == 1).then(|| cells.remove(0)) else {
        return Response::error(400, "one cell per request");
    };
    if let Some(kind) = shared.inject {
        cell.cfg = cell.cfg.clone().with_inject(FaultPlan::seeded(kind));
    }

    // A fresh single-cell runner per request: construction is one cache
    // directory open, and it keeps the worker free of cross-request
    // state beyond the DiskCache itself.
    let runner = match Runner::new(shared.runner_cfg.clone()) {
        Ok(runner) => runner,
        Err(e) => return Response::error(500, &format!("runner setup: {e}")),
    };
    let memo = cell.memo_key();
    let mut result = runner.run(vec![cell]);
    let Some(outcome) = result.outcomes.remove(&memo) else {
        return Response::error(500, "cell produced no outcome");
    };

    let mut reg = shared.metrics.lock().expect("metrics poisoned");
    let id = reg.counter(match &outcome {
        CellOutcome::Completed {
            from_cache: true, ..
        } => "worker.cells_cached",
        CellOutcome::Completed { .. } => "worker.cells_simulated",
        CellOutcome::Failed { .. } => "worker.cells_failed",
        CellOutcome::TimedOut { .. } => "worker.cells_timed_out",
    });
    reg.inc(id);
    drop(reg);

    // Sealed in a checksummed envelope so a network that garbles bytes
    // into still-parseable JSON cannot poison the coordinator's report.
    Response::json(
        200,
        seal_run_object(render_run_object(&memo.0, &memo.1, &outcome)).render(),
    )
}
