//! Per-worker circuit breakers and decorrelated-jitter backoff.
//!
//! The coordinator used to declare a node dead on its first transport
//! error — correct for a killed process, catastrophic behind a flaky
//! network where every node occasionally drops a connection. The
//! [`Breaker`] separates the two: dispatch failures accumulate while the
//! breaker is **closed**; at the failure threshold it **opens** (the node
//! leaves the placement ring, taking no new cells) for a jittered
//! interval; when the interval expires it goes **half-open** and a single
//! health probe decides — success re-closes it (the node rejoins the
//! ring), failure re-opens it for a longer jittered interval. A node only
//! becomes *dead* when its probe budget is exhausted or a probe proves
//! the process is gone (connection refused — see the connect-vs-read
//! split in `dice_serve::client`).
//!
//! Backoff everywhere in this module is **decorrelated jitter**
//! (`sleep = uniform(base, min(cap, prev * 3))`): a fleet of workers
//! failing simultaneously must not produce synchronized retry storms,
//! which is exactly what the old fixed `50 ms × 2ⁿ` schedule did.
//!
//! All time flows through explicit `Instant` parameters so the unit
//! tests drive the clock deterministically.

use std::time::{Duration, Instant};

use crate::seeded::SeededRng;

/// Breaker tuning knobs.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive dispatch failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// First open interval (jitter never goes below this).
    pub open_base: Duration,
    /// Ceiling on the jittered open interval.
    pub open_cap: Duration,
    /// Consecutive failed health probes before the node is given up on
    /// (declared dead by the coordinator).
    pub probe_budget: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 2,
            open_base: Duration::from_millis(100),
            open_cap: Duration::from_secs(5),
            probe_budget: 5,
        }
    }
}

/// The three classic breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Dispatching normally; counts consecutive failures.
    Closed,
    /// Off the ring until the deadline passes.
    Open,
    /// Deadline passed; one probe in flight decides.
    HalfOpen,
}

/// A per-node circuit breaker (see the module docs for the lifecycle).
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    state: State,
    /// Consecutive dispatch failures while closed.
    failures: u32,
    /// Consecutive failed probes across open/half-open cycles.
    failed_probes: u32,
    /// When an open breaker may half-open.
    reopen_at: Option<Instant>,
    /// Previous open interval (decorrelated jitter input).
    prev_interval: Duration,
    /// Lifetime trip count (exported to membership).
    opened_total: u64,
    rng: SeededRng,
}

impl Breaker {
    /// A closed breaker. `seed` makes the jitter sequence reproducible.
    #[must_use]
    pub fn new(config: BreakerConfig, seed: u64) -> Breaker {
        let prev_interval = config.open_base;
        Breaker {
            config,
            state: State::Closed,
            failures: 0,
            failed_probes: 0,
            reopen_at: None,
            prev_interval,
            opened_total: 0,
            rng: SeededRng::new(seed),
        }
    }

    /// Whether dispatches may be placed on this node.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed
    }

    /// The wire spelling used in the membership document.
    #[must_use]
    pub fn state_str(&self) -> &'static str {
        match self.state {
            State::Closed => "closed",
            State::Open => "open",
            State::HalfOpen => "half_open",
        }
    }

    /// How many times this breaker has tripped.
    #[must_use]
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// Records a successful dispatch: resets the failure streak (and
    /// closes a half-open breaker that somehow answered a dispatch).
    pub fn record_success(&mut self) {
        self.state = State::Closed;
        self.failures = 0;
        self.failed_probes = 0;
        self.reopen_at = None;
        self.prev_interval = self.config.open_base;
    }

    /// Records a failed dispatch. Returns `true` when this failure trips
    /// the breaker open (the caller takes the node off the ring).
    pub fn record_failure(&mut self, now: Instant) -> bool {
        match self.state {
            State::Closed => {
                self.failures += 1;
                if self.failures >= self.config.failure_threshold {
                    self.open(now);
                    return true;
                }
                false
            }
            // Already open (a dispatch raced the trip) — nothing new.
            State::Open | State::HalfOpen => false,
        }
    }

    /// Whether the open interval has expired; if so the breaker moves to
    /// half-open and the caller owes it one health probe.
    pub fn probe_due(&mut self, now: Instant) -> bool {
        match self.state {
            State::Open if self.reopen_at.is_some_and(|at| now >= at) => {
                self.state = State::HalfOpen;
                true
            }
            State::HalfOpen => true,
            _ => false,
        }
    }

    /// A half-open probe answered healthy: close and rejoin.
    pub fn probe_succeeded(&mut self) {
        self.record_success();
    }

    /// A probe failed: re-open for a longer jittered interval. Returns
    /// `true` when the probe budget is exhausted — the node is beyond
    /// the breaker's patience and the caller should declare it dead.
    pub fn probe_failed(&mut self, now: Instant) -> bool {
        self.failed_probes += 1;
        if self.failed_probes >= self.config.probe_budget {
            return true;
        }
        self.open(now);
        false
    }

    fn open(&mut self, now: Instant) {
        let interval = decorrelated(
            &mut self.rng,
            self.config.open_base,
            self.config.open_cap,
            self.prev_interval,
        );
        self.prev_interval = interval;
        self.reopen_at = Some(now + interval);
        self.state = State::Open;
        self.failures = 0;
        self.opened_total += 1;
    }
}

/// One decorrelated-jitter draw: `uniform(base, min(cap, prev * 3))`.
fn decorrelated(rng: &mut SeededRng, base: Duration, cap: Duration, prev: Duration) -> Duration {
    let base_us = base.as_micros() as u64;
    let cap_us = cap.as_micros() as u64;
    let hi = (prev.as_micros() as u64)
        .saturating_mul(3)
        .clamp(base_us, cap_us.max(base_us));
    Duration::from_micros(rng.between(base_us, hi))
}

/// Decorrelated-jitter backoff for scatter-round retries.
///
/// Replaces the coordinator's old fixed `base × 2ⁿ` schedule: when
/// several workers fail at once, every pending cell used to wake at the
/// same instant and hammer the survivors in lockstep. Draws here are
/// independent per sweep (seeded by the sweep id) and decorrelated
/// across rounds.
#[derive(Debug, Clone)]
pub struct JitteredBackoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: SeededRng,
}

impl JitteredBackoff {
    /// A fresh schedule: first draw is in `[base, 3 × base]` (capped).
    #[must_use]
    pub fn new(base: Duration, cap: Duration, seed: u64) -> JitteredBackoff {
        JitteredBackoff {
            base,
            cap: cap.max(base),
            prev: base,
            rng: SeededRng::new(seed),
        }
    }

    /// The next sleep. Always within `[base, cap]`.
    pub fn next_delay(&mut self) -> Duration {
        let d = decorrelated(&mut self.rng, self.base, self.cap, self.prev);
        self.prev = d;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            open_base: Duration::from_millis(100),
            open_cap: Duration::from_secs(2),
            probe_budget: 3,
        }
    }

    #[test]
    fn trips_at_threshold_and_recloses_on_probe() {
        let t0 = Instant::now();
        let mut b = Breaker::new(cfg(), 1);
        assert!(b.is_closed());
        assert!(!b.record_failure(t0), "first failure must not trip");
        assert!(b.record_failure(t0), "second failure trips");
        assert_eq!(b.state_str(), "open");
        assert_eq!(b.opened_total(), 1);

        // Not due before the (jittered) interval's lower bound.
        assert!(!b.probe_due(t0));
        // Certainly due after the cap.
        assert!(b.probe_due(t0 + Duration::from_secs(3)));
        assert_eq!(b.state_str(), "half_open");
        b.probe_succeeded();
        assert!(b.is_closed());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let t0 = Instant::now();
        let mut b = Breaker::new(cfg(), 2);
        assert!(!b.record_failure(t0));
        b.record_success();
        assert!(!b.record_failure(t0), "streak must reset on success");
    }

    #[test]
    fn probe_budget_exhaustion_gives_up() {
        let t0 = Instant::now();
        let mut b = Breaker::new(cfg(), 3);
        b.record_failure(t0);
        b.record_failure(t0);
        let mut gave_up = false;
        let mut t = t0;
        for _ in 0..10 {
            t += Duration::from_secs(3);
            assert!(b.probe_due(t));
            if b.probe_failed(t) {
                gave_up = true;
                break;
            }
        }
        assert!(gave_up, "probe budget must exhaust");
    }

    #[test]
    fn open_intervals_stay_within_bounds_and_jitter() {
        let c = cfg();
        let mut b = Breaker::new(c.clone(), 4);
        let t0 = Instant::now();
        let mut intervals = Vec::new();
        let mut t = t0;
        b.record_failure(t);
        b.record_failure(t);
        for _ in 0..50 {
            let at = b.reopen_at.expect("open breaker has a deadline");
            let interval = at - t;
            assert!(interval >= c.open_base, "below base: {interval:?}");
            assert!(interval <= c.open_cap, "above cap: {interval:?}");
            intervals.push(interval);
            t = at + Duration::from_millis(1);
            assert!(b.probe_due(t));
            assert!(!b.probe_failed(t) || b.state_str() == "half_open");
            if b.state_str() == "half_open" {
                // Budget exhausted; restart the cycle.
                b.probe_succeeded();
                b.record_failure(t);
                b.record_failure(t);
            }
        }
        let first = intervals[0];
        assert!(
            intervals.iter().any(|i| *i != first),
            "intervals never varied: {first:?}"
        );
    }

    #[test]
    fn backoff_bounds_hold_for_every_draw() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(1);
        let mut backoff = JitteredBackoff::new(base, cap, 9);
        for _ in 0..1000 {
            let d = backoff.next_delay();
            assert!(d >= base, "draw below base: {d:?}");
            assert!(d <= cap, "draw above cap: {d:?}");
        }
    }

    #[test]
    fn backoff_is_seeded_and_decorrelated() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(1);
        let draws = |seed| {
            let mut b = JitteredBackoff::new(base, cap, seed);
            (0..32).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(draws(1), draws(1), "same seed must replay");
        assert_ne!(draws(1), draws(2), "different seeds must diverge");
        let one = draws(1);
        assert!(
            one.windows(2).any(|w| w[0] != w[1]),
            "schedule degenerated to a constant"
        );
    }

    #[test]
    fn degenerate_cap_clamps_to_base() {
        let base = Duration::from_millis(80);
        let mut b = JitteredBackoff::new(base, Duration::from_millis(10), 5);
        for _ in 0..10 {
            assert_eq!(b.next_delay(), base);
        }
    }
}
