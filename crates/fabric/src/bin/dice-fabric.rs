//! The `dice-fabric` binary: one executable, two roles.
//!
//! ```text
//! dice-fabric worker      [--port P] [--conn-workers N] [--cache DIR]
//!                         [--cell-timeout SECS] [--retries N]
//!                         [--inject KIND] [--verbose]
//! dice-fabric coordinator [--port P] --worker ADDR [--worker ADDR ...]
//!                         [--conn-workers N] [--vnodes N] [--capacity N]
//!                         [--scatter-width N] [--retries N]
//!                         [--backoff-ms MS] [--cell-timeout SECS]
//!                         [--journal PATH] [--hedge-ms MS]
//!                         [--breaker-threshold N] [--breaker-open-ms MS]
//!                         [--probe-budget N] [--probe-connect-ms MS]
//!                         [--probe-read-ms MS]
//! ```
//!
//! Both roles bind 127.0.0.1 (`--port 0` = ephemeral) and report the
//! bound address on stdout (`dice-fabric-ROLE listening on
//! 127.0.0.1:PORT`) so scripts can scrape it. SIGTERM/SIGINT starts a
//! graceful drain; a clean exit prints `dice-fabric-ROLE drained
//! cleanly`. A worker's `--inject KIND` arms a PR-4 fault injector
//! (`cell-panic`, `cell-timeout`, …) on every cell it runs — the fault
//! drill the fabric-recovery tests are built on.

use std::io::Write;
use std::time::Duration;

use dice_core::FaultKind;
use dice_fabric::{Coordinator, CoordinatorConfig, Worker, WorkerConfig};
use dice_serve::signal;

fn usage() -> ! {
    eprintln!(
        "usage: dice-fabric worker      [--port P] [--conn-workers N] [--cache DIR]\n\
         \x20                           [--cell-timeout SECS] [--retries N]\n\
         \x20                           [--inject KIND] [--verbose]\n\
         \x20      dice-fabric coordinator [--port P] --worker ADDR [--worker ADDR ...]\n\
         \x20                           [--conn-workers N] [--vnodes N] [--capacity N]\n\
         \x20                           [--scatter-width N] [--retries N]\n\
         \x20                           [--backoff-ms MS] [--cell-timeout SECS]\n\
         \x20                           [--journal PATH] [--hedge-ms MS]\n\
         \x20                           [--breaker-threshold N] [--breaker-open-ms MS]\n\
         \x20                           [--probe-budget N] [--probe-connect-ms MS]\n\
         \x20                           [--probe-read-ms MS]"
    );
    std::process::exit(2);
}

/// Polls the signal counter; the first signal drains, the second just
/// reports (the drain already stops everything this process owns).
fn watch_signals(role: &'static str, drain: impl Fn() + Send + 'static) {
    std::thread::spawn(move || {
        let mut seen = 0;
        loop {
            std::thread::sleep(Duration::from_millis(50));
            let count = signal::term_count();
            if count > seen {
                seen = count;
                if count == 1 {
                    eprintln!("dice-fabric-{role}: draining (finishing in-flight cells)");
                    drain();
                } else {
                    eprintln!("dice-fabric-{role}: still draining");
                }
            }
        }
    });
}

fn announce(role: &str, addr: std::net::SocketAddr) {
    // Explicit flush: stdout is block-buffered under pipes, and scripts
    // scrape this line to learn an ephemeral port.
    let mut out = std::io::stdout();
    let _ = writeln!(out, "dice-fabric-{role} listening on {addr}");
    let _ = out.flush();
}

fn run_worker(args: &mut std::env::Args) -> i32 {
    let mut config = WorkerConfig::default();
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("dice-fabric: {arg} needs {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--port" => config.net.port = value("a port").parse().unwrap_or_else(|_| usage()),
            "--conn-workers" => {
                config.net.conn_workers = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--cache" => config.runner.cache_dir = Some(value("a directory").into()),
            "--cell-timeout" => {
                let secs: u64 = value("seconds").parse().unwrap_or_else(|_| usage());
                config.runner.cell_timeout = Some(Duration::from_secs(secs));
            }
            "--retries" => {
                config.runner.retries = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--inject" => {
                let kind = value("a fault kind");
                config.inject = Some(FaultKind::parse(&kind).unwrap_or_else(|| {
                    eprintln!("dice-fabric: unknown fault kind {kind:?}");
                    std::process::exit(2);
                }));
            }
            "--verbose" => config.runner.verbose = true,
            _ => usage(),
        }
    }
    let worker = match Worker::bind(config) {
        Ok(worker) => worker,
        Err(e) => {
            eprintln!("dice-fabric-worker: bind failed: {e}");
            return 1;
        }
    };
    announce("worker", worker.local_addr().expect("bound socket"));
    let handle = worker.handle();
    watch_signals("worker", move || handle.drain());
    if let Err(e) = worker.run() {
        eprintln!("dice-fabric-worker: {e}");
        return 1;
    }
    let _ = writeln!(std::io::stdout(), "dice-fabric-worker drained cleanly");
    0
}

fn run_coordinator(args: &mut std::env::Args) -> i32 {
    let mut config = CoordinatorConfig::default();
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("dice-fabric: {arg} needs {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--port" => config.net.port = value("a port").parse().unwrap_or_else(|_| usage()),
            "--conn-workers" => {
                config.net.conn_workers = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--worker" => config.workers.push(value("an address")),
            "--vnodes" => config.vnodes = value("a count").parse().unwrap_or_else(|_| usage()),
            "--capacity" => config.capacity = value("a count").parse().unwrap_or_else(|_| usage()),
            "--scatter-width" => {
                config.scatter_width = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--retries" => {
                config.retry_rounds = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--backoff-ms" => {
                let ms: u64 = value("milliseconds").parse().unwrap_or_else(|_| usage());
                config.backoff = Duration::from_millis(ms);
            }
            "--cell-timeout" => {
                let secs: u64 = value("seconds").parse().unwrap_or_else(|_| usage());
                config.cell_timeout = Duration::from_secs(secs);
            }
            "--journal" => config.journal = Some(value("a path").into()),
            "--hedge-ms" => {
                let ms: u64 = value("milliseconds").parse().unwrap_or_else(|_| usage());
                config.hedge_after = Some(Duration::from_millis(ms));
            }
            "--breaker-threshold" => {
                config.breaker.failure_threshold =
                    value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--breaker-open-ms" => {
                let ms: u64 = value("milliseconds").parse().unwrap_or_else(|_| usage());
                config.breaker.open_base = Duration::from_millis(ms);
            }
            "--probe-budget" => {
                config.breaker.probe_budget = value("a count").parse().unwrap_or_else(|_| usage());
            }
            "--probe-connect-ms" => {
                let ms: u64 = value("milliseconds").parse().unwrap_or_else(|_| usage());
                config.probe_connect = Duration::from_millis(ms);
            }
            "--probe-read-ms" => {
                let ms: u64 = value("milliseconds").parse().unwrap_or_else(|_| usage());
                config.probe_read = Duration::from_millis(ms);
            }
            _ => usage(),
        }
    }
    if config.workers.is_empty() {
        eprintln!("dice-fabric-coordinator: at least one --worker ADDR is required");
        return 2;
    }
    let coordinator = match Coordinator::bind(config) {
        Ok(coordinator) => coordinator,
        Err(e) => {
            eprintln!("dice-fabric-coordinator: bind failed: {e}");
            return 1;
        }
    };
    announce(
        "coordinator",
        coordinator.local_addr().expect("bound socket"),
    );
    let handle = coordinator.handle();
    watch_signals("coordinator", move || handle.drain());
    if let Err(e) = coordinator.run() {
        eprintln!("dice-fabric-coordinator: {e}");
        return 1;
    }
    let _ = writeln!(std::io::stdout(), "dice-fabric-coordinator drained cleanly");
    0
}

fn main() {
    signal::install();
    let mut args = std::env::args();
    let _ = args.next();
    let code = match args.next().as_deref() {
        Some("worker") => run_worker(&mut args),
        Some("coordinator") => run_coordinator(&mut args),
        _ => usage(),
    };
    std::process::exit(code);
}
