//! The `dice-chaos` binary: a seeded TCP fault-injection proxy.
//!
//! ```text
//! dice-chaos --upstream ADDR [--port P] [--seed N] [--percent PCT]
//!            [--fault KIND ...] [--latency-ms MS] [--io-timeout SECS]
//! ```
//!
//! Sits between a coordinator and one worker and injects network faults
//! (`refuse`, `latency`, `slow-read`, `truncate`, `garble`) from a
//! seeded per-connection schedule — same `--seed`, same faults, every
//! run. Repeat `--fault` to restrict the menu; omit it for all five.
//! `--percent 0` makes a clean (but still observable) pipe.
//!
//! Binds 127.0.0.1 (`--port 0` = ephemeral) and announces
//! `dice-chaos listening on 127.0.0.1:PORT` on stdout for scripts.
//! SIGTERM/SIGINT stops accepting and prints the per-fault injection
//! tally before exiting.

use std::io::Write;
use std::time::Duration;

use dice_fabric::{ChaosConfig, ChaosProxy, NetFault};
use dice_serve::signal;

fn usage() -> ! {
    eprintln!(
        "usage: dice-chaos --upstream ADDR [--port P] [--seed N] [--percent PCT]\n\
         \x20                [--fault KIND ...] [--latency-ms MS] [--io-timeout SECS]\n\
         \x20     KIND: refuse | latency | slow-read | truncate | garble"
    );
    std::process::exit(2);
}

fn main() {
    signal::install();
    let mut config = ChaosConfig::default();
    let mut faults: Vec<NetFault> = Vec::new();
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("dice-chaos: {arg} needs {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--upstream" => config.upstream = value("an address"),
            "--port" => config.port = value("a port").parse().unwrap_or_else(|_| usage()),
            "--seed" => config.seed = value("a seed").parse().unwrap_or_else(|_| usage()),
            "--percent" => {
                config.percent = value("a percent").parse().unwrap_or_else(|_| usage());
            }
            "--fault" => {
                let kind = value("a fault kind");
                faults.push(NetFault::parse(&kind).unwrap_or_else(|| {
                    eprintln!("dice-chaos: unknown fault kind {kind:?}");
                    std::process::exit(2);
                }));
            }
            "--latency-ms" => {
                let ms: u64 = value("milliseconds").parse().unwrap_or_else(|_| usage());
                config.latency = Duration::from_millis(ms);
            }
            "--io-timeout" => {
                let secs: u64 = value("seconds").parse().unwrap_or_else(|_| usage());
                config.io_timeout = Duration::from_secs(secs);
            }
            _ => usage(),
        }
    }
    if config.upstream.is_empty() {
        eprintln!("dice-chaos: --upstream ADDR is required");
        std::process::exit(2);
    }
    if !faults.is_empty() {
        config.faults = faults;
    }

    let proxy = match ChaosProxy::bind(config) {
        Ok(proxy) => proxy,
        Err(e) => {
            eprintln!("dice-chaos: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = proxy.local_addr().expect("bound socket");
    {
        // Explicit flush: scripts scrape this line for an ephemeral port.
        let mut out = std::io::stdout();
        let _ = writeln!(out, "dice-chaos listening on {addr}");
        let _ = out.flush();
    }

    let handle = proxy.handle();
    std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_millis(50));
        if signal::term_count() > 0 {
            eprintln!("dice-chaos: draining");
            handle.drain();
            break;
        }
    });

    if let Err(e) = proxy.run() {
        eprintln!("dice-chaos: {e}");
        std::process::exit(1);
    }
    let mut out = std::io::stdout();
    for (fault, count) in proxy.counts() {
        let _ = writeln!(out, "dice-chaos injected {fault}: {count}");
    }
    let _ = writeln!(out, "dice-chaos drained cleanly");
    let _ = out.flush();
}
