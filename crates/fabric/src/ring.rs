//! A consistent-hash ring with virtual nodes for cell placement.
//!
//! Cells hash onto a 64-bit ring; each node owns the arc up to each of
//! its `vnodes` points (clockwise successor placement, Chang et al.,
//! arXiv 1602.00722 applied at the service layer). The properties the
//! fabric builds on:
//!
//! * **Minimal disruption** — removing one of N nodes remaps only the
//!   keys that node owned (≈1/N of all keys, tightened by virtual-node
//!   spreading); keys owned by survivors never move. The property test in
//!   `tests/ring_props.rs` proves both bounds.
//! * **Determinism** — placement is a pure function of the membership
//!   set, the vnode count and the key; every coordinator computes the
//!   same assignment.
//! * **Exclusion walks** — a cell that failed on its owner re-hashes to
//!   the next distinct surviving node clockwise
//!   ([`HashRing::owner_excluding`]), which is exactly where it would
//!   land if the excluded node left the ring.
//!
//! Keys are the order-independent FNV cell keys from
//! [`dice_runner::cell_key`]; they are re-mixed through [`fnv1a64`]
//! before placement so ring position is decorrelated from cache-key
//! structure.

use dice_runner::fnv1a64;

/// Default virtual nodes per physical node: enough to concentrate each
/// node's ownership share near 1/N (±a few percent at 10k keys) while
/// keeping membership changes cheap to rebuild.
pub const DEFAULT_VNODES: usize = 128;

/// The ring: sorted vnode points over the current member set.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    version: u64,
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point; ties broken by index so the
    /// layout is deterministic even in the astronomically unlikely event
    /// of a vnode hash collision.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per member.
    #[must_use]
    pub fn new(vnodes: usize) -> HashRing {
        HashRing {
            vnodes: vnodes.max(1),
            version: 0,
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Monotone membership version: bumped by every successful
    /// [`HashRing::add`]/[`HashRing::remove`]. Exposed by the
    /// coordinator's membership endpoint so clients can detect ring
    /// changes.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Virtual nodes per member.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Current members, in insertion order.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Member count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a member; returns `false` (and leaves the ring untouched) if
    /// it is already present.
    pub fn add(&mut self, node: &str) -> bool {
        if self.nodes.iter().any(|n| n == node) {
            return false;
        }
        self.nodes.push(node.to_owned());
        self.rebuild();
        true
    }

    /// Removes a member; returns `false` if it was not present.
    pub fn remove(&mut self, node: &str) -> bool {
        let Some(at) = self.nodes.iter().position(|n| n == node) else {
            return false;
        };
        self.nodes.remove(at);
        self.rebuild();
        true
    }

    /// The owner of `key`, or `None` on an empty ring.
    #[must_use]
    pub fn owner(&self, key: u64) -> Option<&str> {
        self.owner_excluding(key, &[])
    }

    /// The first clockwise owner of `key` whose node is not in
    /// `excluded` — where the key would land if the excluded nodes left
    /// the ring. `None` when every member is excluded (or the ring is
    /// empty).
    #[must_use]
    pub fn owner_excluding(&self, key: u64, excluded: &[&str]) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = place(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        let mut seen = 0usize;
        let mut at = start;
        while seen < n {
            let (_, idx) = self.points[at % n];
            let node = self.nodes[idx].as_str();
            if !excluded.contains(&node) {
                return Some(node);
            }
            at += 1;
            seen += 1;
        }
        None
    }

    fn rebuild(&mut self) {
        self.version += 1;
        self.points.clear();
        self.points.reserve(self.nodes.len() * self.vnodes);
        for (idx, node) in self.nodes.iter().enumerate() {
            for v in 0..self.vnodes {
                let point = mix64(fnv1a64(format!("{node}\u{1f}{v}").as_bytes()));
                self.points.push((point, idx));
            }
        }
        self.points.sort_unstable();
    }
}

/// Re-mixes a cell key into its ring position. The cell key is already an
/// FNV hash, but over structured text — the finalizer decorrelates ring
/// position from any structure a config family shares.
fn place(key: u64) -> u64 {
    mix64(key)
}

/// SplitMix64 finalizer. FNV-1a is fine as a content hash but has weak
/// avalanche in the high bits for short, similar inputs — exactly what
/// vnode labels (`"w0\u{1f}17"`) and re-hashed keys are — and ring
/// ownership is decided by high-bit ordering. Without this pass a
/// 4-node ring gave one node 56% of 10k keys; with it every node sits
/// within a few percent of 1/N.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(names: &[&str]) -> HashRing {
        let mut r = HashRing::new(DEFAULT_VNODES);
        for n in names {
            assert!(r.add(n));
        }
        r
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let r = HashRing::new(8);
        assert!(r.is_empty());
        assert_eq!(r.owner(42), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let r = ring(&["w0"]);
        for key in 0..100u64 {
            assert_eq!(r.owner(key), Some("w0"));
        }
    }

    #[test]
    fn placement_is_deterministic_and_version_monotone() {
        let a = ring(&["w0", "w1", "w2"]);
        let b = ring(&["w0", "w1", "w2"]);
        assert_eq!(a.version(), 3);
        for key in 0..1000u64 {
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn duplicate_add_and_missing_remove_are_noops() {
        let mut r = ring(&["w0"]);
        let v = r.version();
        assert!(!r.add("w0"));
        assert!(!r.remove("nope"));
        assert_eq!(r.version(), v);
        assert!(r.remove("w0"));
        assert_eq!(r.version(), v + 1);
        assert!(r.is_empty());
    }

    #[test]
    fn exclusion_walks_to_a_survivor() {
        let r = ring(&["w0", "w1", "w2"]);
        for key in 0..1000u64 {
            let owner = r.owner(key).expect("non-empty").to_owned();
            let alt = r
                .owner_excluding(key, &[owner.as_str()])
                .expect("two survivors");
            assert_ne!(alt, owner);
            // Excluding everyone leaves nowhere to go.
            assert_eq!(r.owner_excluding(key, &["w0", "w1", "w2"]), None);
        }
    }

    #[test]
    fn exclusion_matches_removal() {
        // The re-scatter invariant: excluding a node routes a key exactly
        // where the ring without that node would.
        let full = ring(&["w0", "w1", "w2", "w3"]);
        let removed = ring(&["w0", "w1", "w3"]);
        // `removed` skips w2 at construction, giving the same point set
        // as `full` minus w2's vnodes.
        for key in 0..2000u64 {
            assert_eq!(
                full.owner_excluding(key, &["w2"]),
                removed.owner(key),
                "key {key}"
            );
        }
    }

    #[test]
    fn shares_are_roughly_balanced() {
        let r = ring(&["w0", "w1", "w2", "w3"]);
        let mut counts = [0usize; 4];
        for key in 0..10_000u64 {
            let owner = r.owner(key).expect("non-empty");
            let idx = r.nodes().iter().position(|n| n == owner).expect("member");
            counts[idx] += 1;
        }
        for &c in &counts {
            // Each of 4 nodes should own 25% ±10pp with 128 vnodes.
            assert!((1_500..=3_500).contains(&c), "unbalanced: {counts:?}");
        }
    }
}
