//! `dice-chaos`: a std-only TCP fault-injection proxy.
//!
//! Sits between the coordinator and a worker (one proxy per worker) and
//! injects network faults from a **seeded schedule**, so a chaos drill
//! that breaks the fabric can be replayed byte-for-byte. PR 4's fault
//! matrix stops at the simulation layer (tag flips, size lies, cell
//! panics); this proxy attacks the layer nothing else exercises — the
//! wire itself:
//!
//! * **refuse** — accept, then slam the connection shut before a byte
//!   flows (a worker whose accept queue answers but whose process is
//!   wedged);
//! * **latency** — a seeded delay before any byte is forwarded (a
//!   congested hop);
//! * **slow-read** — the response trickles out a byte at a time
//!   (slowloris; a worker NIC negotiating 10 Mb/s half-duplex);
//! * **truncate** — the response stops mid-body and the connection
//!   closes (a worker OOM-killed mid-write);
//! * **garble** — a window of response bytes is XOR-flipped (a broken
//!   middlebox; the reason the cell wire protocol carries a checksum).
//!
//! Faults apply to the upstream→client (response) direction — the
//! request direction is forwarded verbatim so the worker's own request
//! parsing stays out of the picture and every injected failure is
//! unambiguously the network's fault.
//!
//! The proxy is deliberately dumb about HTTP: it moves bytes. That keeps
//! it honest — it can tear a response at any byte boundary, not just the
//! ones a protocol-aware mock would think of.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::seeded::SeededRng;

/// A network fault kind the proxy can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Accept then immediately close; no byte ever flows.
    Refuse,
    /// Delay before forwarding the first byte.
    Latency,
    /// Trickle the response a byte at a time for a while.
    SlowRead,
    /// Close the connection mid-response-body.
    Truncate,
    /// XOR-flip a window of response bytes.
    Garble,
}

/// Every fault kind, in schedule order.
pub const ALL_FAULTS: [NetFault; 5] = [
    NetFault::Refuse,
    NetFault::Latency,
    NetFault::SlowRead,
    NetFault::Truncate,
    NetFault::Garble,
];

impl NetFault {
    /// The CLI spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            NetFault::Refuse => "refuse",
            NetFault::Latency => "latency",
            NetFault::SlowRead => "slow-read",
            NetFault::Truncate => "truncate",
            NetFault::Garble => "garble",
        }
    }

    /// Parses the CLI spelling.
    #[must_use]
    pub fn parse(text: &str) -> Option<NetFault> {
        ALL_FAULTS.into_iter().find(|f| f.as_str() == text)
    }
}

/// Chaos proxy construction knobs.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Port to bind on 127.0.0.1 (`0` = ephemeral).
    pub port: u16,
    /// Where clean bytes go (`host:port` of the real worker).
    pub upstream: String,
    /// Seed for the fault schedule; same seed → same faults on the same
    /// connection sequence.
    pub seed: u64,
    /// Fault kinds the schedule may pick from (empty = clean pipe).
    pub faults: Vec<NetFault>,
    /// Percent of connections faulted (0–100); the rest pass clean.
    pub percent: u32,
    /// Upper bound on injected latency (the schedule draws in
    /// `[latency/2, latency]`).
    pub latency: Duration,
    /// Socket read/write timeout on both legs; bounds how long any
    /// faulted connection can live.
    pub io_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            port: 0,
            upstream: String::new(),
            seed: 1,
            faults: ALL_FAULTS.to_vec(),
            percent: 30,
            latency: Duration::from_millis(250),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// A handle for draining a running proxy from another thread.
#[derive(Clone)]
pub struct ChaosHandle {
    drain: Arc<AtomicBool>,
}

impl ChaosHandle {
    /// Stops the accept loop; in-flight connections run out their
    /// (bounded) timeouts on their own threads.
    pub fn drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }
}

struct ChaosShared {
    config: ChaosConfig,
    counts: Mutex<BTreeMap<&'static str, u64>>,
    connections: AtomicU64,
}

impl ChaosShared {
    fn count(&self, what: &'static str) {
        *self
            .counts
            .lock()
            .expect("chaos counts poisoned")
            .entry(what)
            .or_insert(0) += 1;
    }
}

/// The fault-injection proxy.
pub struct ChaosProxy {
    listener: TcpListener,
    drain: Arc<AtomicBool>,
    shared: Arc<ChaosShared>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:port`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        Ok(ChaosProxy {
            listener,
            drain: Arc::new(AtomicBool::new(false)),
            shared: Arc::new(ChaosShared {
                config,
                counts: Mutex::new(BTreeMap::new()),
                connections: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful with `port: 0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A drain handle, safe to move to signal watchers or tests.
    #[must_use]
    pub fn handle(&self) -> ChaosHandle {
        ChaosHandle {
            drain: Arc::clone(&self.drain),
        }
    }

    /// Injection tallies so far: `(fault-or-"clean", connections)`.
    #[must_use]
    pub fn counts(&self) -> Vec<(String, u64)> {
        self.shared
            .counts
            .lock()
            .expect("chaos counts poisoned")
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect()
    }

    /// Accepts and proxies until [`ChaosHandle::drain`].
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn run(&self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        while !self.drain.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let idx = self.shared.connections.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || proxy_connection(&shared, stream, idx));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {}
            }
        }
        Ok(())
    }
}

/// The seeded schedule: which fault (if any) connection `idx` gets.
/// Pure function of `(seed, idx, faults, percent)` — replayable.
#[must_use]
pub fn scheduled_fault(config: &ChaosConfig, idx: u64) -> Option<NetFault> {
    let mut rng = SeededRng::new(config.seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if config.faults.is_empty() || !rng.chance(config.percent) {
        return None;
    }
    Some(config.faults[rng.below(config.faults.len() as u64) as usize])
}

fn proxy_connection(shared: &Arc<ChaosShared>, client: TcpStream, idx: u64) {
    let config = &shared.config;
    let fault = scheduled_fault(config, idx);
    shared.count(fault.map_or("clean", NetFault::as_str));
    // Per-connection RNG, decorrelated from the schedule draw.
    let mut rng = SeededRng::new(
        config
            .seed
            .wrapping_add(idx)
            .wrapping_mul(0x2545_f491_4f6c_dd1d),
    );

    let _ = client.set_nodelay(true);
    let _ = client.set_read_timeout(Some(config.io_timeout));
    let _ = client.set_write_timeout(Some(config.io_timeout));

    if fault == Some(NetFault::Refuse) {
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let Ok(upstream) = TcpStream::connect(&config.upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = upstream.set_nodelay(true);
    let _ = upstream.set_read_timeout(Some(config.io_timeout));
    let _ = upstream.set_write_timeout(Some(config.io_timeout));

    if fault == Some(NetFault::Latency) {
        let max = config.latency.as_millis() as u64;
        std::thread::sleep(Duration::from_millis(rng.between(max / 2, max.max(1))));
    }

    // Request direction: verbatim, on its own thread.
    let (Ok(c_read), Ok(u_write)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    let forward = std::thread::spawn(move || {
        pipe_clean(c_read, u_write);
    });

    // Response direction: where the fault lives.
    match fault {
        Some(NetFault::SlowRead) => {
            // First `trickle` bytes go out one at a time with a seeded
            // pause — total added delay is bounded by trickle × step.
            let trickle = rng.between(24, 48);
            let step = Duration::from_millis(rng.between(20, 60));
            pipe_slow(&upstream, &client, trickle as usize, step);
        }
        Some(NetFault::Truncate) => {
            let cut = rng.between(1, 300) as usize;
            pipe_truncated(&upstream, &client, cut);
        }
        Some(NetFault::Garble) => {
            let start = rng.between(0, 160) as usize;
            let len = rng.between(2, 24) as usize;
            pipe_garbled(&upstream, &client, start, len);
        }
        // Clean, latency (already served) and refuse (already returned).
        _ => pipe_clean(
            match upstream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            },
            match client.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            },
        ),
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = forward.join();
}

/// Verbatim copy until EOF or timeout; shuts the write side when done so
/// the peer observes EOF.
fn pipe_clean(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 8192];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Slowloris: the first `trickle` bytes go one at a time with `step`
/// sleeps, the rest flow normally.
fn pipe_slow(from: &TcpStream, to: &TcpStream, trickle: usize, step: Duration) {
    let (Ok(mut from), Ok(mut to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    let mut buf = [0u8; 8192];
    let mut sent = 0usize;
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                let mut wrote = 0;
                while wrote < n {
                    let end = if sent < trickle {
                        std::thread::sleep(step);
                        wrote + 1
                    } else {
                        n
                    };
                    if to.write_all(&buf[wrote..end]).is_err() {
                        return;
                    }
                    if let Err(e) = to.flush() {
                        let _ = e;
                        return;
                    }
                    sent += end - wrote;
                    wrote = end;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Forwards exactly `cut` bytes, then severs the connection mid-body.
fn pipe_truncated(from: &TcpStream, to: &TcpStream, cut: usize) {
    let (Ok(mut from), Ok(mut to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    let mut buf = [0u8; 8192];
    let mut remaining = cut;
    while remaining > 0 {
        let want = remaining.min(buf.len());
        match from.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
                remaining -= n;
            }
        }
    }
    // Abrupt close: the client sees a response shorter than its
    // Content-Length promised.
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Copies the stream while XOR-flipping `len` bytes starting at stream
/// offset `start`.
fn pipe_garbled(from: &TcpStream, to: &TcpStream, start: usize, len: usize) {
    let (Ok(mut from), Ok(mut to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    let mut buf = [0u8; 8192];
    let mut offset = 0usize;
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                for (i, byte) in buf[..n].iter_mut().enumerate() {
                    let pos = offset + i;
                    if pos >= start && pos < start + len {
                        *byte ^= 0xa5;
                    }
                }
                offset += n;
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let config = ChaosConfig {
            upstream: "127.0.0.1:1".into(),
            percent: 50,
            ..ChaosConfig::default()
        };
        let a: Vec<_> = (0..64).map(|i| scheduled_fault(&config, i)).collect();
        let b: Vec<_> = (0..64).map(|i| scheduled_fault(&config, i)).collect();
        assert_eq!(a, b, "same seed must produce the same schedule");
        let other = ChaosConfig { seed: 2, ..config };
        let c: Vec<_> = (0..64).map(|i| scheduled_fault(&other, i)).collect();
        assert_ne!(a, c, "different seeds must produce different schedules");
        assert!(
            a.iter().any(Option::is_some) && a.iter().any(Option::is_none),
            "a 50% schedule should mix faulted and clean connections: {a:?}"
        );
    }

    #[test]
    fn forced_single_fault_hits_only_that_kind() {
        let config = ChaosConfig {
            upstream: "127.0.0.1:1".into(),
            faults: vec![NetFault::Truncate],
            percent: 100,
            ..ChaosConfig::default()
        };
        for i in 0..32 {
            assert_eq!(scheduled_fault(&config, i), Some(NetFault::Truncate));
        }
    }

    #[test]
    fn fault_names_round_trip() {
        for fault in ALL_FAULTS {
            assert_eq!(NetFault::parse(fault.as_str()), Some(fault));
        }
        assert_eq!(NetFault::parse("gremlins"), None);
    }

    /// A clean end-to-end pipe through a live proxy: bytes arrive intact.
    #[test]
    fn clean_connections_pass_verbatim() {
        // A one-shot echo upstream.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in upstream.incoming().flatten() {
                let mut stream = stream;
                let mut buf = [0u8; 128];
                if let Ok(n) = stream.read(&mut buf) {
                    let _ = stream.write_all(&buf[..n]);
                }
                let _ = stream.shutdown(Shutdown::Both);
            }
        });

        let proxy = ChaosProxy::bind(ChaosConfig {
            upstream: upstream_addr.to_string(),
            percent: 0,
            io_timeout: Duration::from_secs(5),
            ..ChaosConfig::default()
        })
        .expect("bind proxy");
        let addr = proxy.local_addr().expect("proxy addr");
        let handle = proxy.handle();
        let thread = std::thread::spawn(move || proxy.run().expect("proxy run"));

        let mut client = TcpStream::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        client.write_all(b"ping through chaos").expect("write");
        client.shutdown(Shutdown::Write).expect("half-close");
        let mut back = Vec::new();
        client.read_to_end(&mut back).expect("read");
        assert_eq!(back, b"ping through chaos");

        handle.drain();
        thread.join().expect("proxy thread");
    }
}
