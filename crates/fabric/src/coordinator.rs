//! The fabric coordinator: whole sweeps in, scattered cells out.
//!
//! The coordinator speaks the same sweep API as `dice-serve` —
//! `POST /v1/sweeps`, status/report/trace documents, SSE progress — but
//! instead of running cells locally it places each one on a worker via
//! the consistent-hash [`HashRing`] (keyed by the order-independent
//! [`cell_key`]) and gathers the run objects back.
//!
//! Failure handling, per gather result:
//!
//! * **transport error / protocol violation / unexpected status** — a
//!   dispatch failure against the node's circuit [`Breaker`]. At the
//!   failure threshold the breaker trips: the node leaves the ring
//!   (version bump) and an immediate health probe classifies the damage
//!   — **connection refused** means the process is gone (the node is
//!   declared dead), anything else keeps the breaker open for a
//!   jittered interval after which half-open probes decide whether it
//!   rejoins the ring or (probe budget exhausted) dies. The cell stays
//!   pending either way; the next round re-hashes it onto survivors.
//! * **HTTP 503** — the node is probed: a draining worker is removed
//!   from the ring (its in-flight cells still answer), a merely busy one
//!   stays and the cell retries after backoff.
//! * **cell-level failure** (the worker answered with an `error` /
//!   `timed_out_ms` run object) — the cell retries on the next distinct
//!   surviving node ([`HashRing::owner_excluding`]); once every live
//!   node has had a go, the last worker-reported outcome is kept, so a
//!   deterministic simulation panic renders the same error entry a
//!   direct run would.
//!
//! Rounds are bounded (`retry_rounds`) with decorrelated-jitter backoff
//! ([`JitteredBackoff`], seeded per sweep). Optionally each dispatch is
//! **hedged**: if the primary worker has not answered within
//! `hedge_after`, a second request goes to the next distinct ring owner
//! and the first usable response wins (`fabric.hedge.*` metrics).
//!
//! When a `journal` path is configured every accepted spec, finalized
//! cell and sweep completion is appended to a write-ahead [`Journal`]
//! (fsync'd before the client sees the 202). A coordinator killed
//! mid-sweep replays the journal on restart, resumes only the missing
//! cells, and renders the same bytes — crash recovery rides on the same
//! identity that makes fabric reports `cmp`-equal to direct runs.
//!
//! Report assembly rebuilds a [`SweepResult`] from the gathered outcomes
//! and renders it through the same [`render_runs`] path a direct
//! `dice-runner` invocation uses — byte-identical output is the
//! invariant the end-to-end tests `cmp` for. When the fabric itself had
//! to synthesize an outcome (no live worker ever completed the cell),
//! the sweep completes with a typed `degraded` reason instead of
//! pretending the bytes are canonical.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dice_obs::{
    labeled, merge_chrome, render_prometheus, Histogram, Json, MetricRegistry, TraceCtx,
};
use dice_runner::{cell_key, Cell, CellOutcome, SweepResult};
use dice_serve::client::{http_post_timeout, http_probe, ProbeError};
use dice_serve::http::{Request, Response};
use dice_serve::net::{Handled, NetConfig, NetServer};
use dice_serve::sse::stream_sse;
use dice_serve::{render_runs, sweep_key, JobState, SweepSpec};

use crate::breaker::{Breaker, BreakerConfig, JitteredBackoff};
use crate::journal::{Journal, JournalRecord};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::wire::{cell_spec, open_run_object, parse_run_object, render_run_object};

/// The error the fabric synthesizes when no live worker ever completed a
/// cell. Its `fabric:` prefix is what marks a finished sweep *degraded*:
/// these entries are the fabric's fault, not the simulation's, so the
/// report is not canonical.
const SYNTHETIC_ERROR: &str = "fabric: no live worker completed this cell";

/// Coordinator construction knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Accept pool (port, handler threads, backlog).
    pub net: NetConfig,
    /// Worker addresses (`host:port`), named `w0`, `w1`, … by position.
    pub workers: Vec<String>,
    /// Virtual nodes per worker on the placement ring.
    pub vnodes: usize,
    /// Maximum concurrently running sweeps before submissions get 429.
    pub capacity: usize,
    /// Parallel cell dispatches per sweep.
    pub scatter_width: usize,
    /// Re-scatter rounds after the first (bounded retries).
    pub retry_rounds: usize,
    /// Base for the decorrelated-jitter backoff between re-scatter
    /// rounds (draws live in `[backoff, backoff_cap]`).
    pub backoff: Duration,
    /// Ceiling on the jittered re-scatter backoff.
    pub backoff_cap: Duration,
    /// Socket timeout for one scattered cell; a worker that blows it
    /// counts a dispatch failure against its breaker.
    pub cell_timeout: Duration,
    /// Per-worker circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// TCP connect budget for health probes (a refused connect within
    /// this window proves the process is gone).
    pub probe_connect: Duration,
    /// Read budget for health probes (blown = alive but slow).
    pub probe_read: Duration,
    /// When set, a dispatch unanswered for this long gets a hedged
    /// duplicate on the next distinct ring owner; first response wins.
    pub hedge_after: Option<Duration>,
    /// When set, accepted sweeps and finalized cells are appended to a
    /// write-ahead journal at this path and replayed on restart.
    pub journal: Option<PathBuf>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::default(),
            workers: Vec::new(),
            vnodes: DEFAULT_VNODES,
            capacity: 16,
            scatter_width: 8,
            retry_rounds: 3,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            cell_timeout: Duration::from_secs(120),
            breaker: BreakerConfig::default(),
            probe_connect: Duration::from_secs(1),
            probe_read: Duration::from_secs(2),
            hedge_after: None,
            journal: None,
        }
    }
}

/// A worker's health as the coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// On the ring, taking cells.
    Healthy,
    /// Off the ring by request; in-flight cells still answer.
    Draining,
    /// Off the ring after a transport failure or protocol violation.
    Dead,
}

impl NodeState {
    /// The wire spelling used in the membership document.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            NodeState::Healthy => "healthy",
            NodeState::Draining => "draining",
            NodeState::Dead => "dead",
        }
    }
}

struct Node {
    name: String,
    addr: String,
    state: NodeState,
    breaker: Breaker,
    dispatched: u64,
    completed: u64,
    failed: u64,
}

struct Membership {
    nodes: Vec<Node>,
    ring: HashRing,
}

impl Membership {
    /// The ring (healthy members only) plus a name → address map, cloned
    /// so scatter rounds never hold the membership lock across HTTP.
    fn snapshot(&self) -> (HashRing, HashMap<String, String>) {
        let addrs = self
            .nodes
            .iter()
            .filter(|n| n.state == NodeState::Healthy)
            .map(|n| (n.name.clone(), n.addr.clone()))
            .collect();
        (self.ring.clone(), addrs)
    }

    fn node_mut(&mut self, name: &str) -> Option<&mut Node> {
        self.nodes.iter_mut().find(|n| n.name == name)
    }

    /// Marks `name` with `state` and takes it off the ring. Returns
    /// whether the node was still a healthy ring member.
    fn retire(&mut self, name: &str, state: NodeState) -> bool {
        let Some(node) = self.node_mut(name) else {
            return false;
        };
        if node.state != NodeState::Healthy {
            return false;
        }
        node.state = state;
        self.ring.remove(name)
    }

    fn doc(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&n.name)),
                    ("addr".into(), Json::str(&n.addr)),
                    ("state".into(), Json::str(n.state.as_str())),
                    ("breaker".into(), Json::str(n.breaker.state_str())),
                    ("breaker_opened".into(), Json::u64(n.breaker.opened_total())),
                    ("dispatched".into(), Json::u64(n.dispatched)),
                    ("completed".into(), Json::u64(n.completed)),
                    ("failed".into(), Json::u64(n.failed)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ring_version".into(), Json::u64(self.ring.version())),
            ("vnodes".into(), Json::u64(self.ring.vnodes() as u64)),
            ("nodes".into(), Json::Arr(nodes)),
        ])
    }
}

/// One tracked fabric sweep (mirrors the `dice-serve` job shape so
/// clients cannot tell the difference).
struct FabricJob {
    spec: SweepSpec,
    cells: usize,
    state: JobState,
    body: Option<Arc<String>>,
    error: Option<String>,
    summary: Option<String>,
    /// Why the finished report is not canonical (fabric-synthesized
    /// outcomes), when it is not.
    degraded: Option<String>,
    coalesced: u64,
    events: Vec<Arc<String>>,
    trace: Option<Arc<String>>,
}

struct Shared {
    cfg: CoordinatorConfig,
    membership: Mutex<Membership>,
    jobs: Mutex<HashMap<u64, FabricJob>>,
    active: AtomicUsize,
    draining: Arc<AtomicBool>,
    metrics: Mutex<MetricRegistry>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    journal: Option<Journal>,
}

impl Shared {
    fn count(&self, name: &str) {
        let mut reg = self.metrics.lock().expect("metrics poisoned");
        let id = reg.counter(name);
        reg.inc(id);
    }

    fn count_by(&self, name: &str, n: u64) {
        let mut reg = self.metrics.lock().expect("metrics poisoned");
        let id = reg.counter(name);
        reg.add(id, n);
    }

    fn count_node(&self, base: &str, node: &str) {
        let mut reg = self.metrics.lock().expect("metrics poisoned");
        let id = reg.counter(&labeled(base, &[("node", node)]));
        reg.inc(id);
    }

    /// Appends one record to the write-ahead journal, when configured.
    /// Append failures are counted and logged but never block a sweep —
    /// durability degrades, execution does not.
    fn journal_append(&self, record: &JournalRecord) {
        let Some(journal) = &self.journal else {
            return;
        };
        match journal.append(record) {
            Ok(()) => self.count("fabric.journal.appends"),
            Err(e) => {
                eprintln!(
                    "dice-fabric-coordinator: journal append failed ({}): {e}",
                    journal.path().display()
                );
                self.count("fabric.journal.append_errors");
            }
        }
    }

    /// Records a dispatch failure (transport / protocol violation)
    /// against `name`'s breaker. A trip takes the node off the ring and
    /// triggers an immediate classifying probe.
    fn dispatch_failed(&self, name: &str) {
        let tripped_addr = {
            let mut m = self.membership.lock().expect("membership poisoned");
            let now = Instant::now();
            let Some(node) = m.node_mut(name) else {
                return;
            };
            if node.state != NodeState::Healthy {
                return;
            }
            if !node.breaker.record_failure(now) {
                return;
            }
            let addr = node.addr.clone();
            m.ring.remove(name);
            addr
        };
        self.count("fabric.breaker.opened");
        self.count_node("fabric.breaker_opened", name);
        // The trip tells us dispatches fail; the probe tells us *why*.
        // Refused means the process is gone — no point waiting out the
        // open interval for a node the kernel has already buried.
        self.probe_node(name, &tripped_addr);
    }

    /// Records a successful worker answer: resets the breaker's failure
    /// streak (closed breakers only — open ones re-close via probes so
    /// the ring membership stays consistent).
    fn dispatch_answered(&self, name: &str) {
        let mut m = self.membership.lock().expect("membership poisoned");
        if let Some(node) = m.node_mut(name) {
            if node.state == NodeState::Healthy && node.breaker.is_closed() {
                node.breaker.record_success();
            }
        }
    }

    /// One health probe against `name`, settling its breaker: 200
    /// re-closes it (the node rejoins the ring), refused declares it
    /// dead, 503 marks it draining, anything else burns probe budget.
    fn probe_node(&self, name: &str, addr: &str) {
        self.count("fabric.probe.sent");
        let result = http_probe(
            addr,
            "/healthz",
            self.cfg.probe_connect,
            self.cfg.probe_read,
        );
        if let Err(e) = &result {
            let mut reg = self.metrics.lock().expect("metrics poisoned");
            let id = reg.counter(&labeled("fabric.probe_failures", &[("kind", e.kind_str())]));
            reg.inc(id);
        }
        let mut m = self.membership.lock().expect("membership poisoned");
        let now = Instant::now();
        let Some(node) = m.node_mut(name) else {
            return;
        };
        if node.state != NodeState::Healthy {
            return;
        }
        match result {
            Ok(ref r) if r.status == 200 => {
                node.breaker.probe_succeeded();
                m.ring.add(name);
                drop(m);
                self.count("fabric.breaker.reclosed");
            }
            Ok(_) => {
                // 503: the worker is draining by choice; honor it.
                m.retire(name, NodeState::Draining);
            }
            Err(ProbeError::Refused) => {
                node.state = NodeState::Dead;
                drop(m);
                self.count("fabric.node_failures");
            }
            Err(_) => {
                if node.breaker.probe_failed(now) {
                    node.state = NodeState::Dead;
                    drop(m);
                    self.count("fabric.node_failures");
                }
            }
        }
    }

    /// Probes every open breaker whose jittered interval has expired
    /// (run at each scatter-round start so tripped nodes can rejoin the
    /// ring mid-sweep).
    fn probe_due_breakers(&self) {
        let due: Vec<(String, String)> = {
            let mut m = self.membership.lock().expect("membership poisoned");
            let now = Instant::now();
            m.nodes
                .iter_mut()
                .filter(|n| n.state == NodeState::Healthy && !n.breaker.is_closed())
                .filter_map(|n| {
                    n.breaker
                        .probe_due(now)
                        .then(|| (n.name.clone(), n.addr.clone()))
                })
                .collect()
        };
        for (name, addr) in due {
            self.probe_node(&name, &addr);
        }
    }

    /// Pushes one rendered progress event onto job `id`.
    fn push_event(&self, id: u64, event: String) {
        let mut jobs = self.jobs.lock().expect("jobs poisoned");
        if let Some(job) = jobs.get_mut(&id) {
            job.events.push(Arc::new(event));
        }
    }
}

/// A handle for draining a running coordinator from another thread.
#[derive(Clone)]
pub struct CoordinatorHandle {
    drain: Arc<AtomicBool>,
}

impl CoordinatorHandle {
    /// Begins a graceful drain: no new sweeps, running scatters finish,
    /// [`Coordinator::run`] returns once they have.
    pub fn drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }
}

/// The coordinator node.
pub struct Coordinator {
    net: NetServer,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds `127.0.0.1:port` and probes the configured workers: the
    /// reachable ones join the ring, unreachable ones start dead (they
    /// are still listed in the membership document).
    ///
    /// When a journal is configured, its intact records are replayed
    /// first: sweeps accepted but not completed before the last shutdown
    /// (crash or otherwise) resume immediately, re-dispatching only the
    /// cells the journal has no result for.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure and journal open/recovery failures.
    pub fn bind(config: CoordinatorConfig) -> io::Result<Coordinator> {
        let net = NetServer::bind(&config.net)?;
        let draining = net.drain_flag();

        let (journal, recovery) = match &config.journal {
            Some(path) => {
                let (journal, recovery) = Journal::open(path)?;
                (Some(journal), Some(recovery))
            }
            None => (None, None),
        };

        let mut membership = Membership {
            nodes: Vec::new(),
            ring: HashRing::new(config.vnodes),
        };
        for (i, addr) in config.workers.iter().enumerate() {
            let name = format!("w{i}");
            let state = match http_probe(addr, "/healthz", config.probe_connect, config.probe_read)
            {
                Ok(r) if r.status == 200 => NodeState::Healthy,
                Ok(_) => NodeState::Draining,
                Err(_) => NodeState::Dead,
            };
            if state == NodeState::Healthy {
                membership.ring.add(&name);
            }
            membership.nodes.push(Node {
                breaker: Breaker::new(config.breaker.clone(), i as u64 + 1),
                name,
                addr: addr.clone(),
                state,
                dispatched: 0,
                completed: 0,
                failed: 0,
            });
        }
        let shared = Arc::new(Shared {
            cfg: config,
            membership: Mutex::new(membership),
            jobs: Mutex::new(HashMap::new()),
            active: AtomicUsize::new(0),
            draining,
            metrics: Mutex::new(MetricRegistry::new()),
            threads: Mutex::new(Vec::new()),
            journal,
        });
        if let Some(recovery) = recovery {
            resume_from_journal(&shared, &recovery);
        }
        Ok(Coordinator { net, shared })
    }

    /// The bound address (useful with `port: 0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.net.local_addr()
    }

    /// A drain handle, safe to move to signal watchers or tests.
    #[must_use]
    pub fn handle(&self) -> CoordinatorHandle {
        CoordinatorHandle {
            drain: self.net.drain_flag(),
        }
    }

    /// Serves until [`CoordinatorHandle::drain`], then waits for running
    /// sweeps to gather and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn run(&self) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let handler =
            Arc::new(move |request: &Request, stream: &TcpStream| handle(request, stream, &shared));
        let shared = Arc::clone(&self.shared);
        let observe = Arc::new(move |status: u16, elapsed: Duration| {
            let mut reg = shared.metrics.lock().expect("metrics poisoned");
            let id = reg.counter("fabric.http_requests");
            reg.inc(id);
            let id = reg.counter(match status {
                200..=299 => "fabric.http_2xx",
                400..=499 => "fabric.http_4xx",
                _ => "fabric.http_5xx",
            });
            reg.inc(id);
            let hist = reg.histogram("fabric.request_micros");
            reg.observe(hist, elapsed.as_micros() as u64);
        });
        let shared = Arc::clone(&self.shared);
        let count = Arc::new(move |event: &'static str| {
            shared.count(match event {
                "conns_rejected" => "fabric.conns_rejected",
                _ => "fabric.accept_errors",
            });
        });
        self.net.run(handler, Some(observe), Some(count))?;
        // Accept loop has stopped; let in-flight scatters gather.
        while self.shared.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        let handles = std::mem::take(&mut *self.shared.threads.lock().expect("threads poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn handle(request: &Request, stream: &TcpStream, shared: &Arc<Shared>) -> Handled {
    let path = request.path.split('?').next().unwrap_or("").to_owned();
    if let Some(id_text) = path
        .strip_prefix("/v1/sweeps/")
        .and_then(|p| p.strip_suffix("/events"))
    {
        if request.method != "GET" {
            return Handled::Respond(Response::error(405, "method not allowed"));
        }
        let Ok(id) = u64::from_str_radix(id_text, 16) else {
            return Handled::Respond(Response::error(400, "job id must be hex"));
        };
        let mut out = stream;
        return Handled::Streamed(stream_sse(&mut out, |cursor| {
            let jobs = shared.jobs.lock().expect("jobs poisoned");
            jobs.get(&id).map(|job| {
                let events = match job.events.get(cursor..) {
                    Some(rest) => rest.to_vec(),
                    None => Vec::new(),
                };
                let terminal = matches!(
                    job.state,
                    JobState::Done | JobState::Failed | JobState::Cancelled
                )
                .then(|| job.state.as_str());
                (events, terminal)
            })
        }));
    }
    Handled::Respond(route(request, &path, shared))
}

fn route(request: &Request, path: &str, shared: &Arc<Shared>) -> Response {
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            if shared.draining.load(Ordering::SeqCst) {
                Response::error(503, "draining").with_header("Retry-After", "1")
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/version") => Response::json(
            200,
            Json::Obj(vec![
                ("name".into(), Json::str("dice-fabric")),
                ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
            ])
            .render(),
        ),
        ("GET", "/metrics") => {
            let reg = shared.metrics.lock().expect("metrics poisoned");
            let body = render_prometheus(&reg);
            drop(reg);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                extra: Vec::new(),
                body: body.into_bytes(),
            }
        }
        ("GET", "/v1/fabric/membership") => {
            let m = shared.membership.lock().expect("membership poisoned");
            Response::json(200, m.doc().render())
        }
        ("POST", p) if p.starts_with("/v1/fabric/nodes/") => drain_node(p, shared),
        ("POST", "/v1/sweeps") => submit_sweep(request, shared),
        ("GET", p) if p.starts_with("/v1/sweeps/") => sweep_get(p, shared),
        (_, "/healthz" | "/version" | "/metrics" | "/v1/fabric/membership" | "/v1/sweeps") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `POST /v1/fabric/nodes/:name/drain`: take a worker off the ring
/// without declaring it dead. New cells re-hash onto the survivors;
/// cells already dispatched to the node still answer. (Stopping the
/// worker process itself is SIGTERM's job.)
fn drain_node(path: &str, shared: &Arc<Shared>) -> Response {
    let Some(name) = path
        .strip_prefix("/v1/fabric/nodes/")
        .and_then(|p| p.strip_suffix("/drain"))
    else {
        return Response::error(404, "no such endpoint");
    };
    let mut m = shared.membership.lock().expect("membership poisoned");
    if m.node_mut(name).is_none() {
        return Response::error(404, "no such node");
    }
    m.retire(name, NodeState::Draining);
    let state = m
        .node_mut(name)
        .map(|n| n.state.as_str())
        .unwrap_or("unknown");
    let doc = Json::Obj(vec![
        ("node".into(), Json::str(name)),
        ("state".into(), Json::str(state)),
        ("ring_version".into(), Json::u64(m.ring.version())),
    ]);
    Response::json(200, doc.render())
}

/// `POST /v1/sweeps`: parse, coalesce, admit, scatter.
fn submit_sweep(request: &Request, shared: &Arc<Shared>) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "draining");
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let spec = match SweepSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let cells = spec.to_cells();
    let id = sweep_key(&cells);

    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    if let Some(job) = jobs.get_mut(&id) {
        if !matches!(job.state, JobState::Failed | JobState::Cancelled) {
            job.coalesced += 1;
            let state = job.state;
            drop(jobs);
            shared.count("fabric.sweeps_coalesced");
            return accepted(id, true, state);
        }
    }
    if shared.active.load(Ordering::SeqCst) >= shared.cfg.capacity {
        drop(jobs);
        shared.count("fabric.sweeps_rejected");
        return Response::error(429, "sweep queue full").with_header("Retry-After", "1");
    }
    if shared
        .membership
        .lock()
        .expect("membership poisoned")
        .ring
        .is_empty()
    {
        drop(jobs);
        return Response::error(503, "no live workers");
    }
    jobs.insert(
        id,
        FabricJob {
            cells: cells.len(),
            spec: spec.clone(),
            state: JobState::Queued,
            body: None,
            error: None,
            summary: None,
            degraded: None,
            coalesced: 0,
            events: Vec::new(),
            trace: None,
        },
    );
    shared.active.fetch_add(1, Ordering::SeqCst);
    drop(jobs);
    shared.count("fabric.sweeps_submitted");
    // Durability point: the spec is fsync'd before the client sees 202,
    // so an accepted sweep survives any later crash.
    shared.journal_append(&JournalRecord::Accepted {
        sweep: id,
        spec: spec.to_json(),
    });

    let worker_shared = Arc::clone(shared);
    let thread = std::thread::spawn(move || {
        run_fabric_sweep(&worker_shared, id, &spec, cells, HashMap::new());
        worker_shared.active.fetch_sub(1, Ordering::SeqCst);
    });
    let mut threads = shared.threads.lock().expect("threads poisoned");
    threads.retain(|t| !t.is_finished());
    threads.push(thread);
    drop(threads);
    accepted(id, false, JobState::Queued)
}

/// Replays journal recovery at bind time: every sweep with an `accepted`
/// record but no `done` record gets its job entry rebuilt, its journaled
/// cell results pre-filled, and a scatter thread spawned to finish only
/// the cells the journal has no outcome for.
fn resume_from_journal(shared: &Arc<Shared>, recovery: &crate::journal::Recovery) {
    if recovery.dropped_bytes > 0 {
        eprintln!(
            "dice-fabric-coordinator: journal recovery dropped {} torn trailing bytes",
            recovery.dropped_bytes
        );
    }
    let mut specs: HashMap<u64, &Json> = HashMap::new();
    let mut cell_runs: HashMap<u64, Vec<&Json>> = HashMap::new();
    let mut finished: HashSet<u64> = HashSet::new();
    for record in &recovery.records {
        match record {
            JournalRecord::Accepted { sweep, spec } => {
                specs.insert(*sweep, spec);
            }
            JournalRecord::Cell { sweep, run } => {
                cell_runs.entry(*sweep).or_default().push(run);
            }
            JournalRecord::Done { sweep, .. } => {
                finished.insert(*sweep);
            }
        }
    }
    let mut unfinished: Vec<u64> = specs
        .keys()
        .filter(|sweep| !finished.contains(sweep))
        .copied()
        .collect();
    unfinished.sort_unstable();
    for id in unfinished {
        let spec = match SweepSpec::from_json(specs[&id]) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("dice-fabric-coordinator: journaled spec {id:016x} unusable: {e}");
                shared.count("fabric.journal.replay_errors");
                continue;
            }
        };
        // Last write wins per cell: a crash between append and ack can
        // journal the same cell twice with identical payloads.
        let mut done_cells: HashMap<(String, String), CellOutcome> = HashMap::new();
        for run in cell_runs.get(&id).into_iter().flatten() {
            match parse_run_object(run) {
                Ok((tag, workload, outcome)) => {
                    done_cells.insert((tag, workload), outcome);
                }
                Err(e) => {
                    eprintln!("dice-fabric-coordinator: journaled cell of {id:016x} unusable: {e}");
                    shared.count("fabric.journal.replay_errors");
                }
            }
        }
        let cells = spec.to_cells();
        {
            let mut jobs = shared.jobs.lock().expect("jobs poisoned");
            jobs.insert(
                id,
                FabricJob {
                    cells: cells.len(),
                    spec: spec.clone(),
                    state: JobState::Running,
                    body: None,
                    error: None,
                    summary: None,
                    degraded: None,
                    coalesced: 0,
                    events: Vec::new(),
                    trace: None,
                },
            );
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.count("fabric.journal.recovered_sweeps");
        shared.count_by("fabric.journal.recovered_cells", done_cells.len() as u64);
        let worker_shared = Arc::clone(shared);
        let thread = std::thread::spawn(move || {
            run_fabric_sweep(&worker_shared, id, &spec, cells, done_cells);
            worker_shared.active.fetch_sub(1, Ordering::SeqCst);
        });
        shared
            .threads
            .lock()
            .expect("threads poisoned")
            .push(thread);
    }
}

fn accepted(id: u64, coalesced: bool, state: JobState) -> Response {
    Response::json(
        202,
        Json::Obj(vec![
            ("id".into(), Json::str(format!("{id:016x}"))),
            ("state".into(), Json::str(state.as_str())),
            ("coalesced".into(), Json::Bool(coalesced)),
        ])
        .render(),
    )
}

/// `GET /v1/sweeps/:id[/report|/trace]` — same shapes as `dice-serve`.
fn sweep_get(path: &str, shared: &Arc<Shared>) -> Response {
    let rest = path.trim_start_matches("/v1/sweeps/");
    let (id_text, want) = if let Some(id) = rest.strip_suffix("/report") {
        (id, Some("report"))
    } else if let Some(id) = rest.strip_suffix("/trace") {
        (id, Some("trace"))
    } else {
        (rest, None)
    };
    let Ok(id) = u64::from_str_radix(id_text, 16) else {
        return Response::error(400, "job id must be hex");
    };
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    let Some(job) = jobs.get(&id) else {
        return Response::error(404, "no such job");
    };
    match want {
        Some(doc) => {
            let body = if doc == "report" {
                &job.body
            } else {
                &job.trace
            };
            match (body, job.state) {
                (Some(body), JobState::Done) => Response::json(200, body.as_str()),
                (_, JobState::Failed) => Response::error(500, "sweep failed"),
                (_, JobState::Cancelled) => Response::error(409, "sweep cancelled"),
                (_, _) => Response::error(409, "sweep not finished"),
            }
        }
        None => {
            let mut pairs = vec![
                ("id".to_owned(), Json::str(format!("{id:016x}"))),
                ("state".to_owned(), Json::str(job.state.as_str())),
                ("cells".to_owned(), Json::u64(job.cells as u64)),
                ("coalesced".to_owned(), Json::u64(job.coalesced)),
                ("spec".to_owned(), job.spec.to_json()),
            ];
            if let Some(summary) = &job.summary {
                pairs.push(("summary".to_owned(), Json::str(summary)));
            }
            if let Some(error) = &job.error {
                pairs.push(("error".to_owned(), Json::str(error)));
            }
            if let Some(degraded) = &job.degraded {
                pairs.push(("degraded".to_owned(), Json::str(degraded)));
            }
            Response::json(200, Json::Obj(pairs).render())
        }
    }
}

/// One scatter unit: a unique cell, where it has been tried, and how it
/// ended.
struct Item {
    cell: Cell,
    /// Ring placement key ([`cell_key`] over config + workload).
    key: u64,
    /// Nodes that answered with a cell-level failure for this cell.
    tried: Vec<String>,
    /// Last worker-reported failure, kept if every retry avenue runs out.
    fallback: Option<CellOutcome>,
    fallback_node: Option<String>,
    outcome: Option<CellOutcome>,
}

/// What one dispatched cell request came back as.
enum Fetch {
    /// Connect/read/write failure — a dispatch failure for the breaker.
    Transport,
    /// Non-200 status; 503 means draining-or-busy, anything else is a
    /// protocol violation.
    Status(u16),
    /// 200 with a parseable JSON body (the checksummed envelope).
    Body(Json),
    /// 200 with garbage — protocol violation.
    BadBody,
}

/// One `POST /v1/cells` against a worker, classified.
fn fetch_cell(addr: &str, body: &str, timeout: Duration) -> Fetch {
    match http_post_timeout(addr, "/v1/cells", body, timeout) {
        Err(_) => Fetch::Transport,
        Ok(resp) if resp.status != 200 => Fetch::Status(resp.status),
        Ok(resp) => match std::str::from_utf8(&resp.body)
            .ok()
            .and_then(|t| Json::parse(t).ok())
        {
            Some(doc) => Fetch::Body(doc),
            None => Fetch::BadBody,
        },
    }
}

/// Dispatches one cell with optional hedging: if the primary worker has
/// not answered within `hedge_after`, a duplicate goes to the hedge
/// target and the first usable (200 + body) response wins. Returns the
/// node whose response was used.
fn dispatch_cell(
    shared: &Arc<Shared>,
    body: &str,
    node: &str,
    addr: &str,
    hedge: Option<&(String, String)>,
) -> (String, Fetch) {
    let timeout = shared.cfg.cell_timeout;
    let (Some(delay), Some((hedge_node, hedge_addr))) = (shared.cfg.hedge_after, hedge) else {
        return (node.to_owned(), fetch_cell(addr, body, timeout));
    };
    let (tx, rx) = mpsc::channel::<Fetch>();
    let primary_addr = addr.to_owned();
    let primary_body = body.to_owned();
    std::thread::spawn(move || {
        let _ = tx.send(fetch_cell(&primary_addr, &primary_body, timeout));
    });
    match rx.recv_timeout(delay) {
        Ok(fetch) => (node.to_owned(), fetch),
        Err(mpsc::RecvTimeoutError::Disconnected) => (node.to_owned(), Fetch::Transport),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            shared.count("fabric.hedge.dispatched");
            let hedged = fetch_cell(hedge_addr, body, timeout);
            // The primary may have raced us while the hedge ran; a real
            // answer from it beats anything, a real answer from the
            // hedge beats waiting.
            if let Ok(fetch @ Fetch::Body(_)) = rx.try_recv() {
                return (node.to_owned(), fetch);
            }
            if matches!(hedged, Fetch::Body(_)) {
                shared.count("fabric.hedge.wins");
                return (hedge_node.clone(), hedged);
            }
            match rx.recv_timeout(timeout) {
                Ok(fetch) => (node.to_owned(), fetch),
                Err(_) => (node.to_owned(), Fetch::Transport),
            }
        }
    }
}

/// One planned dispatch: `(item index, node, addr, hedge (node, addr))`.
type Assignment = (usize, String, String, Option<(String, String)>);

/// Runs one sweep: scatter rounds until every unique cell has an
/// outcome, then reassemble and render through [`render_runs`].
/// `resume` carries journal-replayed outcomes keyed by `(tag,
/// workload)`; those cells are never re-dispatched.
fn run_fabric_sweep(
    shared: &Arc<Shared>,
    id: u64,
    spec: &SweepSpec,
    cells: Vec<Cell>,
    mut resume: HashMap<(String, String), CellOutcome>,
) {
    {
        let mut jobs = shared.jobs.lock().expect("jobs poisoned");
        if let Some(job) = jobs.get_mut(&id) {
            job.state = JobState::Running;
        }
    }
    let started = Instant::now();
    let ctx = TraceCtx::enabled();
    let sweep_name = format!("fabric sweep {id:016x}");
    let root = ctx.span(&sweep_name, None).expect("enabled context");

    // Dedupe duplicate memo keys up front, exactly like the runner does
    // (first declaration wins; the count feeds the summary line).
    let declared = cells.len();
    let mut seen = std::collections::HashSet::new();
    let mut items: Vec<Item> = Vec::with_capacity(cells.len());
    let mut replayed = 0usize;
    for cell in cells {
        if !seen.insert(cell.memo_key()) {
            continue;
        }
        let key = cell_key(&cell.cfg, &cell.workload);
        // A journal-replayed outcome settles the cell without dispatch
        // (and without re-journaling it).
        let outcome = resume.remove(&cell.memo_key());
        replayed += usize::from(outcome.is_some());
        items.push(Item {
            cell,
            key,
            tried: Vec::new(),
            fallback: None,
            fallback_node: None,
            outcome,
        });
    }
    let deduped = declared - items.len();
    let total = items.len();
    let mut seq = 0usize;
    if replayed > 0 {
        let event = Json::Obj(vec![
            ("event".into(), Json::str("resumed")),
            ("replayed".into(), Json::u64(replayed as u64)),
            ("total".into(), Json::u64(total as u64)),
        ])
        .render();
        shared.push_event(id, event);
    }

    let mut backoff = JitteredBackoff::new(shared.cfg.backoff, shared.cfg.backoff_cap, id);
    let mut round = 0usize;
    loop {
        let pending: Vec<usize> = (0..items.len())
            .filter(|&i| items[i].outcome.is_none())
            .collect();
        if pending.is_empty() {
            break;
        }
        if round > shared.cfg.retry_rounds {
            for idx in pending {
                let outcome = items[idx].fallback.take().unwrap_or(CellOutcome::Failed {
                    error: SYNTHETIC_ERROR.to_owned(),
                });
                let node = items[idx].fallback_node.take().unwrap_or_default();
                finalize(shared, id, total, &mut seq, &mut items[idx], outcome, &node);
            }
            break;
        }
        if round > 0 {
            shared.count("fabric.rescatter_rounds");
            // Decorrelated jitter, seeded by the sweep id: concurrent
            // sweeps retrying after the same worker failure wake at
            // different instants instead of storming the survivors.
            std::thread::sleep(backoff.next_delay());
        }
        // Give tripped breakers whose open interval has expired their
        // half-open probe, so nodes can rejoin the ring mid-sweep.
        shared.probe_due_breakers();

        let (ring, addrs) = shared
            .membership
            .lock()
            .expect("membership poisoned")
            .snapshot();
        let mut assignments: Vec<Assignment> = Vec::new();
        for idx in pending {
            let tried: Vec<&str> = items[idx].tried.iter().map(String::as_str).collect();
            let placed = ring
                .owner_excluding(items[idx].key, &tried)
                .and_then(|node| addrs.get(node).map(|addr| (node.to_owned(), addr.clone())));
            match placed {
                Some((node, addr)) => {
                    // The hedge target is the next distinct owner — the
                    // node a re-scatter would pick anyway, just asked
                    // `hedge_after` early.
                    let hedge = shared.cfg.hedge_after.and_then(|_| {
                        let mut excluded = tried.clone();
                        excluded.push(node.as_str());
                        ring.owner_excluding(items[idx].key, &excluded)
                            .and_then(|h| addrs.get(h).map(|haddr| (h.to_owned(), haddr.clone())))
                    });
                    assignments.push((idx, node, addr, hedge));
                }
                None => {
                    // Every surviving node already failed this cell (or
                    // the ring is empty): keep the worker-reported
                    // outcome — it is what a direct run would render.
                    let outcome = items[idx].fallback.take().unwrap_or(CellOutcome::Failed {
                        error: SYNTHETIC_ERROR.to_owned(),
                    });
                    let node = items[idx].fallback_node.take().unwrap_or_default();
                    finalize(shared, id, total, &mut seq, &mut items[idx], outcome, &node);
                }
            }
        }
        if assignments.is_empty() {
            round += 1;
            continue;
        }

        let round_span = ctx.span(&format!("scatter round {round}"), Some(root.id()));
        let parent = round_span.as_ref().map(dice_obs::SpanGuard::id);
        let next = AtomicUsize::new(0);
        let width = shared.cfg.scatter_width.clamp(1, assignments.len());
        let (tx, rx) = mpsc::channel::<(usize, String, Fetch)>();
        let mut results: Vec<(usize, String, Fetch)> = Vec::with_capacity(assignments.len());
        std::thread::scope(|s| {
            for _ in 0..width {
                let tx = tx.clone();
                let next = &next;
                let assignments = &assignments;
                let items = &items;
                let ctx = ctx.clone();
                s.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::SeqCst);
                    let Some((idx, node, addr, hedge)) = assignments.get(slot) else {
                        break;
                    };
                    let cell = &items[*idx].cell;
                    let _span = ctx.span(
                        &format!("cell:{}/{}@{}", cell.tag, cell.workload.name, node),
                        parent,
                    );
                    let body = cell_spec(spec, &cell.tag, &cell.workload.name);
                    let (used, fetch) = dispatch_cell(shared, &body, node, addr, hedge.as_ref());
                    if tx.send((slot, used, fetch)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for msg in rx {
                results.push(msg);
            }
        });
        drop(round_span);

        for (slot, node, fetch) in results {
            let (idx, _, _, _) = &assignments[slot];
            shared.count_node("fabric.cells_dispatched", &node);
            {
                let mut m = shared.membership.lock().expect("membership poisoned");
                if let Some(n) = m.node_mut(&node) {
                    n.dispatched += 1;
                }
            }
            let addr = {
                let m = shared.membership.lock().expect("membership poisoned");
                m.nodes
                    .iter()
                    .find(|n| n.name == node)
                    .map(|n| n.addr.clone())
                    .unwrap_or_default()
            };
            apply_fetch(
                shared,
                id,
                total,
                &mut seq,
                &mut items[*idx],
                &node,
                &addr,
                fetch,
            );
        }
        round += 1;
    }

    // Reassemble exactly the structure a direct runner invocation
    // produces and render through the same code path. Cells whose final
    // outcome the fabric had to synthesize (`fabric:` errors) make the
    // sweep *degraded*: it still terminates with a typed reason instead
    // of hanging or passing off non-canonical bytes as canonical.
    let mut outcomes = BTreeMap::new();
    let mut retried = 0usize;
    let mut synthetic = 0usize;
    for item in &mut items {
        retried += item.tried.len();
        let outcome = item.outcome.take().unwrap_or(CellOutcome::Failed {
            error: "fabric: cell never gathered".to_owned(),
        });
        if matches!(&outcome, CellOutcome::Failed { error } if error.starts_with("fabric:")) {
            synthetic += 1;
        }
        outcomes.insert(item.cell.memo_key(), outcome);
    }
    let degraded = (synthetic > 0).then(|| {
        format!("{synthetic} of {total} cells completed on no live worker (fabric-synthesized failures)")
    });
    let result = SweepResult {
        outcomes,
        deduped,
        jobs: shared.cfg.scatter_width,
        wall: started.elapsed(),
        cell_wall_ms: Histogram::new(),
        retried,
        cache_discarded: 0,
        cancelled: 0,
        steals: 0,
        tail_idle_ms: 0,
    };
    let body = render_runs(&result).render();
    let summary = result.summary();
    drop(root);
    let trace = merge_chrome(vec![ctx.export_chrome(&sweep_name, 0)]).render();

    {
        let mut reg = shared.metrics.lock().expect("metrics poisoned");
        let mid = reg.counter("fabric.sweeps_completed");
        reg.inc(mid);
        if degraded.is_some() {
            let did = reg.counter("fabric.sweeps_degraded");
            reg.inc(did);
        }
        let hist = reg.histogram("fabric.sweep_wall_ms");
        reg.observe(hist, started.elapsed().as_millis() as u64);
    }
    shared.journal_append(&JournalRecord::Done {
        sweep: id,
        degraded: degraded.clone(),
    });
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    if let Some(job) = jobs.get_mut(&id) {
        job.state = JobState::Done;
        job.body = Some(Arc::new(body));
        job.summary = Some(summary);
        job.degraded = degraded;
        job.trace = Some(Arc::new(trace));
    }
}

/// Applies one gather result to its item and the membership table.
#[allow(clippy::too_many_arguments)]
fn apply_fetch(
    shared: &Arc<Shared>,
    id: u64,
    total: usize,
    seq: &mut usize,
    item: &mut Item,
    node: &str,
    addr: &str,
    fetch: Fetch,
) {
    match fetch {
        Fetch::Transport | Fetch::BadBody => shared.dispatch_failed(node),
        Fetch::Status(503) => {
            // Draining worker or merely a full accept backlog — probe to
            // tell them apart. A draining node leaves the ring (its
            // in-flight cells still answer); a busy one stays and the
            // cell simply retries next round.
            let draining = !matches!(
                http_probe(addr, "/healthz", shared.cfg.probe_connect, shared.cfg.probe_read),
                Ok(ref r) if r.status == 200
            );
            if draining {
                let mut m = shared.membership.lock().expect("membership poisoned");
                m.retire(node, NodeState::Draining);
            }
        }
        Fetch::Status(_) => shared.dispatch_failed(node),
        Fetch::Body(doc) => {
            // Two gates before the body is believed: the envelope
            // checksum (bytes arrived as sent) and the cell identity
            // (the worker answered for the right cell).
            let expected = item.cell.memo_key();
            let parsed = open_run_object(&doc).and_then(parse_run_object);
            match parsed {
                Ok((tag, wl, outcome)) if tag == expected.0 && wl == expected.1 => {
                    shared.dispatch_answered(node);
                    match outcome {
                        CellOutcome::Completed { .. } => {
                            {
                                let mut m = shared.membership.lock().expect("membership poisoned");
                                if let Some(n) = m.node_mut(node) {
                                    n.completed += 1;
                                }
                            }
                            shared.count_node("fabric.cells_completed", node);
                            finalize(shared, id, total, seq, item, outcome, node);
                        }
                        CellOutcome::Failed { .. } | CellOutcome::TimedOut { .. } => {
                            // Cell-level failure: remember it, try the next
                            // distinct surviving node next round.
                            {
                                let mut m = shared.membership.lock().expect("membership poisoned");
                                if let Some(n) = m.node_mut(node) {
                                    n.failed += 1;
                                }
                            }
                            shared.count_node("fabric.cells_failed", node);
                            item.tried.push(node.to_owned());
                            item.fallback = Some(outcome);
                            item.fallback_node = Some(node.to_owned());
                        }
                    }
                }
                // Wrong cell, bad checksum, or unparseable: protocol
                // violation — a dispatch failure for the breaker.
                _ => {
                    shared.count("fabric.envelope_rejected");
                    shared.dispatch_failed(node);
                }
            }
        }
    }
}

/// Records a final outcome for an item, journals it, and emits its
/// progress event.
fn finalize(
    shared: &Arc<Shared>,
    id: u64,
    total: usize,
    seq: &mut usize,
    item: &mut Item,
    outcome: CellOutcome,
    node: &str,
) {
    // Journal before the in-memory finalize: a crash between the two
    // replays the cell (idempotent), the reverse order would lose it.
    shared.journal_append(&JournalRecord::Cell {
        sweep: id,
        run: render_run_object(&item.cell.tag, &item.cell.workload.name, &outcome),
    });
    *seq += 1;
    let status = match &outcome {
        CellOutcome::Completed { .. } => "completed",
        CellOutcome::Failed { .. } => "failed",
        CellOutcome::TimedOut { .. } => "timed_out",
    };
    let event = Json::Obj(vec![
        ("event".into(), Json::str("cell")),
        ("seq".into(), Json::u64(*seq as u64)),
        ("total".into(), Json::u64(total as u64)),
        ("tag".into(), Json::str(&item.cell.tag)),
        ("workload".into(), Json::str(&item.cell.workload.name)),
        ("status".into(), Json::str(status)),
        ("node".into(), Json::str(node)),
    ])
    .render();
    shared.push_event(id, event);
    item.outcome = Some(outcome);
}
