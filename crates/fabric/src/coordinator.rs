//! The fabric coordinator: whole sweeps in, scattered cells out.
//!
//! The coordinator speaks the same sweep API as `dice-serve` —
//! `POST /v1/sweeps`, status/report/trace documents, SSE progress — but
//! instead of running cells locally it places each one on a worker via
//! the consistent-hash [`HashRing`] (keyed by the order-independent
//! [`cell_key`]) and gathers the run objects back.
//!
//! Failure handling, per gather result:
//!
//! * **transport error / protocol violation / unexpected status** — the
//!   node is marked dead, removed from the ring (version bump), and the
//!   cell stays pending; the next round re-hashes it onto the survivors,
//!   exactly where a ring without the dead node would place it.
//! * **HTTP 503** — the node is probed: a draining worker is removed
//!   from the ring (its in-flight cells still answer), a merely busy one
//!   stays and the cell retries after backoff.
//! * **cell-level failure** (the worker answered with an `error` /
//!   `timed_out_ms` run object) — the cell retries on the next distinct
//!   surviving node ([`HashRing::owner_excluding`]); once every live
//!   node has had a go, the last worker-reported outcome is kept, so a
//!   deterministic simulation panic renders the same error entry a
//!   direct run would.
//!
//! Rounds are bounded (`retry_rounds`) with doubling backoff. Report
//! assembly rebuilds a [`SweepResult`] from the gathered outcomes and
//! renders it through the same [`render_runs`] path a direct
//! `dice-runner` invocation uses — byte-identical output is the
//! invariant the end-to-end tests `cmp` for.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dice_obs::{
    labeled, merge_chrome, render_prometheus, Histogram, Json, MetricRegistry, TraceCtx,
};
use dice_runner::{cell_key, Cell, CellOutcome, SweepResult};
use dice_serve::client::{http_get_timeout, http_post_timeout};
use dice_serve::http::{Request, Response};
use dice_serve::net::{Handled, NetConfig, NetServer};
use dice_serve::sse::stream_sse;
use dice_serve::{render_runs, sweep_key, JobState, SweepSpec};

use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::wire::{cell_spec, parse_run_object};

/// Coordinator construction knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Accept pool (port, handler threads, backlog).
    pub net: NetConfig,
    /// Worker addresses (`host:port`), named `w0`, `w1`, … by position.
    pub workers: Vec<String>,
    /// Virtual nodes per worker on the placement ring.
    pub vnodes: usize,
    /// Maximum concurrently running sweeps before submissions get 429.
    pub capacity: usize,
    /// Parallel cell dispatches per sweep.
    pub scatter_width: usize,
    /// Re-scatter rounds after the first (bounded retries).
    pub retry_rounds: usize,
    /// Backoff before the first re-scatter round; doubles per round
    /// (capped at one second).
    pub backoff: Duration,
    /// Socket timeout for one scattered cell; a worker that blows it is
    /// declared dead.
    pub cell_timeout: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::default(),
            workers: Vec::new(),
            vnodes: DEFAULT_VNODES,
            capacity: 16,
            scatter_width: 8,
            retry_rounds: 3,
            backoff: Duration::from_millis(50),
            cell_timeout: Duration::from_secs(120),
        }
    }
}

/// A worker's health as the coordinator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// On the ring, taking cells.
    Healthy,
    /// Off the ring by request; in-flight cells still answer.
    Draining,
    /// Off the ring after a transport failure or protocol violation.
    Dead,
}

impl NodeState {
    /// The wire spelling used in the membership document.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            NodeState::Healthy => "healthy",
            NodeState::Draining => "draining",
            NodeState::Dead => "dead",
        }
    }
}

struct Node {
    name: String,
    addr: String,
    state: NodeState,
    dispatched: u64,
    completed: u64,
    failed: u64,
}

struct Membership {
    nodes: Vec<Node>,
    ring: HashRing,
}

impl Membership {
    /// The ring (healthy members only) plus a name → address map, cloned
    /// so scatter rounds never hold the membership lock across HTTP.
    fn snapshot(&self) -> (HashRing, HashMap<String, String>) {
        let addrs = self
            .nodes
            .iter()
            .filter(|n| n.state == NodeState::Healthy)
            .map(|n| (n.name.clone(), n.addr.clone()))
            .collect();
        (self.ring.clone(), addrs)
    }

    fn node_mut(&mut self, name: &str) -> Option<&mut Node> {
        self.nodes.iter_mut().find(|n| n.name == name)
    }

    /// Marks `name` with `state` and takes it off the ring. Returns
    /// whether the node was still a healthy ring member.
    fn retire(&mut self, name: &str, state: NodeState) -> bool {
        let Some(node) = self.node_mut(name) else {
            return false;
        };
        if node.state != NodeState::Healthy {
            return false;
        }
        node.state = state;
        self.ring.remove(name)
    }

    fn doc(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Json::Obj(vec![
                    ("name".into(), Json::str(&n.name)),
                    ("addr".into(), Json::str(&n.addr)),
                    ("state".into(), Json::str(n.state.as_str())),
                    ("dispatched".into(), Json::u64(n.dispatched)),
                    ("completed".into(), Json::u64(n.completed)),
                    ("failed".into(), Json::u64(n.failed)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ring_version".into(), Json::u64(self.ring.version())),
            ("vnodes".into(), Json::u64(self.ring.vnodes() as u64)),
            ("nodes".into(), Json::Arr(nodes)),
        ])
    }
}

/// One tracked fabric sweep (mirrors the `dice-serve` job shape so
/// clients cannot tell the difference).
struct FabricJob {
    spec: SweepSpec,
    cells: usize,
    state: JobState,
    body: Option<Arc<String>>,
    error: Option<String>,
    summary: Option<String>,
    coalesced: u64,
    events: Vec<Arc<String>>,
    trace: Option<Arc<String>>,
}

struct Shared {
    cfg: CoordinatorConfig,
    membership: Mutex<Membership>,
    jobs: Mutex<HashMap<u64, FabricJob>>,
    active: AtomicUsize,
    draining: Arc<AtomicBool>,
    metrics: Mutex<MetricRegistry>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn count(&self, name: &str) {
        let mut reg = self.metrics.lock().expect("metrics poisoned");
        let id = reg.counter(name);
        reg.inc(id);
    }

    fn count_node(&self, base: &str, node: &str) {
        let mut reg = self.metrics.lock().expect("metrics poisoned");
        let id = reg.counter(&labeled(base, &[("node", node)]));
        reg.inc(id);
    }

    /// Declares `name` dead (transport failure / protocol violation).
    fn fail_node(&self, name: &str) {
        let mut m = self.membership.lock().expect("membership poisoned");
        if m.retire(name, NodeState::Dead) {
            drop(m);
            self.count("fabric.node_failures");
        }
    }

    /// Pushes one rendered progress event onto job `id`.
    fn push_event(&self, id: u64, event: String) {
        let mut jobs = self.jobs.lock().expect("jobs poisoned");
        if let Some(job) = jobs.get_mut(&id) {
            job.events.push(Arc::new(event));
        }
    }
}

/// A handle for draining a running coordinator from another thread.
#[derive(Clone)]
pub struct CoordinatorHandle {
    drain: Arc<AtomicBool>,
}

impl CoordinatorHandle {
    /// Begins a graceful drain: no new sweeps, running scatters finish,
    /// [`Coordinator::run`] returns once they have.
    pub fn drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }
}

/// The coordinator node.
pub struct Coordinator {
    net: NetServer,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds `127.0.0.1:port` and probes the configured workers: the
    /// reachable ones join the ring, unreachable ones start dead (they
    /// are still listed in the membership document).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: CoordinatorConfig) -> io::Result<Coordinator> {
        let net = NetServer::bind(&config.net)?;
        let draining = net.drain_flag();
        let mut membership = Membership {
            nodes: Vec::new(),
            ring: HashRing::new(config.vnodes),
        };
        for (i, addr) in config.workers.iter().enumerate() {
            let name = format!("w{i}");
            let state = match http_get_timeout(addr, "/healthz", Duration::from_secs(2)) {
                Ok(r) if r.status == 200 => NodeState::Healthy,
                Ok(_) => NodeState::Draining,
                Err(_) => NodeState::Dead,
            };
            if state == NodeState::Healthy {
                membership.ring.add(&name);
            }
            membership.nodes.push(Node {
                name,
                addr: addr.clone(),
                state,
                dispatched: 0,
                completed: 0,
                failed: 0,
            });
        }
        Ok(Coordinator {
            net,
            shared: Arc::new(Shared {
                cfg: config,
                membership: Mutex::new(membership),
                jobs: Mutex::new(HashMap::new()),
                active: AtomicUsize::new(0),
                draining,
                metrics: Mutex::new(MetricRegistry::new()),
                threads: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address (useful with `port: 0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.net.local_addr()
    }

    /// A drain handle, safe to move to signal watchers or tests.
    #[must_use]
    pub fn handle(&self) -> CoordinatorHandle {
        CoordinatorHandle {
            drain: self.net.drain_flag(),
        }
    }

    /// Serves until [`CoordinatorHandle::drain`], then waits for running
    /// sweeps to gather and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn run(&self) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let handler =
            Arc::new(move |request: &Request, stream: &TcpStream| handle(request, stream, &shared));
        let shared = Arc::clone(&self.shared);
        let observe = Arc::new(move |status: u16, elapsed: Duration| {
            let mut reg = shared.metrics.lock().expect("metrics poisoned");
            let id = reg.counter("fabric.http_requests");
            reg.inc(id);
            let id = reg.counter(match status {
                200..=299 => "fabric.http_2xx",
                400..=499 => "fabric.http_4xx",
                _ => "fabric.http_5xx",
            });
            reg.inc(id);
            let hist = reg.histogram("fabric.request_micros");
            reg.observe(hist, elapsed.as_micros() as u64);
        });
        let shared = Arc::clone(&self.shared);
        let count = Arc::new(move |event: &'static str| {
            shared.count(match event {
                "conns_rejected" => "fabric.conns_rejected",
                _ => "fabric.accept_errors",
            });
        });
        self.net.run(handler, Some(observe), Some(count))?;
        // Accept loop has stopped; let in-flight scatters gather.
        while self.shared.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        let handles = std::mem::take(&mut *self.shared.threads.lock().expect("threads poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn handle(request: &Request, stream: &TcpStream, shared: &Arc<Shared>) -> Handled {
    let path = request.path.split('?').next().unwrap_or("").to_owned();
    if let Some(id_text) = path
        .strip_prefix("/v1/sweeps/")
        .and_then(|p| p.strip_suffix("/events"))
    {
        if request.method != "GET" {
            return Handled::Respond(Response::error(405, "method not allowed"));
        }
        let Ok(id) = u64::from_str_radix(id_text, 16) else {
            return Handled::Respond(Response::error(400, "job id must be hex"));
        };
        let mut out = stream;
        return Handled::Streamed(stream_sse(&mut out, |cursor| {
            let jobs = shared.jobs.lock().expect("jobs poisoned");
            jobs.get(&id).map(|job| {
                let events = match job.events.get(cursor..) {
                    Some(rest) => rest.to_vec(),
                    None => Vec::new(),
                };
                let terminal = matches!(
                    job.state,
                    JobState::Done | JobState::Failed | JobState::Cancelled
                )
                .then(|| job.state.as_str());
                (events, terminal)
            })
        }));
    }
    Handled::Respond(route(request, &path, shared))
}

fn route(request: &Request, path: &str, shared: &Arc<Shared>) -> Response {
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            if shared.draining.load(Ordering::SeqCst) {
                Response::error(503, "draining").with_header("Retry-After", "1")
            } else {
                Response::text(200, "ok\n")
            }
        }
        ("GET", "/version") => Response::json(
            200,
            Json::Obj(vec![
                ("name".into(), Json::str("dice-fabric")),
                ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
            ])
            .render(),
        ),
        ("GET", "/metrics") => {
            let reg = shared.metrics.lock().expect("metrics poisoned");
            let body = render_prometheus(&reg);
            drop(reg);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                extra: Vec::new(),
                body: body.into_bytes(),
            }
        }
        ("GET", "/v1/fabric/membership") => {
            let m = shared.membership.lock().expect("membership poisoned");
            Response::json(200, m.doc().render())
        }
        ("POST", p) if p.starts_with("/v1/fabric/nodes/") => drain_node(p, shared),
        ("POST", "/v1/sweeps") => submit_sweep(request, shared),
        ("GET", p) if p.starts_with("/v1/sweeps/") => sweep_get(p, shared),
        (_, "/healthz" | "/version" | "/metrics" | "/v1/fabric/membership" | "/v1/sweeps") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `POST /v1/fabric/nodes/:name/drain`: take a worker off the ring
/// without declaring it dead. New cells re-hash onto the survivors;
/// cells already dispatched to the node still answer. (Stopping the
/// worker process itself is SIGTERM's job.)
fn drain_node(path: &str, shared: &Arc<Shared>) -> Response {
    let Some(name) = path
        .strip_prefix("/v1/fabric/nodes/")
        .and_then(|p| p.strip_suffix("/drain"))
    else {
        return Response::error(404, "no such endpoint");
    };
    let mut m = shared.membership.lock().expect("membership poisoned");
    if m.node_mut(name).is_none() {
        return Response::error(404, "no such node");
    }
    m.retire(name, NodeState::Draining);
    let state = m
        .node_mut(name)
        .map(|n| n.state.as_str())
        .unwrap_or("unknown");
    let doc = Json::Obj(vec![
        ("node".into(), Json::str(name)),
        ("state".into(), Json::str(state)),
        ("ring_version".into(), Json::u64(m.ring.version())),
    ]);
    Response::json(200, doc.render())
}

/// `POST /v1/sweeps`: parse, coalesce, admit, scatter.
fn submit_sweep(request: &Request, shared: &Arc<Shared>) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::error(503, "draining");
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let spec = match SweepSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let cells = spec.to_cells();
    let id = sweep_key(&cells);

    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    if let Some(job) = jobs.get_mut(&id) {
        if !matches!(job.state, JobState::Failed | JobState::Cancelled) {
            job.coalesced += 1;
            let state = job.state;
            drop(jobs);
            shared.count("fabric.sweeps_coalesced");
            return accepted(id, true, state);
        }
    }
    if shared.active.load(Ordering::SeqCst) >= shared.cfg.capacity {
        drop(jobs);
        shared.count("fabric.sweeps_rejected");
        return Response::error(429, "sweep queue full").with_header("Retry-After", "1");
    }
    if shared
        .membership
        .lock()
        .expect("membership poisoned")
        .ring
        .is_empty()
    {
        drop(jobs);
        return Response::error(503, "no live workers");
    }
    jobs.insert(
        id,
        FabricJob {
            cells: cells.len(),
            spec: spec.clone(),
            state: JobState::Queued,
            body: None,
            error: None,
            summary: None,
            coalesced: 0,
            events: Vec::new(),
            trace: None,
        },
    );
    shared.active.fetch_add(1, Ordering::SeqCst);
    drop(jobs);
    shared.count("fabric.sweeps_submitted");

    let worker_shared = Arc::clone(shared);
    let thread = std::thread::spawn(move || {
        run_fabric_sweep(&worker_shared, id, &spec, cells);
        worker_shared.active.fetch_sub(1, Ordering::SeqCst);
    });
    let mut threads = shared.threads.lock().expect("threads poisoned");
    threads.retain(|t| !t.is_finished());
    threads.push(thread);
    drop(threads);
    accepted(id, false, JobState::Queued)
}

fn accepted(id: u64, coalesced: bool, state: JobState) -> Response {
    Response::json(
        202,
        Json::Obj(vec![
            ("id".into(), Json::str(format!("{id:016x}"))),
            ("state".into(), Json::str(state.as_str())),
            ("coalesced".into(), Json::Bool(coalesced)),
        ])
        .render(),
    )
}

/// `GET /v1/sweeps/:id[/report|/trace]` — same shapes as `dice-serve`.
fn sweep_get(path: &str, shared: &Arc<Shared>) -> Response {
    let rest = path.trim_start_matches("/v1/sweeps/");
    let (id_text, want) = if let Some(id) = rest.strip_suffix("/report") {
        (id, Some("report"))
    } else if let Some(id) = rest.strip_suffix("/trace") {
        (id, Some("trace"))
    } else {
        (rest, None)
    };
    let Ok(id) = u64::from_str_radix(id_text, 16) else {
        return Response::error(400, "job id must be hex");
    };
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    let Some(job) = jobs.get(&id) else {
        return Response::error(404, "no such job");
    };
    match want {
        Some(doc) => {
            let body = if doc == "report" {
                &job.body
            } else {
                &job.trace
            };
            match (body, job.state) {
                (Some(body), JobState::Done) => Response::json(200, body.as_str()),
                (_, JobState::Failed) => Response::error(500, "sweep failed"),
                (_, JobState::Cancelled) => Response::error(409, "sweep cancelled"),
                (_, _) => Response::error(409, "sweep not finished"),
            }
        }
        None => {
            let mut pairs = vec![
                ("id".to_owned(), Json::str(format!("{id:016x}"))),
                ("state".to_owned(), Json::str(job.state.as_str())),
                ("cells".to_owned(), Json::u64(job.cells as u64)),
                ("coalesced".to_owned(), Json::u64(job.coalesced)),
                ("spec".to_owned(), job.spec.to_json()),
            ];
            if let Some(summary) = &job.summary {
                pairs.push(("summary".to_owned(), Json::str(summary)));
            }
            if let Some(error) = &job.error {
                pairs.push(("error".to_owned(), Json::str(error)));
            }
            Response::json(200, Json::Obj(pairs).render())
        }
    }
}

/// One scatter unit: a unique cell, where it has been tried, and how it
/// ended.
struct Item {
    cell: Cell,
    /// Ring placement key ([`cell_key`] over config + workload).
    key: u64,
    /// Nodes that answered with a cell-level failure for this cell.
    tried: Vec<String>,
    /// Last worker-reported failure, kept if every retry avenue runs out.
    fallback: Option<CellOutcome>,
    fallback_node: Option<String>,
    outcome: Option<CellOutcome>,
}

/// What one dispatched cell request came back as.
enum Fetch {
    /// Connect/read/write failure — the node is gone.
    Transport,
    /// Non-200 status; 503 means draining-or-busy, anything else is a
    /// protocol violation.
    Status(u16),
    /// 200 with a parseable JSON body.
    Body(Json),
    /// 200 with garbage — protocol violation.
    BadBody,
}

/// Runs one sweep: scatter rounds until every unique cell has an
/// outcome, then reassemble and render through [`render_runs`].
fn run_fabric_sweep(shared: &Arc<Shared>, id: u64, spec: &SweepSpec, cells: Vec<Cell>) {
    {
        let mut jobs = shared.jobs.lock().expect("jobs poisoned");
        if let Some(job) = jobs.get_mut(&id) {
            job.state = JobState::Running;
        }
    }
    let started = Instant::now();
    let ctx = TraceCtx::enabled();
    let sweep_name = format!("fabric sweep {id:016x}");
    let root = ctx.span(&sweep_name, None).expect("enabled context");

    // Dedupe duplicate memo keys up front, exactly like the runner does
    // (first declaration wins; the count feeds the summary line).
    let declared = cells.len();
    let mut seen = std::collections::HashSet::new();
    let mut items: Vec<Item> = Vec::with_capacity(cells.len());
    for cell in cells {
        if !seen.insert(cell.memo_key()) {
            continue;
        }
        let key = cell_key(&cell.cfg, &cell.workload);
        items.push(Item {
            cell,
            key,
            tried: Vec::new(),
            fallback: None,
            fallback_node: None,
            outcome: None,
        });
    }
    let deduped = declared - items.len();
    let total = items.len();
    let mut seq = 0usize;

    let mut round = 0usize;
    loop {
        let pending: Vec<usize> = (0..items.len())
            .filter(|&i| items[i].outcome.is_none())
            .collect();
        if pending.is_empty() {
            break;
        }
        if round > shared.cfg.retry_rounds {
            for idx in pending {
                let outcome = items[idx].fallback.take().unwrap_or(CellOutcome::Failed {
                    error: "fabric: no live worker completed this cell".to_owned(),
                });
                let node = items[idx].fallback_node.take().unwrap_or_default();
                finalize(shared, id, total, &mut seq, &mut items[idx], outcome, &node);
            }
            break;
        }
        if round > 0 {
            shared.count("fabric.rescatter_rounds");
            let backoff = shared.cfg.backoff * (1 << (round - 1).min(4)) as u32;
            std::thread::sleep(backoff.min(Duration::from_secs(1)));
        }

        let (ring, addrs) = shared
            .membership
            .lock()
            .expect("membership poisoned")
            .snapshot();
        let mut assignments: Vec<(usize, String, String)> = Vec::new();
        for idx in pending {
            let tried: Vec<&str> = items[idx].tried.iter().map(String::as_str).collect();
            let placed = ring
                .owner_excluding(items[idx].key, &tried)
                .and_then(|node| addrs.get(node).map(|addr| (node.to_owned(), addr.clone())));
            match placed {
                Some((node, addr)) => assignments.push((idx, node, addr)),
                None => {
                    // Every surviving node already failed this cell (or
                    // the ring is empty): keep the worker-reported
                    // outcome — it is what a direct run would render.
                    let outcome = items[idx].fallback.take().unwrap_or(CellOutcome::Failed {
                        error: "fabric: no live worker completed this cell".to_owned(),
                    });
                    let node = items[idx].fallback_node.take().unwrap_or_default();
                    finalize(shared, id, total, &mut seq, &mut items[idx], outcome, &node);
                }
            }
        }
        if assignments.is_empty() {
            round += 1;
            continue;
        }

        let round_span = ctx.span(&format!("scatter round {round}"), Some(root.id()));
        let parent = round_span.as_ref().map(dice_obs::SpanGuard::id);
        let next = AtomicUsize::new(0);
        let width = shared.cfg.scatter_width.clamp(1, assignments.len());
        let (tx, rx) = mpsc::channel::<(usize, Fetch)>();
        let mut results: Vec<(usize, Fetch)> = Vec::with_capacity(assignments.len());
        std::thread::scope(|s| {
            for _ in 0..width {
                let tx = tx.clone();
                let next = &next;
                let assignments = &assignments;
                let items = &items;
                let ctx = ctx.clone();
                s.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::SeqCst);
                    let Some((idx, node, addr)) = assignments.get(slot) else {
                        break;
                    };
                    let cell = &items[*idx].cell;
                    let _span = ctx.span(
                        &format!("cell:{}/{}@{}", cell.tag, cell.workload.name, node),
                        parent,
                    );
                    let body = cell_spec(spec, &cell.tag, &cell.workload.name);
                    let fetch = match http_post_timeout(
                        addr,
                        "/v1/cells",
                        &body,
                        shared.cfg.cell_timeout,
                    ) {
                        Err(_) => Fetch::Transport,
                        Ok(resp) if resp.status != 200 => Fetch::Status(resp.status),
                        Ok(resp) => match std::str::from_utf8(&resp.body)
                            .ok()
                            .and_then(|t| Json::parse(t).ok())
                        {
                            Some(doc) => Fetch::Body(doc),
                            None => Fetch::BadBody,
                        },
                    };
                    if tx.send((slot, fetch)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for msg in rx {
                results.push(msg);
            }
        });
        drop(round_span);

        for (slot, fetch) in results {
            let (idx, node, addr) = &assignments[slot];
            shared.count_node("fabric.cells_dispatched", node);
            {
                let mut m = shared.membership.lock().expect("membership poisoned");
                if let Some(n) = m.node_mut(node) {
                    n.dispatched += 1;
                }
            }
            apply_fetch(
                shared,
                id,
                total,
                &mut seq,
                &mut items[*idx],
                node,
                addr,
                fetch,
            );
        }
        round += 1;
    }

    // Reassemble exactly the structure a direct runner invocation
    // produces and render through the same code path.
    let mut outcomes = BTreeMap::new();
    let mut retried = 0usize;
    for item in &mut items {
        retried += item.tried.len();
        let outcome = item.outcome.take().unwrap_or(CellOutcome::Failed {
            error: "fabric: cell never gathered".to_owned(),
        });
        outcomes.insert(item.cell.memo_key(), outcome);
    }
    let result = SweepResult {
        outcomes,
        deduped,
        jobs: shared.cfg.scatter_width,
        wall: started.elapsed(),
        cell_wall_ms: Histogram::new(),
        retried,
        cache_discarded: 0,
        cancelled: 0,
    };
    let body = render_runs(&result).render();
    let summary = result.summary();
    drop(root);
    let trace = merge_chrome(vec![ctx.export_chrome(&sweep_name, 0)]).render();

    {
        let mut reg = shared.metrics.lock().expect("metrics poisoned");
        let mid = reg.counter("fabric.sweeps_completed");
        reg.inc(mid);
        let hist = reg.histogram("fabric.sweep_wall_ms");
        reg.observe(hist, started.elapsed().as_millis() as u64);
    }
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    if let Some(job) = jobs.get_mut(&id) {
        job.state = JobState::Done;
        job.body = Some(Arc::new(body));
        job.summary = Some(summary);
        job.trace = Some(Arc::new(trace));
    }
}

/// Applies one gather result to its item and the membership table.
#[allow(clippy::too_many_arguments)]
fn apply_fetch(
    shared: &Arc<Shared>,
    id: u64,
    total: usize,
    seq: &mut usize,
    item: &mut Item,
    node: &str,
    addr: &str,
    fetch: Fetch,
) {
    match fetch {
        Fetch::Transport | Fetch::BadBody => shared.fail_node(node),
        Fetch::Status(503) => {
            // Draining worker or merely a full accept backlog — probe to
            // tell them apart. A draining node leaves the ring (its
            // in-flight cells still answer); a busy one stays and the
            // cell simply retries next round.
            let draining = !matches!(
                http_get_timeout(addr, "/healthz", Duration::from_secs(2)),
                Ok(ref r) if r.status == 200
            );
            if draining {
                let mut m = shared.membership.lock().expect("membership poisoned");
                m.retire(node, NodeState::Draining);
            }
        }
        Fetch::Status(_) => shared.fail_node(node),
        Fetch::Body(doc) => {
            let expected = item.cell.memo_key();
            match parse_run_object(&doc) {
                Ok((tag, wl, outcome)) if tag == expected.0 && wl == expected.1 => match outcome {
                    CellOutcome::Completed { .. } => {
                        {
                            let mut m = shared.membership.lock().expect("membership poisoned");
                            if let Some(n) = m.node_mut(node) {
                                n.completed += 1;
                            }
                        }
                        shared.count_node("fabric.cells_completed", node);
                        finalize(shared, id, total, seq, item, outcome, node);
                    }
                    CellOutcome::Failed { .. } | CellOutcome::TimedOut { .. } => {
                        // Cell-level failure: remember it, try the next
                        // distinct surviving node next round.
                        {
                            let mut m = shared.membership.lock().expect("membership poisoned");
                            if let Some(n) = m.node_mut(node) {
                                n.failed += 1;
                            }
                        }
                        shared.count_node("fabric.cells_failed", node);
                        item.tried.push(node.to_owned());
                        item.fallback = Some(outcome);
                        item.fallback_node = Some(node.to_owned());
                    }
                },
                // Answered for the wrong cell, or unparseable: protocol
                // violation.
                _ => shared.fail_node(node),
            }
        }
    }
}

/// Records a final outcome for an item and emits its progress event.
fn finalize(
    shared: &Arc<Shared>,
    id: u64,
    total: usize,
    seq: &mut usize,
    item: &mut Item,
    outcome: CellOutcome,
    node: &str,
) {
    *seq += 1;
    let status = match &outcome {
        CellOutcome::Completed { .. } => "completed",
        CellOutcome::Failed { .. } => "failed",
        CellOutcome::TimedOut { .. } => "timed_out",
    };
    let event = Json::Obj(vec![
        ("event".into(), Json::str("cell")),
        ("seq".into(), Json::u64(*seq as u64)),
        ("total".into(), Json::u64(total as u64)),
        ("tag".into(), Json::str(&item.cell.tag)),
        ("workload".into(), Json::str(&item.cell.workload.name)),
        ("status".into(), Json::str(status)),
        ("node".into(), Json::str(node)),
    ])
    .render();
    shared.push_event(id, event);
    item.outcome = Some(outcome);
}
