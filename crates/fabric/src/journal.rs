//! The coordinator's write-ahead sweep journal.
//!
//! A coordinator crash used to lose every in-flight sweep: accepted specs
//! lived only in the jobs map, gathered cell results only in sweep-thread
//! locals. The journal makes both durable. Three record kinds are
//! appended, each **fsync'd before the action it describes is
//! acknowledged**:
//!
//! * `accepted` — a sweep spec was admitted (written before the 202);
//! * `cell` — one cell reached its final outcome (the run object,
//!   exactly the element [`render_runs`](dice_serve::render_runs) emits);
//! * `done` — the sweep finished (with its degraded reason, if any).
//!
//! On restart the coordinator replays the journal: finished sweeps are
//! reconstructed in place (their reports re-render byte-identically from
//! the journaled run objects — `RunReport` JSON is lossless), and
//! unfinished sweeps resume with only their **missing** cells
//! re-scattered.
//!
//! # Framing
//!
//! Zero-dep, append-only, binary-framed with a text payload:
//!
//! ```text
//! [magic u32 LE][payload len u32 LE][fnv1a64(payload) u64 LE][payload JSON]
//! ```
//!
//! A `kill -9` can tear the last frame mid-write; recovery scans frames
//! until the first bad magic, bad checksum, oversized length or
//! unparseable payload, **truncates the file back to the last good
//! frame**, and reports how many bytes were dropped. A torn tail is
//! therefore indistinguishable from the record never having been written
//! — the cell simply re-runs.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dice_obs::Json;
use dice_runner::fnv1a64;

/// Frame magic: `"DJR1"` little-endian (journal format v1).
const MAGIC: u32 = u32::from_le_bytes(*b"DJR1");

/// Sanity cap on one payload; anything larger is a torn length field.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// One durable journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A sweep spec was admitted under `sweep` (the job id).
    Accepted {
        /// The sweep's job id ([`dice_serve::sweep_key`]).
        sweep: u64,
        /// The canonical spec JSON ([`dice_serve::SweepSpec::to_json`]).
        spec: Json,
    },
    /// One cell reached a final outcome.
    Cell {
        /// The owning sweep's job id.
        sweep: u64,
        /// The cell's run object (`{"tag", "workload", "report" |
        /// "error" | "timed_out_ms"}`).
        run: Json,
    },
    /// The sweep finished assembling.
    Done {
        /// The sweep's job id.
        sweep: u64,
        /// The typed degradation reason, when the fabric could not
        /// gather every cell from a live worker.
        degraded: Option<String>,
    },
}

impl JournalRecord {
    fn to_json(&self) -> Json {
        let sweep_field = |sweep: u64| ("sweep".to_owned(), Json::str(format!("{sweep:016x}")));
        match self {
            JournalRecord::Accepted { sweep, spec } => Json::Obj(vec![
                ("record".into(), Json::str("accepted")),
                sweep_field(*sweep),
                ("spec".into(), spec.clone()),
            ]),
            JournalRecord::Cell { sweep, run } => Json::Obj(vec![
                ("record".into(), Json::str("cell")),
                sweep_field(*sweep),
                ("run".into(), run.clone()),
            ]),
            JournalRecord::Done { sweep, degraded } => {
                let mut pairs = vec![
                    ("record".to_owned(), Json::str("done")),
                    sweep_field(*sweep),
                ];
                if let Some(reason) = degraded {
                    pairs.push(("degraded".to_owned(), Json::str(reason)));
                }
                Json::Obj(pairs)
            }
        }
    }

    fn from_json(doc: &Json) -> Option<JournalRecord> {
        let sweep = u64::from_str_radix(doc.get("sweep")?.as_str()?, 16).ok()?;
        match doc.get("record")?.as_str()? {
            "accepted" => Some(JournalRecord::Accepted {
                sweep,
                spec: doc.get("spec")?.clone(),
            }),
            "cell" => Some(JournalRecord::Cell {
                sweep,
                run: doc.get("run")?.clone(),
            }),
            "done" => Some(JournalRecord::Done {
                sweep,
                degraded: doc
                    .get("degraded")
                    .and_then(Json::as_str)
                    .map(str::to_owned),
            }),
            _ => None,
        }
    }
}

/// What [`Journal::open`] recovered from an existing file.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn tail truncated away (0 for a clean shutdown).
    pub dropped_bytes: u64,
}

/// An open, append-only sweep journal.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
    appended: AtomicU64,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, replays its
    /// intact frames, truncates any torn tail, and leaves the file
    /// positioned for appending.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures opening, reading or truncating the file.
    /// Torn or corrupt frames are **not** errors — they are dropped and
    /// counted in [`Recovery::dropped_bytes`].
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Journal, Recovery)> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut recovery = Recovery::default();
        let mut offset = 0usize;
        while let Some((record, next)) = read_frame(&bytes, offset) {
            recovery.records.push(record);
            offset = next;
        }
        if offset < bytes.len() {
            recovery.dropped_bytes = (bytes.len() - offset) as u64;
            file.set_len(offset as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Journal {
                file: Mutex::new(file),
                path,
                appended: AtomicU64::new(0),
            },
            recovery,
        ))
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle (replayed frames excluded).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Appends one record and fsyncs before returning: once this call
    /// succeeds the record survives `kill -9`.
    ///
    /// # Errors
    ///
    /// Propagates the write or sync failure; the caller decides whether
    /// durability loss is fatal (the coordinator degrades to serving
    /// without a journal rather than refusing sweeps).
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let payload = record.to_json().render().into_bytes();
        let mut frame = Vec::with_capacity(16 + payload.len());
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut file = self.file.lock().expect("journal file poisoned");
        file.write_all(&frame)?;
        file.sync_data()?;
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Reads the frame at `offset`; `None` for a torn, corrupt or absent
/// frame (recovery stops there).
fn read_frame(bytes: &[u8], offset: usize) -> Option<(JournalRecord, usize)> {
    let header = bytes.get(offset..offset + 16)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().ok()?);
    if magic != MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(header[4..8].try_into().ok()?);
    if len > MAX_PAYLOAD {
        return None;
    }
    let sum = u64::from_le_bytes(header[8..16].try_into().ok()?);
    let start = offset + 16;
    let payload = bytes.get(start..start + len as usize)?;
    if fnv1a64(payload) != sum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let record = JournalRecord::from_json(&Json::parse(text).ok()?)?;
    Some((record, start + len as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dice-journal-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join("sweeps.journal")
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Accepted {
                sweep: 0xdead_beef,
                spec: Json::parse(r#"{"orgs":["base"],"workloads":["gcc"]}"#).expect("spec"),
            },
            JournalRecord::Cell {
                sweep: 0xdead_beef,
                run: Json::parse(r#"{"tag":"base","workload":"gcc","error":"boom"}"#).expect("run"),
            },
            JournalRecord::Done {
                sweep: 0xdead_beef,
                degraded: Some("2 cells had no live worker".into()),
            },
            JournalRecord::Done {
                sweep: 0x1234,
                degraded: None,
            },
        ]
    }

    #[test]
    fn append_replay_round_trips() {
        let path = scratch("roundtrip");
        let records = sample_records();
        {
            let (journal, recovery) = Journal::open(&path).expect("open");
            assert!(recovery.records.is_empty());
            for r in &records {
                journal.append(r).expect("append");
            }
            assert_eq!(journal.appended(), records.len() as u64);
        }
        let (_, recovery) = Journal::open(&path).expect("reopen");
        assert_eq!(recovery.records, records);
        assert_eq!(recovery.dropped_bytes, 0);
    }

    /// The crash contract, proven exhaustively: truncating the journal at
    /// **every** byte offset yields a clean prefix of the appended
    /// records — never an error, never a mangled record — and the file is
    /// usable for appends afterwards.
    #[test]
    fn truncation_at_every_offset_recovers_a_clean_prefix() {
        let path = scratch("torn");
        let records = sample_records();
        {
            let (journal, _) = Journal::open(&path).expect("open");
            for r in &records {
                journal.append(r).expect("append");
            }
        }
        let full = std::fs::read(&path).expect("read journal");

        // Frame boundaries, so we know how many records each prefix holds.
        let mut boundaries = vec![0usize];
        let mut offset = 0;
        while let Some((_, next)) = read_frame(&full, offset) {
            boundaries.push(next);
            offset = next;
        }
        assert_eq!(boundaries.len(), records.len() + 1);

        let torn = scratch("torn-case");
        for cut in 0..=full.len() {
            std::fs::write(&torn, &full[..cut]).expect("write torn copy");
            let (journal, recovery) = Journal::open(&torn).expect("recovery must never error");
            let expect_n = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(
                recovery.records,
                records[..expect_n],
                "cut at {cut} of {}",
                full.len()
            );
            let good_prefix = boundaries[expect_n];
            assert_eq!(
                recovery.dropped_bytes,
                (cut - good_prefix) as u64,
                "cut at {cut}"
            );
            // The truncated file must accept appends and replay them.
            journal
                .append(&records[records.len() - 1])
                .expect("append after recovery");
            drop(journal);
            let (_, again) = Journal::open(&torn).expect("reopen");
            assert_eq!(again.records.len(), expect_n + 1);
            assert_eq!(again.dropped_bytes, 0);
        }
    }

    #[test]
    fn garbled_tail_is_dropped_not_propagated() {
        let path = scratch("garbled");
        let records = sample_records();
        {
            let (journal, _) = Journal::open(&path).expect("open");
            for r in &records {
                journal.append(r).expect("append");
            }
        }
        // Flip one byte in the last frame's payload: the checksum drops
        // exactly that record.
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 5;
        bytes[last] ^= 0xa5;
        std::fs::write(&path, &bytes).expect("write");
        let (_, recovery) = Journal::open(&path).expect("open garbled");
        assert_eq!(recovery.records, records[..records.len() - 1]);
        assert!(recovery.dropped_bytes > 0);
    }

    #[test]
    fn unknown_record_kinds_stop_replay_cleanly() {
        let doc = Json::parse(r#"{"record":"mystery","sweep":"0000000000000001"}"#).expect("doc");
        assert_eq!(JournalRecord::from_json(&doc), None);
    }
}
