//! The cell wire protocol between the coordinator and workers.
//!
//! One scattered cell is one `POST /v1/cells` whose body is a
//! **single-cell** [`SweepSpec`] (`orgs` and `workloads` each hold
//! exactly one entry) — reusing the validated spec grammar means a worker
//! rejects malformed cells with the same errors `dice-serve` would. The
//! response body is the cell's *run object*, exactly the element
//! [`render_runs`] would place in the canonical document:
//!
//! ```json
//! {"tag": "dice36", "workload": "gcc", "report": { … }}
//! {"tag": "base",   "workload": "mcf", "error": "…"}
//! {"tag": "base",   "workload": "mcf", "timed_out_ms": 60000}
//! ```
//!
//! [`RunReport::to_json`]/[`RunReport::from_json`] are lossless, so the
//! coordinator can rebuild the [`CellOutcome`] and re-render the
//! assembled sweep through the same [`render_runs`] code path a direct
//! single-node run uses — which is what makes fabric reports
//! byte-identical to direct ones.
//!
//! Since the chaos work, the run object travels inside a **checksummed
//! envelope**: `{"sum":"<16-hex fnv1a64 of run.render()>","run":{…}}`.
//! A network that merely tears a response produces unparseable bytes the
//! coordinator already rejects; a network that *flips* bytes can produce
//! JSON that still parses but carries a wrong number — the one corruption
//! mode that would silently poison a report. The envelope closes it:
//! [`open_run_object`] re-renders the received run and compares
//! checksums, so a garbled-but-parseable body is a typed dispatch
//! failure, never a wrong report.

use std::sync::Arc;
use std::time::Duration;

use dice_obs::Json;
use dice_runner::{fnv1a64, CellOutcome};
use dice_serve::SweepSpec;
use dice_sim::RunReport;

/// Renders the single-cell spec shipped to a worker for `(tag, workload)`
/// of `spec`.
#[must_use]
pub fn cell_spec(spec: &SweepSpec, tag: &str, workload: &str) -> String {
    Json::Obj(vec![
        ("orgs".into(), Json::Arr(vec![Json::str(tag)])),
        ("workloads".into(), Json::Arr(vec![Json::str(workload)])),
        ("scale".into(), Json::u64(spec.scale)),
        ("warmup".into(), Json::u64(spec.warmup)),
        ("measure".into(), Json::u64(spec.measure)),
        ("seed".into(), Json::u64(spec.seed)),
    ])
    .render()
}

/// Renders one run object — the worker's response body for a finished
/// cell, identical to the element `render_runs` emits for it.
#[must_use]
pub fn render_run_object(tag: &str, workload: &str, outcome: &CellOutcome) -> Json {
    let mut pairs = vec![
        ("tag".to_owned(), Json::str(tag)),
        ("workload".to_owned(), Json::str(workload)),
    ];
    match outcome {
        CellOutcome::Completed { report, .. } => {
            pairs.push(("report".to_owned(), report.to_json()));
        }
        CellOutcome::Failed { error } => {
            pairs.push(("error".to_owned(), Json::str(error)));
        }
        CellOutcome::TimedOut { budget } => {
            pairs.push((
                "timed_out_ms".to_owned(),
                Json::u64(budget.as_millis() as u64),
            ));
        }
    }
    Json::Obj(pairs)
}

/// Wraps a run object in the checksummed envelope a worker ships back:
/// `{"sum": "<16-hex fnv1a64 of run.render()>", "run": {…}}`.
#[must_use]
pub fn seal_run_object(run: Json) -> Json {
    let sum = fnv1a64(run.render().as_bytes());
    Json::Obj(vec![
        ("sum".to_owned(), Json::str(format!("{sum:016x}"))),
        ("run".to_owned(), run),
    ])
}

/// Verifies an envelope's checksum and yields the run object inside.
///
/// # Errors
///
/// A human-readable description: missing/ill-typed `sum` or `run`, or a
/// checksum mismatch (bytes were corrupted in flight but still parsed).
pub fn open_run_object(doc: &Json) -> Result<&Json, String> {
    let sum = doc
        .get("sum")
        .and_then(Json::as_str)
        .ok_or("cell envelope missing \"sum\"")?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| "cell envelope \"sum\" is not hex")?;
    let run = doc.get("run").ok_or("cell envelope missing \"run\"")?;
    if fnv1a64(run.render().as_bytes()) != sum {
        return Err("cell envelope checksum mismatch (response corrupted in flight)".to_owned());
    }
    Ok(run)
}

/// Parses a worker's run object back into `(tag, workload, outcome)`.
///
/// # Errors
///
/// A human-readable description of what is malformed. `wall` on the
/// rebuilt outcome is zero and `from_cache` false — the canonical
/// document excludes scheduling incidentals, so neither affects the
/// rendered report.
pub fn parse_run_object(doc: &Json) -> Result<(String, String, CellOutcome), String> {
    let tag = doc
        .get("tag")
        .and_then(Json::as_str)
        .ok_or("run object missing \"tag\"")?
        .to_owned();
    let workload = doc
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("run object missing \"workload\"")?
        .to_owned();
    let outcome = if let Some(report) = doc.get("report") {
        let report =
            RunReport::from_json(report).ok_or("run object carries an unparseable report")?;
        CellOutcome::Completed {
            report: Arc::new(report),
            from_cache: false,
            wall: Duration::ZERO,
        }
    } else if let Some(error) = doc.get("error").and_then(Json::as_str) {
        CellOutcome::Failed {
            error: error.to_owned(),
        }
    } else if let Some(ms) = doc.get("timed_out_ms").and_then(Json::as_u64) {
        CellOutcome::TimedOut {
            budget: Duration::from_millis(ms),
        }
    } else {
        return Err("run object has no report, error or timed_out_ms".to_owned());
    };
    Ok((tag, workload, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_spec_is_a_valid_single_cell_sweep() {
        let spec = SweepSpec::parse(
            r#"{"orgs":["base","dice36"],"workloads":["gcc","mcf"],"scale":2048,"warmup":100,"measure":300,"seed":3}"#,
        )
        .expect("valid");
        let one = cell_spec(&spec, "dice36", "mcf");
        let parsed = SweepSpec::parse(&one).expect("worker-side parse");
        assert_eq!(parsed.orgs, vec!["dice36"]);
        assert_eq!(parsed.workloads, vec!["mcf"]);
        assert_eq!(parsed.to_cells().len(), 1);
        assert_eq!(parsed.scale, 2048);
        assert_eq!(parsed.seed, 3);
    }

    #[test]
    fn failure_outcomes_round_trip() {
        for (outcome, probe) in [
            (
                CellOutcome::Failed {
                    error: "boom".into(),
                },
                "error",
            ),
            (
                CellOutcome::TimedOut {
                    budget: Duration::from_millis(1234),
                },
                "timed_out_ms",
            ),
        ] {
            let doc = render_run_object("base", "gcc", &outcome);
            assert!(doc.get(probe).is_some());
            let (tag, wl, back) = parse_run_object(&doc).expect("round trip");
            assert_eq!((tag.as_str(), wl.as_str()), ("base", "gcc"));
            assert_eq!(
                render_run_object("base", "gcc", &back).render(),
                doc.render()
            );
        }
    }

    #[test]
    fn sealed_envelopes_open_clean() {
        let run = render_run_object(
            "base",
            "gcc",
            &CellOutcome::Failed {
                error: "boom".into(),
            },
        );
        let rendered = run.render();
        let sealed = seal_run_object(run);
        let wire = Json::parse(&sealed.render()).expect("envelope parses");
        let opened = open_run_object(&wire).expect("checksum holds");
        assert_eq!(opened.render(), rendered);
    }

    #[test]
    fn tampered_envelopes_are_rejected() {
        let run = render_run_object(
            "base",
            "gcc",
            &CellOutcome::TimedOut {
                budget: Duration::from_millis(1234),
            },
        );
        let sealed = seal_run_object(run).render();
        // A garble that keeps the JSON parseable: flip one body digit.
        let tampered = sealed.replace("1234", "1235");
        assert_ne!(sealed, tampered, "tamper target must exist");
        let doc = Json::parse(&tampered).expect("still parses");
        let err = open_run_object(&doc).expect_err("checksum must catch the flip");
        assert!(err.contains("checksum"), "unexpected error: {err}");
    }

    #[test]
    fn envelopes_without_sum_or_run_are_rejected() {
        for bad in [
            r#"{"run":{"tag":"base","workload":"gcc","error":"x"}}"#,
            r#"{"sum":"00","tag":"base"}"#,
            r#"{"sum":"zz","run":{}}"#,
        ] {
            let doc = Json::parse(bad).expect("test JSON");
            assert!(open_run_object(&doc).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn malformed_run_objects_are_rejected() {
        for bad in [
            r#"{"workload":"gcc","error":"x"}"#,
            r#"{"tag":"base","error":"x"}"#,
            r#"{"tag":"base","workload":"gcc"}"#,
            r#"{"tag":"base","workload":"gcc","report":{"nope":1}}"#,
        ] {
            let doc = Json::parse(bad).expect("test JSON");
            assert!(parse_run_object(&doc).is_err(), "accepted: {bad}");
        }
    }
}
