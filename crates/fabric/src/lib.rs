//! `dice-fabric`: the DICE sweep harness as a sharded fabric.
//!
//! One **coordinator** speaks the same sweep API as `dice-serve`
//! (`POST /v1/sweeps`, status/report/trace, SSE progress) but executes
//! nothing locally: it expands the spec to cells, places each cell on a
//! **worker** via a consistent-hash ring with virtual nodes
//! ([`ring::HashRing`], keyed by the order-independent
//! [`dice_runner::cell_key`]), and gathers the per-cell run objects back
//! into a report **byte-identical** to what a direct single-node
//! `dice-runner` invocation renders — that identity is the fabric's
//! correctness contract, `cmp`-checked in CI.
//!
//! Workers are thin: one `POST /v1/cells` runs one cell through the
//! runner engine and its local persistent cache. Worker death and
//! cell-level failures re-hash pending cells onto surviving nodes with
//! bounded retry rounds and backoff; graceful drain takes a node off the
//! ring while its in-flight cells still answer. The membership endpoint
//! exposes the ring version so operators can watch the ring churn.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod coordinator;
pub mod journal;
pub mod ring;
pub mod seeded;
pub mod wire;
pub mod worker;

pub use breaker::{Breaker, BreakerConfig, JitteredBackoff};
pub use chaos::{ChaosConfig, ChaosHandle, ChaosProxy, NetFault, ALL_FAULTS};
pub use coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle, NodeState};
pub use journal::{Journal, JournalRecord, Recovery};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use seeded::SeededRng;
pub use wire::{cell_spec, open_run_object, parse_run_object, render_run_object, seal_run_object};
pub use worker::{Worker, WorkerConfig, WorkerHandle};
