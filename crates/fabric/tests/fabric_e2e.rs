//! End-to-end fabric tests: real workers and a real coordinator on
//! ephemeral ports, driven over real sockets with the serve client.
//!
//! The load-bearing assertion throughout is **byte identity**: whatever
//! the fabric is subjected to — more workers, warm caches, injected cell
//! panics, a worker dying between scatter rounds, a drained node — the
//! gathered report must equal, byte for byte, what a direct single-node
//! `dice-runner` invocation of the same spec renders.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dice_core::FaultKind;
use dice_fabric::{Coordinator, CoordinatorConfig, CoordinatorHandle, Worker, WorkerConfig};
use dice_obs::Json;
use dice_runner::{Runner, RunnerConfig};
use dice_serve::net::NetConfig;
use dice_serve::{http_get, http_post, render_runs, sse_data_lines, SweepSpec};

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dice-fabric-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The spec under test: 2 orgs x 2 workloads = 4 cells, small enough to
/// finish in well under a second per cell.
fn spec_text(seed: u64) -> String {
    format!(
        r#"{{"orgs":["base","dice36"],"workloads":["gcc","mcf"],"scale":4096,"warmup":50,"measure":150,"seed":{seed}}}"#
    )
}

/// What a direct single-node `dice-runner` invocation renders for `spec`.
fn direct_report(spec: &str, cache: PathBuf) -> String {
    let spec = SweepSpec::parse(spec).expect("valid spec");
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        cache_dir: Some(cache),
        ..RunnerConfig::default()
    })
    .expect("runner");
    render_runs(&runner.run(spec.to_cells())).render()
}

struct TestWorker {
    addr: String,
    handle: dice_fabric::WorkerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestWorker {
    fn boot(cache: PathBuf, inject: Option<FaultKind>) -> Self {
        let worker = Worker::bind(WorkerConfig {
            net: NetConfig {
                port: 0,
                conn_workers: 2,
                conn_backlog: 16,
            },
            runner: RunnerConfig {
                jobs: 1,
                cache_dir: Some(cache),
                ..RunnerConfig::default()
            },
            inject,
        })
        .expect("bind worker");
        let addr = worker.local_addr().expect("worker addr").to_string();
        let handle = worker.handle();
        let thread = std::thread::spawn(move || worker.run().expect("worker run"));
        TestWorker {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    /// Stops the worker and waits for its listener to close, so later
    /// dispatches to its address fail at connect time.
    fn kill(mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("worker thread");
        }
    }
}

impl Drop for TestWorker {
    fn drop(&mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

struct TestCoordinator {
    addr: String,
    handle: CoordinatorHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestCoordinator {
    fn boot(workers: &[&TestWorker]) -> Self {
        let coordinator = Coordinator::bind(CoordinatorConfig {
            net: NetConfig {
                port: 0,
                conn_workers: 4,
                conn_backlog: 16,
            },
            workers: workers.iter().map(|w| w.addr.clone()).collect(),
            backoff: Duration::from_millis(10),
            cell_timeout: Duration::from_secs(30),
            ..CoordinatorConfig::default()
        })
        .expect("bind coordinator");
        let addr = coordinator
            .local_addr()
            .expect("coordinator addr")
            .to_string();
        let handle = coordinator.handle();
        let thread = std::thread::spawn(move || coordinator.run().expect("coordinator run"));
        TestCoordinator {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    fn membership(&self) -> Json {
        let resp = http_get(&self.addr, "/v1/fabric/membership").expect("GET membership");
        assert_eq!(resp.status, 200);
        Json::parse(&resp.text()).expect("membership JSON")
    }

    fn shutdown(mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("coordinator thread");
        }
    }
}

impl Drop for TestCoordinator {
    fn drop(&mut self) {
        self.handle.drain();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Submits a sweep and polls it to `done`; returns (id, report bytes).
fn run_sweep(addr: &str, spec: &str) -> (String, String) {
    let resp = http_post(addr, "/v1/sweeps", spec).expect("POST sweep");
    assert_eq!(resp.status, 202, "submit body: {}", resp.text());
    let doc = Json::parse(&resp.text()).expect("submit JSON");
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .expect("job id")
        .to_owned();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = http_get(addr, &format!("/v1/sweeps/{id}")).expect("GET status");
        assert_eq!(status.status, 200);
        let doc = Json::parse(&status.text()).expect("status JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") => panic!("sweep failed: {}", status.text()),
            _ => {
                assert!(Instant::now() < deadline, "sweep never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let report = http_get(addr, &format!("/v1/sweeps/{id}/report")).expect("GET report");
    assert_eq!(report.status, 200);
    (id, report.text())
}

#[test]
fn fabric_report_is_byte_identical_cold_and_warm() {
    let spec = spec_text(11);
    let direct = direct_report(&spec, scratch("direct-cw"));

    for workers in [1usize, 4] {
        let nodes: Vec<TestWorker> = (0..workers)
            .map(|i| TestWorker::boot(scratch(&format!("cw-{workers}-{i}")), None))
            .collect();
        let refs: Vec<&TestWorker> = nodes.iter().collect();
        let coordinator = TestCoordinator::boot(&refs);
        let (_, cold) = run_sweep(&coordinator.addr, &spec);
        assert_eq!(
            cold, direct,
            "cold fabric report diverged ({workers} workers)"
        );
        coordinator.shutdown();

        // Same worker fleet, warm caches, fresh coordinator: still the
        // same bytes.
        let coordinator = TestCoordinator::boot(&refs);
        let (_, warm) = run_sweep(&coordinator.addr, &spec);
        assert_eq!(
            warm, direct,
            "warm fabric report diverged ({workers} workers)"
        );
        coordinator.shutdown();
    }
}

#[test]
fn injected_cell_panics_rescatter_onto_survivors() {
    let spec = spec_text(12);
    let direct = direct_report(&spec, scratch("direct-inject"));

    // Placement is a pure function of node names and cell keys, so work
    // out up front which node ("w0"/"w1") owns at least one cell and arm
    // the panic injector (PR-4 fault injection) on exactly that node.
    // Every cell first hashed onto it must re-scatter to the clean node
    // and the assembled report must not show a trace of the drill.
    let mut ring = dice_fabric::HashRing::new(dice_fabric::DEFAULT_VNODES);
    ring.add("w0");
    ring.add("w1");
    let parsed = SweepSpec::parse(&spec).expect("valid spec");
    let faulty_name = parsed
        .to_cells()
        .iter()
        .map(|c| {
            ring.owner(dice_runner::cell_key(&c.cfg, &c.workload))
                .expect("non-empty ring")
                .to_owned()
        })
        .next()
        .expect("at least one cell");
    let faulty_idx = usize::from(faulty_name == "w1");
    let inject = |i: usize| (i == faulty_idx).then_some(FaultKind::CellPanic);
    let a = TestWorker::boot(scratch("inject-w0"), inject(0));
    let b = TestWorker::boot(scratch("inject-w1"), inject(1));
    let coordinator = TestCoordinator::boot(&[&a, &b]);
    let (_, report) = run_sweep(&coordinator.addr, &spec);
    assert_eq!(report, direct, "report diverged despite healthy survivor");

    // The membership document records the drilled node's failures.
    let doc = coordinator.membership();
    let nodes = doc.get("nodes").and_then(Json::as_arr).expect("nodes");
    let drilled = &nodes[faulty_idx];
    assert!(
        drilled
            .get("failed")
            .and_then(Json::as_u64)
            .expect("failed")
            > 0,
        "faulty node recorded no failures: {doc:?}"
    );
    coordinator.shutdown();
}

#[test]
fn dead_worker_is_retired_and_cells_rehash() {
    let spec = spec_text(13);
    let direct = direct_report(&spec, scratch("direct-dead"));

    let doomed = TestWorker::boot(scratch("dead-w0"), None);
    let survivor = TestWorker::boot(scratch("dead-w1"), None);
    let coordinator = TestCoordinator::boot(&[&doomed, &survivor]);
    let ring_before = coordinator
        .membership()
        .get("ring_version")
        .and_then(Json::as_u64)
        .expect("ring_version");

    // The worker dies after the coordinator's boot probe admitted it to
    // the ring: dispatches hit a closed port, the node is declared dead,
    // and its cells re-hash onto the survivor.
    doomed.kill();
    let (_, report) = run_sweep(&coordinator.addr, &spec);
    assert_eq!(report, direct, "report diverged after worker death");

    let doc = coordinator.membership();
    assert!(
        doc.get("ring_version")
            .and_then(Json::as_u64)
            .expect("ring_version")
            > ring_before,
        "ring version did not advance: {doc:?}"
    );
    let nodes = doc.get("nodes").and_then(Json::as_arr).expect("nodes");
    assert_eq!(
        nodes[0].get("state").and_then(Json::as_str),
        Some("dead"),
        "dead node not retired: {doc:?}"
    );
    assert_eq!(
        nodes[1].get("state").and_then(Json::as_str),
        Some("healthy")
    );
    coordinator.shutdown();
}

#[test]
fn drained_node_leaves_the_ring_but_sweeps_complete() {
    let spec = spec_text(14);
    let direct = direct_report(&spec, scratch("direct-drain"));

    let a = TestWorker::boot(scratch("drain-w0"), None);
    let b = TestWorker::boot(scratch("drain-w1"), None);
    let coordinator = TestCoordinator::boot(&[&a, &b]);
    let ring_before = coordinator
        .membership()
        .get("ring_version")
        .and_then(Json::as_u64)
        .expect("ring_version");

    let resp = http_post(&coordinator.addr, "/v1/fabric/nodes/w0/drain", "").expect("POST drain");
    assert_eq!(resp.status, 200, "drain body: {}", resp.text());
    let doc = Json::parse(&resp.text()).expect("drain JSON");
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("draining"));
    assert!(
        doc.get("ring_version")
            .and_then(Json::as_u64)
            .expect("version")
            > ring_before
    );

    // Unknown nodes 404.
    let missing =
        http_post(&coordinator.addr, "/v1/fabric/nodes/w9/drain", "").expect("POST drain");
    assert_eq!(missing.status, 404);

    // All cells land on the survivor; the report is unchanged.
    let (_, report) = run_sweep(&coordinator.addr, &spec);
    assert_eq!(report, direct, "report diverged after drain");
    let doc = coordinator.membership();
    let nodes = doc.get("nodes").and_then(Json::as_arr).expect("nodes");
    assert_eq!(
        nodes[0].get("state").and_then(Json::as_str),
        Some("draining")
    );
    assert_eq!(
        nodes[0].get("dispatched").and_then(Json::as_u64),
        Some(0),
        "drained node still received cells: {doc:?}"
    );
    coordinator.shutdown();
}

#[test]
fn progress_events_stream_with_node_attribution() {
    let spec = spec_text(15);
    let worker = TestWorker::boot(scratch("events-w0"), None);
    let coordinator = TestCoordinator::boot(&[&worker]);
    let (id, _) = run_sweep(&coordinator.addr, &spec);

    // The job is done, so the SSE stream replays every cell event and
    // the end record, then closes.
    let resp = http_get(&coordinator.addr, &format!("/v1/sweeps/{id}/events")).expect("GET events");
    assert_eq!(resp.status, 200);
    let events = sse_data_lines(&resp.text());
    assert_eq!(events.len(), 5, "4 cells + end record: {events:?}");
    for (i, line) in events[..4].iter().enumerate() {
        let doc = Json::parse(line).expect("event JSON");
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("cell"));
        assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(i as u64 + 1));
        assert_eq!(doc.get("total").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("completed"));
        assert_eq!(doc.get("node").and_then(Json::as_str), Some("w0"));
    }
    let end = Json::parse(&events[4]).expect("end JSON");
    assert_eq!(end.get("event").and_then(Json::as_str), Some("end"));
    assert_eq!(end.get("state").and_then(Json::as_str), Some("done"));
    coordinator.shutdown();
}

#[test]
fn identical_specs_coalesce_and_draining_rejects() {
    let worker = TestWorker::boot(scratch("coalesce-w0"), None);
    let coordinator = TestCoordinator::boot(&[&worker]);
    let spec = spec_text(16);
    let first = http_post(&coordinator.addr, "/v1/sweeps", &spec).expect("POST");
    assert_eq!(first.status, 202);
    let second = http_post(&coordinator.addr, "/v1/sweeps", &spec).expect("POST");
    assert_eq!(second.status, 202);
    let doc = Json::parse(&second.text()).expect("JSON");
    assert_eq!(doc.get("coalesced"), Some(&Json::Bool(true)));
    let id = Json::parse(&first.text())
        .expect("JSON")
        .get("id")
        .and_then(Json::as_str)
        .expect("id")
        .to_owned();
    // Let it finish so shutdown is quick, then verify drain rejects.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = http_get(&coordinator.addr, &format!("/v1/sweeps/{id}")).expect("GET");
        let doc = Json::parse(&status.text()).expect("JSON");
        if doc.get("state").and_then(Json::as_str) == Some("done") {
            assert_eq!(doc.get("coalesced").and_then(Json::as_u64), Some(1));
            break;
        }
        assert!(Instant::now() < deadline, "sweep never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    coordinator.handle.drain();
    // The accept loop may take a beat to observe the flag; the listener
    // closes once it does, after which submissions fail at the socket.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match http_post(&coordinator.addr, "/v1/sweeps", &spec_text(17)) {
            Ok(resp) if resp.status == 503 => break,
            Ok(_) | Err(_) if Instant::now() >= deadline => break,
            Ok(_) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => break,
        }
    }
}
